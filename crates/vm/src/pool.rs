//! Warm-launch infrastructure: the compiled-program cache and the VM
//! execution pool.
//!
//! A mobile agent pays its launch cost at *every* hop: decode (or
//! compile) the program, lower it to the execution tier, allocate the
//! VM's stacks. The analysis cache (PR 6) already memoizes decode +
//! verification for `vm_script`'s bytecode path; this module closes the
//! two remaining gaps:
//!
//! * [`ProgramCache`] — a bounded LRU of decoded [`Program`]s keyed by a
//!   domain-tagged content hash of the wire bytes, for the `vm_bin`
//!   paths that run *trusted* code and therefore skip analysis. Because
//!   a [`Program`] caches its lowered execution form behind an `Arc`,
//!   a cache hit also skips superinstruction lowering — the whole
//!   compile tier is paid once per distinct program, not once per hop.
//! * [`VmPool`] — a bounded free-list of warm
//!   [`ExecScratch`](tacoma_taxscript::ExecScratch) instances (value
//!   stack, locals arena, frame stack). A launch checks one out, runs,
//!   and checks it back in; steady-state agent traffic reuses the same
//!   grown-to-size buffers instead of reallocating them per hop.
//!
//! Both expose cumulative counters that the firewall folds into
//! `FirewallStats`, so `taxsh stats` shows hit rates in production.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use tacoma_security::{hash_bytes, Digest};
use tacoma_taxscript::{ExecScratch, Program};

use crate::VmError;

/// Domain-separation tag for [`ProgramCache`] keys. Distinct from the
/// analysis cache's tags so a trusted-path entry can never alias a
/// verified-path entry for the same bytes.
const TAG_PROGRAM: &[u8] = b"vm:cache:program\0";

/// Default number of programs the cache retains.
pub const PROGRAM_CACHE_CAPACITY: usize = 256;

/// Default number of warm scratches the pool retains.
pub const VM_POOL_CAPACITY: usize = 32;

/// Cumulative counters for [`ProgramCache`] and [`VmPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests answered from the cache/pool.
    pub hits: u64,
    /// Requests that paid the cold path.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheInner {
    map: HashMap<Digest, Arc<Program>>,
    /// Recency order, least recent first (same trade-off as the
    /// analysis cache: O(n) touch over small capacities).
    order: VecDeque<Digest>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded LRU of decoded programs keyed by content hash.
pub struct ProgramCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl ProgramCache {
    /// Creates a cache retaining at most `capacity` programs (min 1).
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The process-wide cache shared by every `vm_bin` launch.
    pub fn shared() -> &'static ProgramCache {
        static SHARED: OnceLock<ProgramCache> = OnceLock::new();
        SHARED.get_or_init(|| ProgramCache::new(PROGRAM_CACHE_CAPACITY))
    }

    /// The content-hash key for program wire bytes.
    pub fn key_for(wire: &[u8]) -> Digest {
        let mut buf = Vec::with_capacity(TAG_PROGRAM.len() + wire.len());
        buf.extend_from_slice(TAG_PROGRAM);
        buf.extend_from_slice(wire);
        hash_bytes(&buf)
    }

    /// Decodes `wire`, memoized by content hash. On a hit the returned
    /// program already carries its lowered execution form. Returns the
    /// program and whether it was served warm.
    ///
    /// Decode failures are **not** cached: the trusted `vm_bin` paths
    /// reject unsigned garbage before reaching this point, so negative
    /// entries would only dilute the capacity.
    ///
    /// # Errors
    ///
    /// [`VmError::BadArtifact`]-compatible decode errors, exactly as
    /// the uncached `Program::decode`.
    pub fn decode(&self, wire: &[u8]) -> Result<(Arc<Program>, bool), VmError> {
        let key = Self::key_for(wire);
        {
            let mut inner = self.inner.lock().expect("program cache poisoned");
            if let Some(found) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                touch(&mut inner.order, &key);
                return Ok((found, true));
            }
            inner.misses += 1;
        }
        // Decode and lower outside the lock; determinism makes a racing
        // duplicate harmless.
        let program = Program::decode(wire)?;
        program.prepare();
        let program = Arc::new(program);
        let mut inner = self.inner.lock().expect("program cache poisoned");
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                let Some(old) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&old);
                inner.evictions += 1;
            }
            inner.map.insert(key, program.clone());
            inner.order.push_back(key);
        }
        Ok((program, false))
    }

    /// Cumulative counters plus current occupancy.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("program cache poisoned");
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

/// Moves `key` to the most-recent end of `order`.
fn touch(order: &mut VecDeque<Digest>, key: &Digest) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        order.remove(pos);
        order.push_back(*key);
    }
}

struct PoolInner {
    free: Vec<ExecScratch>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded free-list of warm [`ExecScratch`] instances.
///
/// `checkout` pops a warm scratch (or allocates a cold one); `checkin`
/// returns it for the next launch, dropping it instead when the pool is
/// already full. Scratches are cleared by the dispatcher on entry, so a
/// returned scratch carries capacity but never values — checking in a
/// scratch used on a faulted run is safe.
pub struct VmPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl fmt::Debug for VmPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("VmPool")
            .field("capacity", &self.capacity)
            .field("warm", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl VmPool {
    /// Creates a pool retaining at most `capacity` warm scratches
    /// (min 1).
    pub fn new(capacity: usize) -> Self {
        VmPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The process-wide pool shared by every VM launch.
    pub fn shared() -> &'static VmPool {
        static SHARED: OnceLock<VmPool> = OnceLock::new();
        SHARED.get_or_init(|| VmPool::new(VM_POOL_CAPACITY))
    }

    /// Takes a warm scratch, or allocates a cold one on a miss.
    pub fn checkout(&self) -> ExecScratch {
        let mut inner = self.inner.lock().expect("vm pool poisoned");
        match inner.free.pop() {
            Some(scratch) => {
                inner.hits += 1;
                scratch
            }
            None => {
                inner.misses += 1;
                ExecScratch::new()
            }
        }
    }

    /// Returns a scratch for reuse; drops it if the pool is full.
    pub fn checkin(&self, scratch: ExecScratch) {
        let mut inner = self.inner.lock().expect("vm pool poisoned");
        if inner.free.len() < self.capacity {
            inner.free.push(scratch);
        } else {
            inner.evictions += 1;
        }
    }

    /// Cumulative counters plus the current number of warm scratches.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("vm pool poisoned");
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.free.len(),
        }
    }

    /// Drops every warm scratch (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("vm pool poisoned").free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_briefcase::Briefcase;
    use tacoma_taxscript::{compile_source, NullHooks, Outcome, Vm};

    #[test]
    fn program_cache_hits_on_second_decode() {
        let cache = ProgramCache::new(8);
        let wire = compile_source("fn main() { exit(4); }").unwrap().encode();
        let (first, hit1) = cache.decode(&wire).unwrap();
        let (second, hit2) = cache.decode(&wire).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&first, &second), "hit shares the entry");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn cached_programs_run() {
        let cache = ProgramCache::new(8);
        let wire = compile_source("fn main() { exit(7); }").unwrap().encode();
        cache.decode(&wire).unwrap();
        let (program, hit) = cache.decode(&wire).unwrap();
        assert!(hit);
        let mut bc = Briefcase::new();
        let outcome = Vm::new(&program, NullHooks::default()).run(&mut bc);
        assert_eq!(outcome, Ok(Outcome::Exit(7)));
    }

    #[test]
    fn decode_failures_are_not_cached() {
        let cache = ProgramCache::new(8);
        assert!(cache.decode(b"garbage").is_err());
        assert!(cache.decode(b"garbage").is_err());
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 0));
    }

    #[test]
    fn program_cache_evicts_least_recent() {
        let cache = ProgramCache::new(2);
        let wires: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                compile_source(&format!("fn main() {{ exit({i}); }}"))
                    .unwrap()
                    .encode()
            })
            .collect();
        cache.decode(&wires[0]).unwrap();
        cache.decode(&wires[1]).unwrap();
        // Touch 0 so 1 is the victim.
        assert!(cache.decode(&wires[0]).unwrap().1);
        cache.decode(&wires[2]).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.decode(&wires[0]).unwrap().1, "0 survived");
        assert!(!cache.decode(&wires[1]).unwrap().1, "1 was evicted");
    }

    #[test]
    fn cache_keys_do_not_alias_analysis_cache_keys() {
        use tacoma_taxscript::analysis::AnalysisCache;
        let wire = compile_source("fn main() { }").unwrap().encode();
        assert_ne!(
            ProgramCache::key_for(&wire),
            AnalysisCache::key_for_bytes(&wire)
        );
    }

    #[test]
    fn pool_reuses_scratches() {
        let pool = VmPool::new(4);
        let a = pool.checkout(); // miss
        pool.checkin(a);
        let _b = pool.checkout(); // hit
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 0));
    }

    #[test]
    fn pool_drops_overflow() {
        let pool = VmPool::new(1);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.checkin(a);
        pool.checkin(b); // over capacity: dropped
        let s = pool.stats();
        assert_eq!((s.evictions, s.entries), (1, 1));
    }

    #[test]
    fn pooled_scratch_carries_capacity_across_launches() {
        let pool = VmPool::new(4);
        let program =
            compile_source("fn main() { let i = 0; while (i < 100) { i = i + 1; } exit(0); }")
                .unwrap();
        let mut scratch = pool.checkout();
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(&program, NullHooks::default());
        assert_eq!(
            vm.run_with_scratch(&mut bc, &mut scratch),
            Ok(Outcome::Exit(0))
        );
        assert!(scratch.capacity() > 0, "run grew the scratch buffers");
        pool.checkin(scratch);
        let warm = pool.checkout();
        assert!(warm.capacity() > 0, "checked-in capacity survives");
    }
}
