//! The [`VirtualMachine`] trait and execution context.

use tacoma_briefcase::Briefcase;
use tacoma_security::TrustStore;
use tacoma_taxscript::{HostHooks, Outcome, DEFAULT_FUEL};

use crate::{Architecture, NativeRegistry, VmError};

/// The `CODE-TYPE` folder values the standard VMs understand.
pub mod code_types {
    /// TaxScript source text (the stand-in for C source, Figure 3/4).
    pub const TAXSCRIPT_SOURCE: &str = "taxscript-source";
    /// Encoded TaxScript bytecode (a compiled program).
    pub const TAXSCRIPT_BYTECODE: &str = "taxscript-bytecode";
    /// An encoded [`crate::ArtifactBundle`] of signed binaries.
    pub const BINARY_ARTIFACT: &str = "binary-artifact";
}

/// Host-side resources a VM executes against.
pub struct ExecContext<'a> {
    /// The host's trust store, consulted by `vm_bin` before executing a
    /// binary ("provided the binary is signed by a trusted principal").
    pub trust: &'a TrustStore,
    /// Installed native programs.
    pub natives: &'a NativeRegistry,
    /// This host's architecture tag, for artifact selection.
    pub host_arch: Architecture,
    /// Instruction budget per execution (the VM-managed CPU resource of
    /// §3.3).
    pub fuel: u64,
    /// Whether unsigned binaries may run (the trusting single-domain
    /// deployment of §2). Signed binaries are always verified.
    pub allow_unsigned: bool,
}

impl<'a> ExecContext<'a> {
    /// A context with default fuel, requiring signatures.
    pub fn new(trust: &'a TrustStore, natives: &'a NativeRegistry) -> Self {
        ExecContext {
            trust,
            natives,
            host_arch: Architecture::simulated(),
            fuel: DEFAULT_FUEL,
            allow_unsigned: false,
        }
    }

    /// Permits unsigned binaries.
    pub fn allow_unsigned(mut self) -> Self {
        self.allow_unsigned = true;
        self
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Overrides the host architecture.
    pub fn with_arch(mut self, arch: Architecture) -> Self {
        self.host_arch = arch;
        self
    }
}

/// The result of executing an agent on a VM.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// How the agent ended.
    pub outcome: Outcome,
    /// Human-readable trace of the execution steps (the numbered arrows of
    /// Figure 3 for `vm_c`; shorter for the other VMs).
    pub trace: Vec<String>,
}

/// A TAX virtual machine: executes one agent's briefcase safely.
///
/// "The only other requirements placed on the virtual machines is that
/// they issue briefcases for communication […] Furthermore, VMs must
/// respond to commands issued by the firewall" (§3.3) — command handling
/// lives in the kernel's VM guard threads; this trait is the execution
/// engine those threads drive.
pub trait VirtualMachine: Send + Sync {
    /// The VM's name, as addressed by agent URIs (`vm_bin`, `vm_c`, …).
    fn name(&self) -> &str;

    /// Whether this VM can execute the given `CODE-TYPE`.
    fn accepts(&self, code_type: &str) -> bool;

    /// Executes the agent whose code and state are in `briefcase`.
    ///
    /// # Errors
    ///
    /// [`VmError`] if the code cannot be extracted, verified, compiled, or
    /// run. Faults never escape as panics — that is the VM's §3.3 safety
    /// obligation.
    fn execute(
        &self,
        briefcase: &mut Briefcase,
        hooks: &mut dyn HostHooks,
        ctx: &ExecContext<'_>,
    ) -> Result<Execution, VmError>;
}

/// Reads the briefcase's `CODE-TYPE` (defaulting to source for bare-code
/// briefcases).
pub(crate) fn code_type_of(briefcase: &Briefcase) -> String {
    briefcase
        .single_str(tacoma_briefcase::folders::CODE_TYPE)
        .unwrap_or(code_types::TAXSCRIPT_SOURCE)
        .to_owned()
}

/// Extracts the raw `CODE` bytes.
pub(crate) fn code_bytes(briefcase: &Briefcase) -> Result<Vec<u8>, VmError> {
    Ok(briefcase
        .element(tacoma_briefcase::folders::CODE, 0)
        .map_err(|_| VmError::NoCode)?
        .data()
        .to_vec())
}
