//! The native-code registry: this reproduction's loader for "machine
//! code".
//!
//! Rust cannot safely load and run foreign machine code, so a native
//! binary's payload carries a *registry key*; every host installs the Rust
//! implementations it can execute, keyed by name. The transfer cost, the
//! signature check, and the architecture match are all still exercised —
//! only the final `exec()` is table lookup instead of `mmap`. This is the
//! substitution DESIGN.md documents for the repro band's "static binaries
//! make agent migration awkward to emulate".

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use tacoma_briefcase::Briefcase;
use tacoma_taxscript::{HostHooks, Outcome};

use crate::VmError;

/// A natively implemented program (the stand-in for a compiled C binary
/// such as the W3C Webbot).
pub trait NativeProgram: Send + Sync {
    /// Runs the program against the agent's briefcase and host hooks.
    ///
    /// # Errors
    ///
    /// [`VmError`] if the program faults.
    fn run(&self, briefcase: &mut Briefcase, hooks: &mut dyn HostHooks)
        -> Result<Outcome, VmError>;
}

impl<F> NativeProgram for F
where
    F: Fn(&mut Briefcase, &mut dyn HostHooks) -> Result<Outcome, VmError> + Send + Sync,
{
    fn run(
        &self,
        briefcase: &mut Briefcase,
        hooks: &mut dyn HostHooks,
    ) -> Result<Outcome, VmError> {
        self(briefcase, hooks)
    }
}

/// The per-host table of installed native programs.
#[derive(Clone, Default)]
pub struct NativeRegistry {
    programs: HashMap<String, Arc<dyn NativeProgram>>,
}

impl NativeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        NativeRegistry::default()
    }

    /// Installs a program under `key`; replaces any previous program.
    pub fn install(&mut self, key: impl Into<String>, program: Arc<dyn NativeProgram>) {
        self.programs.insert(key.into(), program);
    }

    /// Installs a closure-backed program.
    pub fn install_fn<F>(&mut self, key: impl Into<String>, f: F)
    where
        F: Fn(&mut Briefcase, &mut dyn HostHooks) -> Result<Outcome, VmError>
            + Send
            + Sync
            + 'static,
    {
        self.install(key, Arc::new(f));
    }

    /// Looks up a program.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownNativeProgram`] if nothing is installed under
    /// `key`.
    pub fn get(&self, key: &str) -> Result<Arc<dyn NativeProgram>, VmError> {
        self.programs
            .get(key)
            .cloned()
            .ok_or_else(|| VmError::UnknownNativeProgram {
                name: key.to_owned(),
            })
    }

    /// Whether `key` is installed.
    pub fn contains(&self, key: &str) -> bool {
        self.programs.contains_key(key)
    }

    /// Installed keys, unordered.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.programs.keys().map(String::as_str)
    }

    /// Number of installed programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

impl fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut keys: Vec<&str> = self.keys().collect();
        keys.sort_unstable();
        f.debug_struct("NativeRegistry")
            .field("programs", &keys)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_taxscript::NullHooks;

    #[test]
    fn install_and_run() {
        let mut reg = NativeRegistry::new();
        reg.install_fn("double", |bc, _hooks| {
            let v = bc.single_i64("IN").unwrap_or(0);
            bc.set_single("OUT", v * 2);
            Ok(Outcome::Finished)
        });
        let program = reg.get("double").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single("IN", 21i64);
        let mut hooks = NullHooks::default();
        assert_eq!(program.run(&mut bc, &mut hooks).unwrap(), Outcome::Finished);
        assert_eq!(bc.single_i64("OUT").unwrap(), 42);
    }

    #[test]
    fn unknown_key_errors() {
        let reg = NativeRegistry::new();
        assert!(matches!(
            reg.get("ghost"),
            Err(VmError::UnknownNativeProgram { name }) if name == "ghost"
        ));
    }

    #[test]
    fn reinstall_replaces() {
        let mut reg = NativeRegistry::new();
        reg.install_fn("p", |_, _| Ok(Outcome::Exit(1)));
        reg.install_fn("p", |_, _| Ok(Outcome::Exit(2)));
        assert_eq!(reg.len(), 1);
        let mut bc = Briefcase::new();
        let mut hooks = NullHooks::default();
        assert_eq!(
            reg.get("p").unwrap().run(&mut bc, &mut hooks).unwrap(),
            Outcome::Exit(2)
        );
    }

    #[test]
    fn clone_shares_programs() {
        let mut reg = NativeRegistry::new();
        reg.install_fn("p", |_, _| Ok(Outcome::Finished));
        let copy = reg.clone();
        assert!(copy.contains("p"));
    }
}
