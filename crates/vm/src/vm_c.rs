//! `vm_c`: the Figure 3 execution pipeline.
//!
//! > "First, the briefcase containing the agent will be delivered to vm_c
//! > (step 1). vm_c activates ag_cc which extracts the code (step 2) and
//! > then activates ag_exec (3) with the code and the compiler as
//! > arguments. Ag_exec runs the compiler (4) and stores the binary in the
//! > briefcase received from ag_cc, and returns it to ag_cc (5). Ag_cc
//! > then returns the binary to vm_c (6) which uses vm_bin (7) to activate
//! > the agent."
//!
//! The "C source" is TaxScript source (see the crate docs for the
//! substitution) and "gcc" is the TaxScript compiler, but the seven steps
//! — and where the code and the binary live at each one — are reproduced
//! exactly, and recorded in the execution trace.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_taxscript::compile_source;

use crate::vmtrait::{code_bytes, code_type_of, code_types};
use crate::{ExecContext, Execution, HostHooks, VirtualMachine, VmBin, VmError};

/// The compiling VM.
#[derive(Debug, Default)]
pub struct VmC {
    bin: VmBin,
}

/// The conventional name of the compiling VM.
pub const VM_C_NAME: &str = "vm_c";

impl VmC {
    /// A new compiling VM.
    pub fn new() -> Self {
        VmC::default()
    }
}

impl VirtualMachine for VmC {
    fn name(&self) -> &str {
        VM_C_NAME
    }

    fn accepts(&self, code_type: &str) -> bool {
        code_type == code_types::TAXSCRIPT_SOURCE
    }

    fn execute(
        &self,
        briefcase: &mut Briefcase,
        hooks: &mut dyn HostHooks,
        ctx: &ExecContext<'_>,
    ) -> Result<Execution, VmError> {
        let code_type = code_type_of(briefcase);
        if code_type != code_types::TAXSCRIPT_SOURCE {
            return Err(VmError::UnsupportedCodeType {
                vm: VM_C_NAME,
                code_type,
            });
        }

        let mut trace = vec!["1: briefcase delivered to vm_c".to_owned()];

        // Steps 2–3: ag_cc extracts the code and hands it to ag_exec
        // together with the compiler.
        let source_bytes = code_bytes(briefcase)?;
        let source = String::from_utf8(source_bytes.clone()).map_err(|_| VmError::BadArtifact {
            detail: "source code is not UTF-8",
        })?;
        trace.push(format!(
            "2: ag_cc extracted {} bytes of source",
            source.len()
        ));
        trace.push("3: ag_cc activated ag_exec with code and compiler".to_owned());

        // Step 4: ag_exec runs the compiler (`gcc *.c -o res`).
        let program = compile_source(&source)?;
        trace.push(format!(
            "4: ag_exec ran compiler: {} fns, {} instructions",
            program.functions().len(),
            program.instruction_count()
        ));

        // Steps 5–6: the binary is stored in the briefcase and handed back
        // up the chain to vm_c.
        let binary = program.encode();
        briefcase.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        let code_folder = briefcase.ensure_folder(folders::CODE);
        code_folder.clear();
        code_folder.append(binary);
        trace.push("5: ag_exec stored binary in briefcase, returned to ag_cc".to_owned());
        trace.push("6: ag_cc returned binary to vm_c".to_owned());

        // Step 7: vm_bin activates the agent. The binary was produced by
        // this host's own trusted toolchain from source whose signature
        // (if any) the firewall checked on arrival, so it runs unsigned.
        trace.push("7: vm_c activated agent on vm_bin".to_owned());
        let bin_ctx = ExecContext {
            trust: ctx.trust,
            natives: ctx.natives,
            host_arch: ctx.host_arch.clone(),
            fuel: ctx.fuel,
            allow_unsigned: true,
        };
        let inner = self.bin.execute(briefcase, hooks, &bin_ctx)?;
        trace.extend(inner.trace);
        Ok(Execution {
            outcome: inner.outcome,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_security::TrustStore;
    use tacoma_taxscript::{NullHooks, Outcome};

    use crate::NativeRegistry;

    fn run(bc: &mut Briefcase) -> Result<(Execution, Vec<String>), VmError> {
        let trust = TrustStore::new();
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        let exec = VmC::new().execute(bc, &mut hooks, &ctx)?;
        Ok((exec.clone(), hooks.displayed))
    }

    #[test]
    fn pipeline_compiles_and_runs_figure3_style() {
        let mut bc = Briefcase::new();
        bc.append(
            folders::CODE,
            r#"fn main() { display("Hello world"); exit(0); }"#,
        );
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        let (exec, displayed) = run(&mut bc).unwrap();
        assert_eq!(exec.outcome, Outcome::Exit(0));
        assert_eq!(displayed, vec!["Hello world"]);
        // All seven numbered steps appear, in order.
        for step in 1..=7 {
            assert!(
                exec.trace
                    .iter()
                    .any(|l| l.starts_with(&format!("{step}:"))),
                "missing step {step} in {:?}",
                exec.trace
            );
        }
    }

    #[test]
    fn briefcase_carries_binary_after_execution() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, "fn main() { }");
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        run(&mut bc).unwrap();
        // The source was replaced by the compiled binary — the agent
        // would not be recompiled at its next hop.
        assert_eq!(
            bc.single_str(folders::CODE_TYPE).unwrap(),
            code_types::TAXSCRIPT_BYTECODE
        );
        let code = bc.element(folders::CODE, 0).unwrap();
        assert!(code.data().starts_with(&tacoma_taxscript::PROGRAM_MAGIC));
    }

    #[test]
    fn compile_error_surfaces_from_step4() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, "fn main( { }");
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        assert!(matches!(run(&mut bc), Err(VmError::Compile(_))));
    }

    #[test]
    fn bytecode_is_not_accepted_directly() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, vec![0u8; 4]);
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        assert!(matches!(
            run(&mut bc),
            Err(VmError::UnsupportedCodeType { vm: "vm_c", .. })
        ));
    }
}
