//! `vm_script`: interprets TaxScript source or bytecode directly — the
//! stand-in for the scripting-language VMs (`vm_perl`, `vm_tcl`) of the
//! original system.

use tacoma_briefcase::Briefcase;
use tacoma_taxscript::analysis::{AnalysisCache, AnalysisFailure};
use tacoma_taxscript::{compile_source, HostHooks, Program, Vm};

use crate::vmtrait::{code_bytes, code_type_of, code_types};
use crate::{ExecContext, Execution, VirtualMachine, VmError, VmPool};

/// The scripting VM. Safety mechanism: the TaxScript sandbox (fuel,
/// bounded stacks, contained faults) — the "sand-boxing" option of §3.3.
///
/// The paper's conclusion promises "additional virtual machines"; since
/// every scripting language in this reproduction executes TaxScript,
/// additional language VMs are aliases: [`VmScript::named`] exposes the
/// same engine under another landing-pad name (`vm_perl`, `vm_tcl`, …)
/// so agents addressed at those VMs land and run.
#[derive(Debug)]
pub struct VmScript {
    name: String,
}

impl VmScript {
    /// A new scripting VM under the conventional name.
    pub fn new() -> Self {
        VmScript {
            name: VM_SCRIPT_NAME.to_owned(),
        }
    }

    /// A scripting VM exposed under a different landing-pad name.
    pub fn named(name: impl Into<String>) -> Self {
        VmScript { name: name.into() }
    }
}

impl Default for VmScript {
    fn default() -> Self {
        VmScript::new()
    }
}

/// The conventional name of the scripting VM.
pub const VM_SCRIPT_NAME: &str = "vm_script";

impl VirtualMachine for VmScript {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, code_type: &str) -> bool {
        code_type == code_types::TAXSCRIPT_SOURCE || code_type == code_types::TAXSCRIPT_BYTECODE
    }

    fn execute(
        &self,
        briefcase: &mut Briefcase,
        hooks: &mut dyn HostHooks,
        ctx: &ExecContext<'_>,
    ) -> Result<Execution, VmError> {
        let code_type = code_type_of(briefcase);
        let code = code_bytes(briefcase)?;
        let mut trace = Vec::new();

        let cached;
        let program: &Program = match code_type.as_str() {
            code_types::TAXSCRIPT_SOURCE => {
                let source = String::from_utf8(code).map_err(|_| VmError::BadArtifact {
                    detail: "source code is not UTF-8",
                })?;
                // Source rides the same content-hash cache as bytecode:
                // an itinerant agent carrying source pays compilation
                // (and superinstruction lowering) once, not per hop.
                let (result, hit) = AnalysisCache::shared().analyze_source(&source);
                cached = match result {
                    Ok(verified) => verified,
                    Err(AnalysisFailure::Compile(_)) => {
                        // Recompile for the structured error; failures
                        // are rare and the compiler fails fast.
                        compile_source(&source)?;
                        return Err(VmError::BadArtifact {
                            detail: "source failed to compile",
                        });
                    }
                    Err(AnalysisFailure::Verify(e)) => return Err(VmError::Unverifiable(e)),
                    Err(AnalysisFailure::Decode(_)) => {
                        return Err(VmError::BadArtifact {
                            detail: "source keyed a decode failure",
                        })
                    }
                };
                trace.push(format!(
                    "vm_script: {} {} bytes of source",
                    if hit { "cache-hit" } else { "compiled" },
                    source.len()
                ));
                &cached.program
            }
            code_types::TAXSCRIPT_BYTECODE => {
                // Arriving bytecode is untrusted: prove it cannot fault
                // the VM before running it (verify-before-execute). The
                // decode + analysis pipeline is memoized by content hash
                // in the cache shared with firewall admission, so a
                // known-good script skips both on every hop after the
                // first.
                let (result, hit) = AnalysisCache::shared().analyze_bytes(&code);
                cached = match result {
                    Ok(verified) => verified,
                    Err(AnalysisFailure::Verify(e)) => return Err(VmError::Unverifiable(e)),
                    Err(_) => {
                        // Re-decode for the precise error; failures are
                        // rare and decode fails fast.
                        Program::decode(&code)?;
                        return Err(VmError::BadArtifact {
                            detail: "bytecode failed to decode",
                        });
                    }
                };
                trace.push(format!(
                    "vm_script: {} {} bytes of bytecode (verified {} functions, max stack {})",
                    if hit { "cache-hit" } else { "loaded" },
                    code.len(),
                    cached.program.functions().len(),
                    cached.report.verified.max_stack()
                ));
                &cached.program
            }
            other => {
                return Err(VmError::UnsupportedCodeType {
                    vm: VM_SCRIPT_NAME,
                    code_type: other.to_owned(),
                })
            }
        };

        let mut scratch = VmPool::shared().checkout();
        let mut vm = Vm::new(program, HooksProxy(hooks)).with_fuel(ctx.fuel);
        let outcome = vm.run_with_scratch(briefcase, &mut scratch);
        VmPool::shared().checkin(scratch);
        let outcome = outcome?;
        trace.push(format!("vm_script: agent ended with {outcome:?}"));
        Ok(Execution { outcome, trace })
    }
}

/// Adapts `&mut dyn HostHooks` to the by-value hooks parameter of
/// [`Vm::new`].
pub(crate) struct HooksProxy<'a>(pub &'a mut dyn HostHooks);

impl HostHooks for HooksProxy<'_> {
    fn display(&mut self, text: &str) {
        self.0.display(text);
    }
    fn go(&mut self, uri: &str, briefcase: &Briefcase) -> tacoma_taxscript::GoDecision {
        self.0.go(uri, briefcase)
    }
    fn spawn(&mut self, uri: &str, briefcase: &Briefcase) -> Option<String> {
        self.0.spawn(uri, briefcase)
    }
    fn activate(&mut self, uri: &str, briefcase: &Briefcase) -> bool {
        self.0.activate(uri, briefcase)
    }
    fn meet(&mut self, uri: &str, briefcase: &Briefcase) -> Option<Briefcase> {
        self.0.meet(uri, briefcase)
    }
    fn await_bc(&mut self, timeout_ms: i64) -> Option<Briefcase> {
        self.0.await_bc(timeout_ms)
    }
    fn now_ms(&mut self) -> i64 {
        self.0.now_ms()
    }
    fn host_name(&mut self) -> String {
        self.0.host_name()
    }
    fn work_ns(&mut self, nanos: u64) {
        self.0.work_ns(nanos);
    }
}

impl std::fmt::Debug for HooksProxy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HooksProxy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_briefcase::folders;
    use tacoma_security::TrustStore;
    use tacoma_taxscript::{NullHooks, Outcome};

    use crate::NativeRegistry;

    fn run(bc: &mut Briefcase) -> Result<Execution, VmError> {
        let trust = TrustStore::new();
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        VmScript::new().execute(bc, &mut hooks, &ctx)
    }

    #[test]
    fn executes_source() {
        let mut bc = Briefcase::new();
        bc.append(
            folders::CODE,
            r#"fn main() { bc_set("OUT", 42); exit(0); }"#,
        );
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        let exec = run(&mut bc).unwrap();
        assert_eq!(exec.outcome, Outcome::Exit(0));
        assert_eq!(bc.single_i64("OUT").unwrap(), 42);
    }

    #[test]
    fn executes_bytecode() {
        let program = compile_source("fn main() { exit(9); }").unwrap();
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        assert_eq!(run(&mut bc).unwrap().outcome, Outcome::Exit(9));
    }

    #[test]
    fn bytecode_cache_hit_on_second_run() {
        let program = compile_source("fn main() { exit(3); }").unwrap();
        let load = || {
            let mut bc = Briefcase::new();
            bc.append(folders::CODE, program.encode());
            bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
            run(&mut bc)
        };
        assert_eq!(load().unwrap().outcome, Outcome::Exit(3));
        let warm = load().unwrap();
        assert_eq!(warm.outcome, Outcome::Exit(3));
        assert!(
            warm.trace.iter().any(|t| t.contains("cache-hit")),
            "{:?}",
            warm.trace
        );
    }

    #[test]
    fn refuses_unverifiable_bytecode() {
        // A jump to code_len decodes fine (Program::validate tolerates
        // it) but the verifier proves it would run off the end.
        use tacoma_taxscript::Op;
        let mut program = compile_source("fn main() { exit(9); }").unwrap();
        let main = program.main_index();
        let end = program.functions()[main].code.len() as u32;
        program.functions_mut()[main].code[0] = Op::Jump(end);
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        assert!(matches!(run(&mut bc), Err(VmError::Unverifiable(_))));
    }

    #[test]
    fn defaults_to_source_without_code_type() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, "fn main() { exit(1); }");
        assert_eq!(run(&mut bc).unwrap().outcome, Outcome::Exit(1));
    }

    #[test]
    fn missing_code_is_an_error() {
        let mut bc = Briefcase::new();
        assert_eq!(run(&mut bc).unwrap_err(), VmError::NoCode);
    }

    #[test]
    fn rejects_binary_artifacts() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, vec![1u8, 2, 3]);
        bc.set_single(folders::CODE_TYPE, code_types::BINARY_ARTIFACT);
        assert!(matches!(
            run(&mut bc),
            Err(VmError::UnsupportedCodeType {
                vm: "vm_script",
                ..
            })
        ));
    }

    #[test]
    fn compile_errors_are_contained() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, "fn main() { let = ; }");
        assert!(matches!(run(&mut bc), Err(VmError::Compile(_))));
    }

    #[test]
    fn runtime_faults_are_contained() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, "fn main() { let x = 1 / 0; }");
        assert!(matches!(run(&mut bc), Err(VmError::Runtime(_))));
    }
}
