use std::fmt;

use tacoma_security::SecurityError;
use tacoma_taxscript::{RuntimeError, ScriptError, VerifyError};

/// Errors from virtual-machine execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// The briefcase carries no `CODE` folder.
    NoCode,
    /// The briefcase's `CODE-TYPE` is not one this VM executes.
    UnsupportedCodeType {
        /// The VM that refused.
        vm: &'static str,
        /// The code type found.
        code_type: String,
    },
    /// The agent's code failed to compile (vm_c pipeline).
    Compile(ScriptError),
    /// The agent faulted at run time (contained by the sandbox).
    Runtime(RuntimeError),
    /// Arriving bytecode decoded but failed the bytecode verifier, so it
    /// is refused before a single instruction runs.
    Unverifiable(VerifyError),
    /// The binary is not signed by a trusted principal (§3.3's vm_bin
    /// precondition).
    Untrusted(SecurityError),
    /// The artifact bundle has no payload for this host's architecture.
    NoMatchingArchitecture {
        /// This host's architecture.
        host: String,
        /// Architectures the bundle does carry.
        available: Vec<String>,
    },
    /// A native payload references a program not in this host's registry.
    UnknownNativeProgram {
        /// The referenced program name.
        name: String,
    },
    /// The artifact bundle bytes are malformed.
    BadArtifact {
        /// What was wrong.
        detail: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoCode => write!(f, "briefcase carries no CODE folder"),
            VmError::UnsupportedCodeType { vm, code_type } => {
                write!(f, "{vm} cannot execute code of type {code_type:?}")
            }
            VmError::Compile(e) => write!(f, "compilation failed: {e}"),
            VmError::Runtime(e) => write!(f, "agent faulted: {e}"),
            VmError::Unverifiable(e) => write!(f, "bytecode failed verification: {e}"),
            VmError::Untrusted(e) => write!(f, "binary rejected: {e}"),
            VmError::NoMatchingArchitecture { host, available } => {
                write!(
                    f,
                    "no binary for architecture {host} (bundle has {available:?})"
                )
            }
            VmError::UnknownNativeProgram { name } => {
                write!(f, "native program {name:?} not installed on this host")
            }
            VmError::BadArtifact { detail } => write!(f, "malformed artifact bundle: {detail}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Compile(e) => Some(e),
            VmError::Runtime(e) => Some(e),
            VmError::Unverifiable(e) => Some(e),
            VmError::Untrusted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScriptError> for VmError {
    fn from(e: ScriptError) -> Self {
        VmError::Compile(e)
    }
}

impl From<RuntimeError> for VmError {
    fn from(e: RuntimeError) -> Self {
        VmError::Runtime(e)
    }
}

impl From<VerifyError> for VmError {
    fn from(e: VerifyError) -> Self {
        VmError::Unverifiable(e)
    }
}

impl From<SecurityError> for VmError {
    fn from(e: SecurityError) -> Self {
        VmError::Untrusted(e)
    }
}
