//! `vm_bin`: "executes binaries directly on top of the operating system,
//! provided the binary is signed by a trusted principal" (§3.3).

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::{Digest, Principal, SecurityError, Signature};
use tacoma_taxscript::{Program, Vm};

use crate::vm_script::HooksProxy;
use crate::vmtrait::{code_bytes, code_type_of, code_types};
use crate::{
    ArtifactBundle, ExecContext, Execution, HostHooks, ProgramCache, VirtualMachine, VmError,
    VmPool,
};

/// Runs a decoded program with a pooled scratch, returning the pool's
/// scratch afterwards even on a fault.
fn launch(
    program: &Program,
    briefcase: &mut Briefcase,
    hooks: &mut dyn HostHooks,
    fuel: u64,
) -> Result<tacoma_taxscript::Outcome, VmError> {
    let mut scratch = VmPool::shared().checkout();
    let mut vm = Vm::new(program, HooksProxy(hooks)).with_fuel(fuel);
    let outcome = vm.run_with_scratch(briefcase, &mut scratch);
    VmPool::shared().checkin(scratch);
    Ok(outcome?)
}

/// The binary VM. Safety mechanism: code signing — efficient execution
/// "once sufficient trust has been established".
#[derive(Debug, Default)]
pub struct VmBin;

/// The conventional name of the binary VM.
pub const VM_BIN_NAME: &str = "vm_bin";

impl VmBin {
    /// A new binary VM.
    pub fn new() -> Self {
        VmBin
    }

    /// Verifies the briefcase's signature over its `CODE` element.
    ///
    /// # Errors
    ///
    /// [`SecurityError`] when the `PRINCIPAL`/`SIG` folders are missing or
    /// the signature does not verify against a trusted key.
    fn verify_signature(briefcase: &Briefcase, ctx: &ExecContext<'_>) -> Result<(), SecurityError> {
        let principal_name =
            briefcase
                .single_str(folders::PRINCIPAL)
                .map_err(|_| SecurityError::BadPrincipal {
                    name: "<missing>".into(),
                })?;
        let principal = Principal::new(principal_name)?;
        let sig_hex =
            briefcase
                .single_str(folders::SIGNATURE)
                .map_err(|_| SecurityError::BadSignature {
                    principal: principal.to_string(),
                })?;
        let digest = Digest::from_hex(sig_hex).map_err(|_| SecurityError::BadSignature {
            principal: principal.to_string(),
        })?;
        let code =
            briefcase
                .element(folders::CODE, 0)
                .map_err(|_| SecurityError::BadSignature {
                    principal: principal.to_string(),
                })?;
        ctx.trust
            .verify(&principal, code.data(), &Signature::from_digest(digest))
    }
}

impl VirtualMachine for VmBin {
    fn name(&self) -> &str {
        VM_BIN_NAME
    }

    fn accepts(&self, code_type: &str) -> bool {
        code_type == code_types::BINARY_ARTIFACT || code_type == code_types::TAXSCRIPT_BYTECODE
    }

    fn execute(
        &self,
        briefcase: &mut Briefcase,
        hooks: &mut dyn HostHooks,
        ctx: &ExecContext<'_>,
    ) -> Result<Execution, VmError> {
        let mut trace = Vec::new();

        // Trust first: vm_bin's whole safety story is the signature.
        match Self::verify_signature(briefcase, ctx) {
            Ok(()) => trace.push("vm_bin: signature verified against trusted principal".to_owned()),
            Err(e) if ctx.allow_unsigned => {
                trace.push(format!(
                    "vm_bin: unsigned binary accepted by trusting policy ({e})"
                ));
            }
            Err(e) => return Err(e.into()),
        }

        let code_type = code_type_of(briefcase);
        let code = code_bytes(briefcase)?;

        match code_type.as_str() {
            code_types::TAXSCRIPT_BYTECODE => {
                // A raw compiled program (the vm_c pipeline's output).
                // The decode + lowering are memoized by content hash, so
                // a repeat visitor launches from the warm program.
                let (program, hit) = ProgramCache::shared().decode(&code)?;
                trace.push(format!(
                    "vm_bin: executing {} bytecode instructions ({})",
                    program.instruction_count(),
                    if hit { "cache-hit" } else { "decoded" },
                ));
                let outcome = launch(&program, briefcase, hooks, ctx.fuel)?;
                trace.push(format!("vm_bin: agent ended with {outcome:?}"));
                Ok(Execution { outcome, trace })
            }
            code_types::BINARY_ARTIFACT => {
                let bundle = ArtifactBundle::decode(&code)?;
                let artifact = bundle.select(&ctx.host_arch).ok_or_else(|| {
                    VmError::NoMatchingArchitecture {
                        host: ctx.host_arch.to_string(),
                        available: bundle.architectures(),
                    }
                })?;
                trace.push(format!(
                    "vm_bin: selected binary {:?} for architecture {}",
                    artifact.name, artifact.arch
                ));
                if let Some(key) = artifact.native_key() {
                    let program = ctx.natives.get(key)?;
                    trace.push(format!("vm_bin: exec native program {key:?}"));
                    let outcome = program.run(briefcase, hooks)?;
                    trace.push(format!("vm_bin: agent ended with {outcome:?}"));
                    Ok(Execution { outcome, trace })
                } else {
                    let (program, hit) = ProgramCache::shared().decode(&artifact.payload)?;
                    trace.push(format!(
                        "vm_bin: executing {} bytecode instructions ({})",
                        program.instruction_count(),
                        if hit { "cache-hit" } else { "decoded" },
                    ));
                    let outcome = launch(&program, briefcase, hooks, ctx.fuel)?;
                    trace.push(format!("vm_bin: agent ended with {outcome:?}"));
                    Ok(Execution { outcome, trace })
                }
            }
            other => Err(VmError::UnsupportedCodeType {
                vm: VM_BIN_NAME,
                code_type: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_security::{Keyring, TrustStore};
    use tacoma_taxscript::{compile_source, NullHooks, Outcome};

    use crate::{Architecture, BinaryArtifact, NativeRegistry};

    fn signed_briefcase(code: Vec<u8>, code_type: &str, keys: &Keyring) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.set_single(folders::PRINCIPAL, keys.principal().as_str());
        bc.set_single(folders::SIGNATURE, keys.sign(&code).digest().to_hex());
        bc.append(folders::CODE, code);
        bc.set_single(folders::CODE_TYPE, code_type);
        bc
    }

    fn trusting(keys: &Keyring) -> TrustStore {
        let mut t = TrustStore::new();
        t.trust(keys.public());
        t
    }

    #[test]
    fn signed_bytecode_executes() {
        let keys = Keyring::generate(&Principal::new("alice").unwrap(), 1);
        let program = compile_source("fn main() { exit(5); }").unwrap();
        let mut bc = signed_briefcase(program.encode(), code_types::TAXSCRIPT_BYTECODE, &keys);
        let trust = trusting(&keys);
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        let exec = VmBin::new().execute(&mut bc, &mut hooks, &ctx).unwrap();
        assert_eq!(exec.outcome, Outcome::Exit(5));
        assert!(exec.trace[0].contains("signature verified"));
    }

    #[test]
    fn unsigned_binary_rejected_by_default() {
        let program = compile_source("fn main() { }").unwrap();
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        let trust = TrustStore::new();
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        assert!(matches!(
            VmBin::new().execute(&mut bc, &mut hooks, &ctx),
            Err(VmError::Untrusted(_))
        ));
    }

    #[test]
    fn unsigned_binary_allowed_when_policy_permits() {
        let program = compile_source("fn main() { exit(3); }").unwrap();
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        let trust = TrustStore::new();
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives).allow_unsigned();
        let mut hooks = NullHooks::default();
        let exec = VmBin::new().execute(&mut bc, &mut hooks, &ctx).unwrap();
        assert_eq!(exec.outcome, Outcome::Exit(3));
    }

    #[test]
    fn tampered_code_rejected_even_if_signed() {
        let keys = Keyring::generate(&Principal::new("alice").unwrap(), 1);
        let program = compile_source("fn main() { }").unwrap();
        let mut bc = signed_briefcase(program.encode(), code_types::TAXSCRIPT_BYTECODE, &keys);
        // Tamper after signing.
        let tampered = compile_source("fn main() { exit(666); }").unwrap();
        bc.remove_folder(folders::CODE);
        bc.append(folders::CODE, tampered.encode());
        let trust = trusting(&keys);
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        assert!(matches!(
            VmBin::new().execute(&mut bc, &mut hooks, &ctx),
            Err(VmError::Untrusted(SecurityError::BadSignature { .. }))
        ));
    }

    #[test]
    fn artifact_bundle_selects_architecture_and_runs_native() {
        let keys = Keyring::generate(&Principal::new("w3c").unwrap(), 2);
        let bundle = ArtifactBundle::new()
            .with(BinaryArtifact::native(
                "webbot",
                Architecture::i386_linux(),
                "webbot",
                1000,
            ))
            .with(BinaryArtifact::native(
                "webbot",
                Architecture::simulated(),
                "webbot",
                1000,
            ));
        let mut bc = signed_briefcase(bundle.encode(), code_types::BINARY_ARTIFACT, &keys);

        let trust = trusting(&keys);
        let mut natives = NativeRegistry::new();
        natives.install_fn("webbot", |bc, _| {
            bc.set_single("SCANNED", 917i64);
            Ok(Outcome::Finished)
        });
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        let exec = VmBin::new().execute(&mut bc, &mut hooks, &ctx).unwrap();
        assert_eq!(exec.outcome, Outcome::Finished);
        assert_eq!(bc.single_i64("SCANNED").unwrap(), 917);
        assert!(exec.trace.iter().any(|l| l.contains("taxvm-sim")));
    }

    #[test]
    fn missing_architecture_is_reported_with_alternatives() {
        let keys = Keyring::generate(&Principal::new("w3c").unwrap(), 2);
        let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
            "webbot",
            Architecture::sparc_solaris(),
            "webbot",
            10,
        ));
        let mut bc = signed_briefcase(bundle.encode(), code_types::BINARY_ARTIFACT, &keys);
        let trust = trusting(&keys);
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        match VmBin::new().execute(&mut bc, &mut hooks, &ctx) {
            Err(VmError::NoMatchingArchitecture { available, .. }) => {
                assert_eq!(available, vec!["sparc-solaris".to_owned()]);
            }
            other => panic!("expected architecture mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_native_program_is_reported() {
        let keys = Keyring::generate(&Principal::new("w3c").unwrap(), 2);
        let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
            "webbot",
            Architecture::simulated(),
            "not-installed",
            10,
        ));
        let mut bc = signed_briefcase(bundle.encode(), code_types::BINARY_ARTIFACT, &keys);
        let trust = trusting(&keys);
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        assert!(matches!(
            VmBin::new().execute(&mut bc, &mut hooks, &ctx),
            Err(VmError::UnknownNativeProgram { .. })
        ));
    }

    #[test]
    fn source_is_not_a_binary() {
        let keys = Keyring::generate(&Principal::new("alice").unwrap(), 1);
        let mut bc = signed_briefcase(
            b"fn main() { }".to_vec(),
            code_types::TAXSCRIPT_SOURCE,
            &keys,
        );
        let trust = trusting(&keys);
        let natives = NativeRegistry::new();
        let ctx = ExecContext::new(&trust, &natives);
        let mut hooks = NullHooks::default();
        assert!(matches!(
            VmBin::new().execute(&mut bc, &mut hooks, &ctx),
            Err(VmError::UnsupportedCodeType { .. })
        ));
    }
}
