//! The VM acceptance matrix: which code types land on which virtual
//! machine, and that the same agent state flows through all three.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::{Keyring, Principal, TrustStore};
use tacoma_taxscript::{compile_source, NullHooks, Outcome};
use tacoma_vm::{
    code_types, Architecture, ArtifactBundle, BinaryArtifact, ExecContext, NativeRegistry,
    VirtualMachine, VmBin, VmC, VmScript,
};

const SRC: &str = r#"fn main() { bc_set("RAN-ON", host_name()); exit(0); }"#;

fn all_vms() -> Vec<Box<dyn VirtualMachine>> {
    vec![
        Box::new(VmScript::new()),
        Box::new(VmBin::new()),
        Box::new(VmC::new()),
    ]
}

#[test]
fn acceptance_matrix_is_exactly_as_documented() {
    let expectations = [
        ("vm_script", code_types::TAXSCRIPT_SOURCE, true),
        ("vm_script", code_types::TAXSCRIPT_BYTECODE, true),
        ("vm_script", code_types::BINARY_ARTIFACT, false),
        ("vm_bin", code_types::TAXSCRIPT_SOURCE, false),
        ("vm_bin", code_types::TAXSCRIPT_BYTECODE, true),
        ("vm_bin", code_types::BINARY_ARTIFACT, true),
        ("vm_c", code_types::TAXSCRIPT_SOURCE, true),
        ("vm_c", code_types::TAXSCRIPT_BYTECODE, false),
        ("vm_c", code_types::BINARY_ARTIFACT, false),
    ];
    for (vm_name, code_type, accepted) in expectations {
        let vm = all_vms()
            .into_iter()
            .find(|v| v.name() == vm_name)
            .expect("vm exists");
        assert_eq!(vm.accepts(code_type), accepted, "{vm_name} x {code_type}");
    }
}

#[test]
fn same_agent_runs_on_every_vm_shape() {
    let trust = TrustStore::new();
    let natives = NativeRegistry::new();

    // Source on vm_script and vm_c; bytecode on vm_bin (unsigned, allowed).
    let program = compile_source(SRC).unwrap();
    let cases: Vec<(Box<dyn VirtualMachine>, Vec<u8>, &str)> = vec![
        (
            Box::new(VmScript::new()),
            SRC.as_bytes().to_vec(),
            code_types::TAXSCRIPT_SOURCE,
        ),
        (
            Box::new(VmC::new()),
            SRC.as_bytes().to_vec(),
            code_types::TAXSCRIPT_SOURCE,
        ),
        (
            Box::new(VmBin::new()),
            program.encode(),
            code_types::TAXSCRIPT_BYTECODE,
        ),
    ];
    for (vm, code, code_type) in cases {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, code);
        bc.set_single(folders::CODE_TYPE, code_type);
        let ctx = ExecContext::new(&trust, &natives).allow_unsigned();
        let mut hooks = NullHooks::default();
        let exec = vm
            .execute(&mut bc, &mut hooks, &ctx)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", vm.name(), code_type));
        assert_eq!(exec.outcome, Outcome::Exit(0), "{}", vm.name());
        assert_eq!(
            bc.single_str("RAN-ON").unwrap(),
            "localhost",
            "{}",
            vm.name()
        );
    }
}

#[test]
fn named_script_vm_runs_under_its_alias() {
    let vm = VmScript::named("vm_perl");
    assert_eq!(vm.name(), "vm_perl");
    let trust = TrustStore::new();
    let natives = NativeRegistry::new();
    let mut bc = Briefcase::new();
    bc.append(folders::CODE, SRC);
    let ctx = ExecContext::new(&trust, &natives);
    let mut hooks = NullHooks::default();
    assert_eq!(
        vm.execute(&mut bc, &mut hooks, &ctx).unwrap().outcome,
        Outcome::Exit(0)
    );
}

#[test]
fn signed_artifact_runs_on_vm_bin_under_strict_trust() {
    let keys = Keyring::generate(&Principal::new("vendor").unwrap(), 4);
    let mut trust = TrustStore::new();
    trust.trust(keys.public());
    let mut natives = NativeRegistry::new();
    natives.install_fn("tool", |bc, _| {
        bc.set_single("NATIVE", "ran");
        Ok(Outcome::Finished)
    });

    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        "tool",
        Architecture::simulated(),
        "tool",
        5_000,
    ));
    let code = bundle.encode();
    let mut bc = Briefcase::new();
    bc.set_single(folders::PRINCIPAL, "vendor");
    bc.set_single(folders::SIGNATURE, keys.sign(&code).digest().to_hex());
    bc.append(folders::CODE, code);
    bc.set_single(folders::CODE_TYPE, code_types::BINARY_ARTIFACT);

    // Strict: no allow_unsigned. The trusted signature carries it.
    let ctx = ExecContext::new(&trust, &natives);
    let mut hooks = NullHooks::default();
    let exec = VmBin::new().execute(&mut bc, &mut hooks, &ctx).unwrap();
    assert_eq!(exec.outcome, Outcome::Finished);
    assert_eq!(bc.single_str("NATIVE").unwrap(), "ran");
}

#[test]
fn fuel_budget_applies_on_every_scripting_path() {
    let trust = TrustStore::new();
    let natives = NativeRegistry::new();
    let looping = "fn main() { while (1) { } }";
    for vm in [
        Box::new(VmScript::new()) as Box<dyn VirtualMachine>,
        Box::new(VmC::new()) as Box<dyn VirtualMachine>,
    ] {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, looping);
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        let ctx = ExecContext::new(&trust, &natives)
            .allow_unsigned()
            .with_fuel(50_000);
        let mut hooks = NullHooks::default();
        let err = vm.execute(&mut bc, &mut hooks, &ctx).unwrap_err();
        assert!(
            err.to_string().contains("instruction budget"),
            "{}: {err}",
            vm.name()
        );
    }
}
