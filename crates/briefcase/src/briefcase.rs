use std::collections::{btree_map, BTreeMap};
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::{codec, BriefcaseError, Element, Folder};

/// The shared interior of a [`Briefcase`]: the folder map plus a lazily
/// populated cache of the TAXB wire encoding.
///
/// The cache rides inside the `Arc` so that every pointer-bump clone of a
/// briefcase shares one encoding: a multi-destination `activate` that ships
/// the same state to N peers serializes once, not N times.
#[derive(Default)]
struct Shared {
    folders: BTreeMap<String, Folder>,
    /// Cached [`codec::encode_briefcase`] output. Invalidated (taken) by
    /// every copy-on-write mutation; never populated for a briefcase that
    /// is still being built up mutably.
    wire: OnceLock<bytes::Bytes>,
}

impl Clone for Shared {
    fn clone(&self) -> Self {
        // Cloning `Shared` only happens when `Arc::make_mut` unshares the
        // interior just before a mutation, so the copy starts with a cold
        // cache rather than an about-to-be-stale one.
        Shared {
            folders: self.folders.clone(),
            wire: OnceLock::new(),
        }
    }
}

impl PartialEq for Shared {
    fn eq(&self, other: &Self) -> bool {
        self.folders == other.folders
    }
}

impl Eq for Shared {}

/// A briefcase: an associative array of [`Folder`]s, the transportable state
/// of a mobile agent and the unit of exchange between communicating agents
/// (§3.1).
///
/// Folder names are unique within a briefcase and iteration is in sorted
/// name order, which makes the wire encoding deterministic.
///
/// The folder map lives behind an [`Arc`] with copy-on-write semantics:
/// `clone()` is a pointer bump, and the map is duplicated only when one of
/// the clones is first mutated (`Arc::make_mut`). Because folders and
/// elements are themselves refcounted, even that duplication copies names
/// and pointers, never payload bytes. This makes the `bcSend`/`meet`/
/// `spawn` fan-out paths O(folders), not O(bytes).
///
/// ```
/// use tacoma_briefcase::Briefcase;
///
/// let mut bc = Briefcase::new();
/// bc.append("RESULTS", "page-ok: /index.html");
/// bc.set_single("STATUS", "done");
/// assert_eq!(bc.single_str("STATUS").unwrap(), "done");
/// ```
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Briefcase {
    shared: Arc<Shared>,
}

impl Briefcase {
    /// Creates an empty briefcase.
    pub fn new() -> Self {
        Briefcase::default()
    }

    /// Read access to the folder map.
    fn folders(&self) -> &BTreeMap<String, Folder> {
        &self.shared.folders
    }

    /// Copy-on-write access to the folder map: unshares the interior if any
    /// clone still aliases it, and invalidates the cached wire encoding.
    ///
    /// Every `&mut self` method funnels through here, so the cache can never
    /// survive a mutation. Invalidation is conservative — handing out a
    /// `&mut Folder` counts as a mutation even if the caller never writes.
    fn folders_mut(&mut self) -> &mut BTreeMap<String, Folder> {
        let shared = Arc::make_mut(&mut self.shared);
        shared.wire.take();
        &mut shared.folders
    }

    /// Number of folders.
    pub fn folder_count(&self) -> usize {
        self.folders().len()
    }

    /// Whether the briefcase holds no folders at all.
    pub fn is_empty(&self) -> bool {
        self.folders().is_empty()
    }

    /// The folder with the given name, if present (the `bcIndex()` of the
    /// original C API).
    pub fn folder(&self, name: &str) -> Option<&Folder> {
        self.folders().get(name)
    }

    /// Mutable access to the folder with the given name, if present.
    pub fn folder_mut(&mut self, name: &str) -> Option<&mut Folder> {
        self.folders_mut().get_mut(name)
    }

    /// The folder with the given name, created empty if absent.
    pub fn ensure_folder(&mut self, name: &str) -> &mut Folder {
        self.folders_mut()
            .entry(name.to_owned())
            .or_insert_with(|| Folder::new(name))
    }

    /// Inserts a folder wholesale, returning any previous folder with the
    /// same name.
    pub fn insert_folder(&mut self, folder: Folder) -> Option<Folder> {
        self.folders_mut().insert(folder.name().to_owned(), folder)
    }

    /// Removes and returns the named folder — the agent idiom for dropping
    /// state before a `go()` to minimize bytes on the wire.
    pub fn remove_folder(&mut self, name: &str) -> Option<Folder> {
        self.folders_mut().remove(name)
    }

    /// Whether a folder with this name exists.
    pub fn contains_folder(&self, name: &str) -> bool {
        self.folders().contains_key(name)
    }

    /// Appends an element to the named folder, creating the folder if
    /// absent.
    pub fn append(&mut self, folder: &str, element: impl Into<Element>) -> &mut Self {
        self.ensure_folder(folder).append(element);
        self
    }

    /// Replaces the named folder's contents with a single element.
    pub fn set_single(&mut self, folder: &str, element: impl Into<Element>) -> &mut Self {
        let f = self.ensure_folder(folder);
        f.clear();
        f.append(element);
        self
    }

    /// The element at `index` in the named folder.
    ///
    /// # Errors
    ///
    /// [`BriefcaseError::NoSuchFolder`] or [`BriefcaseError::NoSuchElement`].
    pub fn element(&self, folder: &str, index: usize) -> Result<&Element, BriefcaseError> {
        let f = self
            .folder(folder)
            .ok_or_else(|| BriefcaseError::NoSuchFolder {
                name: folder.to_owned(),
            })?;
        f.get(index).ok_or_else(|| BriefcaseError::NoSuchElement {
            folder: folder.to_owned(),
            index,
            len: f.len(),
        })
    }

    /// The sole element of the named folder, as text.
    ///
    /// # Errors
    ///
    /// Fails if the folder or element is missing or the element is not
    /// UTF-8. If the folder has several elements the first is returned.
    pub fn single_str(&self, folder: &str) -> Result<&str, BriefcaseError> {
        self.element(folder, 0)?.as_str()
    }

    /// The sole element of the named folder, as an integer.
    ///
    /// # Errors
    ///
    /// As [`Briefcase::single_str`], plus [`BriefcaseError::NotInteger`].
    pub fn single_i64(&self, folder: &str) -> Result<i64, BriefcaseError> {
        self.element(folder, 0)?.as_i64()
    }

    /// Iterates over folders in name order.
    pub fn iter(&self) -> Folders<'_> {
        Folders(self.folders().values())
    }

    /// Iterates mutably over folders in name order.
    pub fn iter_mut(&mut self) -> FoldersMut<'_> {
        FoldersMut(self.folders_mut().values_mut())
    }

    /// Iterates over folder names in sorted order.
    pub fn names(&self) -> FolderNames<'_> {
        FolderNames(self.folders().keys())
    }

    /// Total payload bytes across all folders (excluding names and framing).
    pub fn payload_len(&self) -> usize {
        self.folders().values().map(Folder::payload_len).sum()
    }

    /// Exact size in bytes of [`Briefcase::encode`]'s output, without
    /// encoding. Used by the network simulator for transfer-cost accounting.
    pub fn encoded_len(&self) -> usize {
        match self.shared.wire.get() {
            Some(wire) => wire.len(),
            None => codec::encoded_len(self),
        }
    }

    /// Encodes the briefcase into the TAX wire format.
    pub fn encode(&self) -> Vec<u8> {
        match self.shared.wire.get() {
            Some(wire) => wire.to_vec(),
            None => codec::encode_briefcase(self),
        }
    }

    /// Encodes into a caller-provided buffer, appending — the
    /// allocation-reuse path for senders that encode in a loop.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self.shared.wire.get() {
            Some(wire) => out.extend_from_slice(wire),
            None => codec::encode_briefcase_into(self, out),
        }
    }

    /// The TAX wire encoding as a shared, refcounted buffer, computed at
    /// most once per briefcase lineage.
    ///
    /// The first call encodes and caches; later calls — including calls on
    /// pointer-bump clones of this briefcase — return a zero-copy handle to
    /// the same buffer. Any mutation (any `&mut self` method) invalidates
    /// the cache, so the returned bytes always equal a fresh
    /// [`Briefcase::encode`]. This is what makes firewall `ship` retries and
    /// multi-destination `activate` fan-out serialize once instead of per
    /// attempt/peer.
    pub fn wire_bytes(&self) -> bytes::Bytes {
        self.shared
            .wire
            .get_or_init(|| bytes::Bytes::from(codec::encode_briefcase(self)))
            .clone()
    }

    /// Whether the wire-encoding cache is currently populated. Exposed for
    /// tests and benches that assert on encode-once behavior.
    pub fn has_cached_wire(&self) -> bool {
        self.shared.wire.get().is_some()
    }

    /// Whether two briefcases share the same interior (a clone that has not
    /// yet diverged). Used by tests and benches to observe CoW.
    pub fn shares_storage_with(&self, other: &Briefcase) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Decodes a briefcase from the TAX wire format.
    ///
    /// # Errors
    ///
    /// Any [`BriefcaseError`] variant describing a malformed input; the
    /// decoder never panics on arbitrary bytes.
    pub fn decode(wire: &[u8]) -> Result<Self, BriefcaseError> {
        codec::decode_briefcase(wire)
    }

    /// Decodes with explicit [`codec::DecodeLimits`], for receivers facing
    /// untrusted peers that want tighter bounds than the defaults.
    ///
    /// # Errors
    ///
    /// Any [`BriefcaseError`] variant describing a malformed or over-limit
    /// input; the decoder never panics on arbitrary bytes.
    pub fn decode_with_limits(
        wire: &[u8],
        limits: &codec::DecodeLimits,
    ) -> Result<Self, BriefcaseError> {
        codec::decode_briefcase_with_limits(wire, limits)
    }

    /// Zero-copy decode from a shared buffer: elements are slices of
    /// `wire`'s allocation. See [`codec::decode_briefcase_bytes`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Briefcase::decode`].
    pub fn decode_bytes(wire: &bytes::Bytes) -> Result<Self, BriefcaseError> {
        codec::decode_briefcase_bytes(wire)
    }

    /// Zero-copy decode with explicit limits.
    ///
    /// # Errors
    ///
    /// Exactly as [`Briefcase::decode_with_limits`].
    pub fn decode_bytes_with_limits(
        wire: &bytes::Bytes,
        limits: &codec::DecodeLimits,
    ) -> Result<Self, BriefcaseError> {
        codec::decode_briefcase_bytes_with_limits(wire, limits)
    }

    /// Merges another briefcase into this one: folders with the same name
    /// have the other's elements appended after this one's.
    pub fn merge(&mut self, other: Briefcase) {
        let folders = self.folders_mut();
        for folder in other {
            match folders.get_mut(folder.name()) {
                Some(existing) => existing.extend(folder),
                None => {
                    folders.insert(folder.name().to_owned(), folder);
                }
            }
        }
    }

    /// Builds a briefcase directly from a folder map, with a cold cache.
    pub(crate) fn from_folder_map(folders: BTreeMap<String, Folder>) -> Self {
        Briefcase {
            shared: Arc::new(Shared {
                folders,
                wire: OnceLock::new(),
            }),
        }
    }
}

impl fmt::Debug for Briefcase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for folder in self.iter() {
            map.entry(&folder.name(), &folder.len());
        }
        map.finish()
    }
}

impl IntoIterator for Briefcase {
    type Item = Folder;
    type IntoIter = IntoFolders;
    fn into_iter(self) -> Self::IntoIter {
        let folders = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.folders,
            // Another clone is still alive: take a CoW snapshot of the map
            // (name strings + folder pointer bumps, no payload copies).
            Err(shared) => shared.folders.clone(),
        };
        IntoFolders(folders.into_values())
    }
}

impl FromIterator<Folder> for Briefcase {
    fn from_iter<T: IntoIterator<Item = Folder>>(iter: T) -> Self {
        let folders = iter
            .into_iter()
            .map(|folder| (folder.name().to_owned(), folder))
            .collect();
        Briefcase::from_folder_map(folders)
    }
}

impl Extend<Folder> for Briefcase {
    fn extend<T: IntoIterator<Item = Folder>>(&mut self, iter: T) {
        let folders = self.folders_mut();
        for folder in iter {
            folders.insert(folder.name().to_owned(), folder);
        }
    }
}

/// Iterator over a briefcase's folders in name order.
#[derive(Debug)]
pub struct Folders<'a>(btree_map::Values<'a, String, Folder>);

impl<'a> Iterator for Folders<'a> {
    type Item = &'a Folder;
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Mutable iterator over a briefcase's folders in name order.
#[derive(Debug)]
pub struct FoldersMut<'a>(btree_map::ValuesMut<'a, String, Folder>);

impl<'a> Iterator for FoldersMut<'a> {
    type Item = &'a mut Folder;
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Iterator over a briefcase's folder names in sorted order.
#[derive(Debug)]
pub struct FolderNames<'a>(btree_map::Keys<'a, String, Folder>);

impl<'a> Iterator for FolderNames<'a> {
    type Item = &'a str;
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(String::as_str)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Owning iterator over a briefcase's folders in name order.
#[derive(Debug)]
pub struct IntoFolders(btree_map::IntoValues<String, Folder>);

impl Iterator for IntoFolders {
    type Item = Folder;
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folders;

    #[test]
    fn ensure_folder_is_idempotent() {
        let mut bc = Briefcase::new();
        bc.ensure_folder("X").append("1");
        bc.ensure_folder("X").append("2");
        assert_eq!(bc.folder("X").unwrap().len(), 2);
        assert_eq!(bc.folder_count(), 1);
    }

    #[test]
    fn element_lookup_errors_are_specific() {
        let mut bc = Briefcase::new();
        bc.append("A", "x");
        assert!(matches!(
            bc.element("B", 0),
            Err(BriefcaseError::NoSuchFolder { .. })
        ));
        assert!(matches!(
            bc.element("A", 3),
            Err(BriefcaseError::NoSuchElement {
                len: 1,
                index: 3,
                ..
            })
        ));
    }

    #[test]
    fn set_single_replaces() {
        let mut bc = Briefcase::new();
        bc.append("S", "a").append("S", "b");
        bc.set_single("S", "only");
        assert_eq!(bc.folder("S").unwrap().len(), 1);
        assert_eq!(bc.single_str("S").unwrap(), "only");
    }

    #[test]
    fn merge_appends_and_unions() {
        let mut a = Briefcase::new();
        a.append("SHARED", "a1").append("ONLY-A", "x");
        let mut b = Briefcase::new();
        b.append("SHARED", "b1").append("ONLY-B", "y");
        a.merge(b);
        assert_eq!(a.folder("SHARED").unwrap().len(), 2);
        assert_eq!(
            a.folder("SHARED")
                .unwrap()
                .get(1)
                .unwrap()
                .as_str()
                .unwrap(),
            "b1"
        );
        assert!(a.contains_folder("ONLY-A") && a.contains_folder("ONLY-B"));
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut bc = Briefcase::new();
        bc.append("zeta", 1i64)
            .append("alpha", 2i64)
            .append("mid", 3i64);
        let names: Vec<_> = bc.names().collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn from_iterator_collects() {
        let bc: Briefcase = ["A", "B"].into_iter().map(Folder::new).collect();
        assert_eq!(bc.folder_count(), 2);
    }

    #[test]
    fn figure4_itinerary_idiom() {
        // The Figure-4 agent: remove first HOSTS element each hop; empty
        // folder (no element) means terminate.
        let mut bc = Briefcase::new();
        bc.append(folders::HOSTS, "tacoma://h1/vm")
            .append(folders::HOSTS, "tacoma://h2/vm");
        let mut hops = Vec::new();
        while let Some(e) = bc.folder_mut(folders::HOSTS).and_then(Folder::remove_front) {
            hops.push(e.as_str().unwrap().to_owned());
        }
        assert_eq!(hops, ["tacoma://h1/vm", "tacoma://h2/vm"]);
    }

    #[test]
    fn clone_is_a_pointer_bump_until_mutation() {
        let mut bc = Briefcase::new();
        bc.append("A", "x").append("B", "y");
        let copy = bc.clone();
        assert!(bc.shares_storage_with(&copy));
        bc.append("A", "z");
        assert!(!bc.shares_storage_with(&copy));
        assert_eq!(copy.folder("A").unwrap().len(), 1);
        assert_eq!(bc.folder("A").unwrap().len(), 2);
    }

    #[test]
    fn wire_cache_populates_and_survives_clone() {
        let mut bc = Briefcase::new();
        bc.append("A", "x");
        assert!(!bc.has_cached_wire());
        let w1 = bc.wire_bytes();
        assert!(bc.has_cached_wire());
        let copy = bc.clone();
        // The clone shares the cache: same allocation, no re-encode.
        let w2 = copy.wire_bytes();
        assert_eq!(w1.as_ptr(), w2.as_ptr());
        assert_eq!(w1.as_ref(), bc.encode().as_slice());
    }

    #[test]
    fn mutation_invalidates_wire_cache() {
        let mut bc = Briefcase::new();
        bc.append("A", "x");
        let stale = bc.wire_bytes();
        bc.append("A", "y");
        assert!(!bc.has_cached_wire());
        let fresh = bc.wire_bytes();
        assert_ne!(stale.as_ref(), fresh.as_ref());
        assert_eq!(fresh.as_ref(), Briefcase::decode(&fresh).unwrap().encode());
    }

    #[test]
    fn folder_mut_access_alone_invalidates_cache() {
        // Conservative invalidation: handing out `&mut Folder` counts as a
        // mutation even if nothing is written.
        let mut bc = Briefcase::new();
        bc.append("A", "x");
        bc.wire_bytes();
        let _ = bc.folder_mut("A");
        assert!(!bc.has_cached_wire());
    }

    #[test]
    fn encoded_len_matches_cache_when_populated() {
        let mut bc = Briefcase::new();
        bc.append("A", vec![1u8, 2, 3]);
        let plain = bc.encoded_len();
        bc.wire_bytes();
        assert_eq!(bc.encoded_len(), plain);
    }
}
