use std::fmt;

/// Errors produced by briefcase operations and the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BriefcaseError {
    /// The wire bytes did not start with the briefcase magic number.
    BadMagic {
        /// The four bytes actually found (or fewer, zero padded).
        found: [u8; 4],
    },
    /// The wire bytes used a codec version this library does not speak.
    UnsupportedVersion {
        /// Version tag found in the header.
        found: u8,
    },
    /// The wire bytes ended before the structure they promised.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
        /// What the decoder was reading when input ran out.
        context: &'static str,
    },
    /// A declared length exceeds the sanity limit for a single field.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// What field declared it.
        context: &'static str,
    },
    /// Trailing bytes followed a complete briefcase.
    TrailingBytes {
        /// Number of bytes left over.
        remaining: usize,
    },
    /// Two folders with the same name appeared in one encoded briefcase.
    DuplicateFolder {
        /// The offending folder name.
        name: String,
    },
    /// A folder name was not valid UTF-8 on the wire.
    BadFolderName,
    /// An element was interpreted as UTF-8 text but is not valid UTF-8.
    NotUtf8,
    /// An element was interpreted as an integer but does not parse as one.
    NotInteger,
    /// The named folder does not exist in this briefcase.
    NoSuchFolder {
        /// The name looked up.
        name: String,
    },
    /// The folder exists but the element index is out of range.
    NoSuchElement {
        /// Folder name.
        folder: String,
        /// Index requested.
        index: usize,
        /// Number of elements actually present.
        len: usize,
    },
}

impl fmt::Display for BriefcaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BriefcaseError::BadMagic { found } => {
                write!(f, "input is not a briefcase (magic bytes {found:02x?})")
            }
            BriefcaseError::UnsupportedVersion { found } => {
                write!(f, "unsupported briefcase codec version {found}")
            }
            BriefcaseError::Truncated { offset, context } => {
                write!(
                    f,
                    "briefcase truncated at byte {offset} while reading {context}"
                )
            }
            BriefcaseError::LengthOverflow { declared, context } => {
                write!(
                    f,
                    "declared length {declared} for {context} exceeds sanity limit"
                )
            }
            BriefcaseError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after briefcase")
            }
            BriefcaseError::DuplicateFolder { name } => {
                write!(f, "duplicate folder {name:?} in encoded briefcase")
            }
            BriefcaseError::BadFolderName => write!(f, "folder name is not valid UTF-8"),
            BriefcaseError::NotUtf8 => write!(f, "element is not valid UTF-8 text"),
            BriefcaseError::NotInteger => write!(f, "element does not contain an integer"),
            BriefcaseError::NoSuchFolder { name } => write!(f, "no folder named {name:?}"),
            BriefcaseError::NoSuchElement { folder, index, len } => {
                write!(
                    f,
                    "folder {folder:?} has {len} elements, index {index} is out of range"
                )
            }
        }
    }
}

impl std::error::Error for BriefcaseError {}
