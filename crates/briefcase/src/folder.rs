use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::Element;

/// A folder: an ordered list of [`Element`]s under a name inside a
/// [`Briefcase`](crate::Briefcase) (§3.1).
///
/// Folders behave like queues in the common itinerary idiom (Figure 4 pops
/// the next hop off the front of `HOSTS`) but allow arbitrary indexed
/// access.
///
/// The element list is held behind an [`Arc`] with copy-on-write semantics:
/// cloning a folder is a pointer bump, and the list is only duplicated when
/// one of the clones is mutated. Since elements are themselves refcounted
/// byte buffers, even that duplication copies pointers, not payload bytes.
///
/// ```
/// use tacoma_briefcase::{Element, Folder};
///
/// let mut f = Folder::new("HOSTS");
/// f.append("alpha");
/// f.append("beta");
/// assert_eq!(f.len(), 2);
/// assert_eq!(f.remove_front().unwrap().as_str().unwrap(), "alpha");
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Folder {
    name: String,
    elements: Arc<Vec<Element>>,
}

impl Folder {
    /// Creates an empty folder with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Folder {
            name: name.into(),
            elements: Arc::new(Vec::new()),
        }
    }

    /// The folder's name, its key in the briefcase.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements in the folder.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the folder holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Copy-on-write access to the element list: unshares it if any clone
    /// still aliases the same storage.
    fn elements_mut(&mut self) -> &mut Vec<Element> {
        Arc::make_mut(&mut self.elements)
    }

    /// Appends an element at the back.
    pub fn append(&mut self, element: impl Into<Element>) -> &mut Self {
        self.elements_mut().push(element.into());
        self
    }

    /// Inserts an element at `index`, shifting later elements back.
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, element: impl Into<Element>) {
        self.elements_mut().insert(index, element.into());
    }

    /// The element at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Element> {
        self.elements.get(index)
    }

    /// The first element, if present.
    pub fn front(&self) -> Option<&Element> {
        self.elements.first()
    }

    /// The last element, if present.
    pub fn back(&self) -> Option<&Element> {
        self.elements.last()
    }

    /// Removes and returns the element at `index`, or `None` if out of
    /// range. This is the `fRemove()` of the original C API.
    pub fn remove(&mut self, index: usize) -> Option<Element> {
        if index < self.elements.len() {
            Some(self.elements_mut().remove(index))
        } else {
            None
        }
    }

    /// Removes and returns the first element — the Figure-4 itinerary pop.
    pub fn remove_front(&mut self) -> Option<Element> {
        self.remove(0)
    }

    /// Replaces the element at `index`, returning the old element, or
    /// `None` (leaving the folder unchanged) if out of range.
    pub fn replace(&mut self, index: usize, element: impl Into<Element>) -> Option<Element> {
        if index >= self.elements.len() {
            return None;
        }
        let slot = self.elements_mut().get_mut(index)?;
        Some(std::mem::replace(slot, element.into()))
    }

    /// Drops all elements. The agent idiom for "state no longer needed",
    /// minimizing bytes moved on the next `go()` (§3.1).
    pub fn clear(&mut self) {
        if self.elements.is_empty() {
            return;
        }
        // Drop the shared list instead of clearing in place: clones keep
        // their elements and this folder starts fresh without a copy.
        self.elements = Arc::new(Vec::new());
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Element> {
        self.elements.iter()
    }

    /// Iterates mutably over the elements in order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Element> {
        self.elements_mut().iter_mut()
    }

    /// Total payload bytes across all elements (excluding codec framing).
    pub fn payload_len(&self) -> usize {
        self.elements.iter().map(Element::len).sum()
    }

    /// Consumes the folder, returning its elements. Unshares the list only
    /// if another clone still references it.
    pub fn into_elements(self) -> Vec<Element> {
        Arc::try_unwrap(self.elements).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Whether two folders share the same element storage (a clone that has
    /// not yet diverged). Used by tests and benches to observe CoW.
    pub fn shares_storage_with(&self, other: &Folder) -> bool {
        Arc::ptr_eq(&self.elements, &other.elements)
    }
}

impl fmt::Debug for Folder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Folder")
            .field("name", &self.name)
            .field("elements", &self.elements)
            .finish()
    }
}

impl<'a> IntoIterator for &'a Folder {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Folder {
    type Item = Element;
    type IntoIter = std::vec::IntoIter<Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_elements().into_iter()
    }
}

impl<E: Into<Element>> Extend<E> for Folder {
    fn extend<T: IntoIterator<Item = E>>(&mut self, iter: T) {
        self.elements_mut().extend(iter.into_iter().map(Into::into));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_preserves_order() {
        let mut f = Folder::new("T");
        f.append("a").append("b").append("c");
        let texts: Vec<_> = f.iter().map(|e| e.as_str().unwrap().to_owned()).collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }

    #[test]
    fn remove_front_drains_in_order() {
        let mut f = Folder::new("HOSTS");
        f.extend(["h1", "h2", "h3"]);
        assert_eq!(f.remove_front().unwrap().as_str().unwrap(), "h1");
        assert_eq!(f.remove_front().unwrap().as_str().unwrap(), "h2");
        assert_eq!(f.remove_front().unwrap().as_str().unwrap(), "h3");
        assert!(f.remove_front().is_none());
        assert!(f.is_empty());
    }

    #[test]
    fn remove_out_of_range_is_none_and_nondestructive() {
        let mut f = Folder::new("T");
        f.append("x");
        assert!(f.remove(5).is_none());
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn replace_swaps_in_place() {
        let mut f = Folder::new("T");
        f.extend(["old0", "old1"]);
        let prev = f.replace(1, "new1").unwrap();
        assert_eq!(prev.as_str().unwrap(), "old1");
        assert_eq!(f.get(1).unwrap().as_str().unwrap(), "new1");
        assert!(f.replace(9, "nope").is_none());
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn insert_shifts() {
        let mut f = Folder::new("T");
        f.extend(["a", "c"]);
        f.insert(1, "b");
        let texts: Vec<_> = f.iter().map(|e| e.as_str().unwrap().to_owned()).collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }

    #[test]
    fn payload_len_counts_only_data() {
        let mut f = Folder::new("T");
        f.append(vec![0u8; 10]);
        f.append(vec![0u8; 22]);
        assert_eq!(f.payload_len(), 32);
    }

    #[test]
    fn clear_drops_state() {
        let mut f = Folder::new("RESULTS");
        f.extend(["r"; 100]);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.payload_len(), 0);
    }

    #[test]
    fn clone_shares_until_mutation() {
        let mut f = Folder::new("T");
        f.extend(["a", "b"]);
        let copy = f.clone();
        assert!(f.shares_storage_with(&copy));
        f.append("c");
        assert!(!f.shares_storage_with(&copy));
        assert_eq!(copy.len(), 2);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn clear_leaves_clones_untouched() {
        let mut f = Folder::new("T");
        f.extend(["a", "b"]);
        let copy = f.clone();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(copy.len(), 2);
    }
}
