//! Well-known folder names used by the TAX runtime and service agents.
//!
//! The briefcase itself attaches no meaning to folder names; these constants
//! are conventions shared between the kernel, VMs, and the standard service
//! agents, mirroring the folders the TACOMA papers mention (`CODE`, `HOSTS`,
//! …). Application agents are free to use any other names.

/// The agent's transportable code (TaxScript source, bytecode, or a signed
/// binary artifact — discriminated by [`CODE_TYPE`]).
pub const CODE: &str = "CODE";

/// Discriminator for [`CODE`]: `"taxscript-source"`, `"taxscript-bytecode"`,
/// or `"binary-artifact"`.
pub const CODE_TYPE: &str = "CODE-TYPE";

/// Itinerary: agent URIs still to visit, drained front-first (Figure 4).
pub const HOSTS: &str = "HOSTS";

/// Accumulated results carried home by a mining agent.
pub const RESULTS: &str = "RESULTS";

/// Signature over the agent core, checked by the firewall on arrival.
pub const SIGNATURE: &str = "SIG";

/// Principal (owner identity) on whose behalf the agent acts.
pub const PRINCIPAL: &str = "PRINCIPAL";

/// Symbolic agent name (the `name` part of the agent URI).
pub const AGENT_NAME: &str = "AGENT-NAME";

/// Command verb for messages addressed to service agents or the firewall.
pub const COMMAND: &str = "CMD";

/// Positional arguments accompanying [`COMMAND`].
pub const ARGS: &str = "ARGS";

/// Status or error report in a reply briefcase.
pub const STATUS: &str = "STATUS";

/// Reply address (agent URI) for `meet()`-style exchanges.
pub const REPLY_TO: &str = "REPLY-TO";

/// Architecture tags for binary artifacts submitted to `ag_exec` (§5: "an
/// agent may submit a list of binaries matching different architectures").
pub const ARCH: &str = "ARCH";

/// Free-form human-readable log lines appended by wrappers such as the
/// monitoring wrapper `rwWebbot`.
pub const LOG: &str = "LOG";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct() {
        let all = [
            super::CODE,
            super::CODE_TYPE,
            super::HOSTS,
            super::RESULTS,
            super::SIGNATURE,
            super::PRINCIPAL,
            super::AGENT_NAME,
            super::COMMAND,
            super::ARGS,
            super::STATUS,
            super::REPLY_TO,
            super::ARCH,
            super::LOG,
        ];
        let mut set = std::collections::HashSet::new();
        for name in all {
            assert!(set.insert(name), "duplicate well-known folder name {name}");
        }
    }
}
