//! The TACOMA **briefcase**: the unit of agent state and inter-agent exchange.
//!
//! A briefcase is "a consistent snapshot of the executing agent (code,
//! arguments, results) as it is transported between hosts" (TAX 2.0, §3.1).
//! Structurally it is an associative array of named [`Folder`]s, each holding
//! an ordered list of [`Element`]s, where an element is an *uninterpreted
//! sequence of bits* — the most basic data type in TAX.
//!
//! Briefcases are the **only** thing agents exchange: sending a briefcase and
//! receiving a briefcase are the two actions observable to the system, which
//! is what makes the wrapper mechanism of the paper's §4 possible.
//!
//! # Example
//!
//! ```
//! use tacoma_briefcase::{Briefcase, folders};
//!
//! # fn main() -> Result<(), tacoma_briefcase::BriefcaseError> {
//! let mut bc = Briefcase::new();
//! bc.append(folders::HOSTS, "tacoma://alpha/vm_script");
//! bc.append(folders::HOSTS, "tacoma://beta/vm_script");
//!
//! // The Figure-4 idiom: pop the next hop off the HOSTS folder.
//! let next = bc.folder_mut(folders::HOSTS).unwrap().remove_front().unwrap();
//! assert_eq!(next.as_str()?, "tacoma://alpha/vm_script");
//!
//! // Wire roundtrip.
//! let wire = bc.encode();
//! let back = Briefcase::decode(&wire)?;
//! assert_eq!(bc, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod briefcase;
mod codec;
mod element;
mod error;
mod folder;
pub mod folders;

pub use crate::briefcase::{Briefcase, FolderNames, Folders, FoldersMut, IntoFolders};
// Re-exported so zero-copy consumers (`Briefcase::decode_bytes`,
// `Briefcase::wire_bytes`, `Element::bytes`) can name the buffer type
// without a separate `bytes` dependency.
pub use crate::codec::{
    decode_briefcase, decode_briefcase_bytes, decode_briefcase_bytes_with_limits,
    decode_briefcase_with_limits, encode_briefcase, encode_briefcase_into, DecodeLimits,
    CODEC_VERSION, MAGIC,
};
pub use crate::element::Element;
pub use crate::error::BriefcaseError;
pub use crate::folder::Folder;
pub use bytes::Bytes;
