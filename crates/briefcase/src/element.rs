use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::BriefcaseError;

/// An element: an uninterpreted sequence of bits, the most basic data type
/// in TAX (§3.1).
///
/// Elements are cheaply cloneable (reference counted). Interpretation —
/// text, integer, nested structure — is applied by the consumer, never by
/// the system; this is what keeps the briefcase language- and
/// architecture-independent.
///
/// ```
/// use tacoma_briefcase::Element;
///
/// let e = Element::from("42");
/// assert_eq!(e.as_str().unwrap(), "42");
/// assert_eq!(e.as_i64().unwrap(), 42);
/// assert_eq!(e.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Element(Bytes);

impl Element {
    /// Creates an empty element.
    ///
    /// An empty element is distinct from an absent one; Figure 4's agent
    /// terminates when `HOSTS` yields no element at all, not an empty one.
    pub fn new() -> Self {
        Element(Bytes::new())
    }

    /// Creates an element from raw bytes.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        Element(data.into())
    }

    /// Creates an element holding the decimal text rendering of an integer.
    pub fn from_i64(value: i64) -> Self {
        Element(Bytes::from(value.to_string().into_bytes()))
    }

    /// The raw data (the `eData()` of the original C API).
    pub fn data(&self) -> &[u8] {
        &self.0
    }

    /// The underlying shared byte buffer.
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }

    /// Length of the element in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the element holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Interprets the element as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`BriefcaseError::NotUtf8`] if the bytes are not valid UTF-8.
    pub fn as_str(&self) -> Result<&str, BriefcaseError> {
        std::str::from_utf8(&self.0).map_err(|_| BriefcaseError::NotUtf8)
    }

    /// Interprets the element as a decimal integer.
    ///
    /// # Errors
    ///
    /// Returns [`BriefcaseError::NotInteger`] if the bytes are not the UTF-8
    /// decimal rendering of an `i64`.
    pub fn as_i64(&self) -> Result<i64, BriefcaseError> {
        self.as_str()
            .map_err(|_| BriefcaseError::NotInteger)?
            .trim()
            .parse()
            .map_err(|_| BriefcaseError::NotInteger)
    }

    /// Consumes the element, returning its byte buffer.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render printable text directly; hex-dump a bounded prefix otherwise.
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control() || c == '\n' || c == '\t') => {
                write!(f, "Element({s:?})")
            }
            _ => {
                let shown = &self.0[..self.0.len().min(16)];
                write!(f, "Element({} bytes: {shown:02x?}…)", self.0.len())
            }
        }
    }
}

impl From<&str> for Element {
    fn from(s: &str) -> Self {
        Element(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Element {
    fn from(s: String) -> Self {
        Element(Bytes::from(s.into_bytes()))
    }
}

impl From<Vec<u8>> for Element {
    fn from(v: Vec<u8>) -> Self {
        Element(Bytes::from(v))
    }
}

impl From<&[u8]> for Element {
    fn from(v: &[u8]) -> Self {
        Element(Bytes::copy_from_slice(v))
    }
}

impl From<Bytes> for Element {
    fn from(b: Bytes) -> Self {
        Element(b)
    }
}

impl From<i64> for Element {
    fn from(v: i64) -> Self {
        Element::from_i64(v)
    }
}

impl AsRef<[u8]> for Element {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_element_is_empty_but_exists() {
        let e = Element::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.as_str().unwrap(), "");
    }

    #[test]
    fn text_roundtrip() {
        let e = Element::from("tacoma://cl2.cs.uit.no:27017//vm_c:933821661");
        assert_eq!(
            e.as_str().unwrap(),
            "tacoma://cl2.cs.uit.no:27017//vm_c:933821661"
        );
    }

    #[test]
    fn integer_roundtrip() {
        assert_eq!(Element::from_i64(-12345).as_i64().unwrap(), -12345);
        assert_eq!(Element::from(i64::MAX).as_i64().unwrap(), i64::MAX);
        assert_eq!(Element::from(i64::MIN).as_i64().unwrap(), i64::MIN);
    }

    #[test]
    fn integer_parse_tolerates_whitespace_only() {
        assert_eq!(Element::from(" 7 ").as_i64().unwrap(), 7);
        assert_eq!(
            Element::from("7x").as_i64(),
            Err(BriefcaseError::NotInteger)
        );
        assert_eq!(Element::from("").as_i64(), Err(BriefcaseError::NotInteger));
    }

    #[test]
    fn non_utf8_is_rejected_as_text() {
        let e = Element::from(vec![0xff, 0xfe, 0x00]);
        assert_eq!(e.as_str(), Err(BriefcaseError::NotUtf8));
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Element::new()).is_empty());
        assert!(format!("{:?}", Element::from(vec![0u8, 1, 2])).contains("bytes"));
    }

    #[test]
    fn clone_is_shallow() {
        let big = Element::from(vec![7u8; 1 << 20]);
        let copy = big.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(big.bytes().as_ptr(), copy.bytes().as_ptr());
    }
}
