//! The TAX briefcase wire format.
//!
//! Briefcases are "the TACOMA data structure that is language and
//! architecture independent" (§3.3); this module defines the concrete byte
//! layout used by every firewall and VM in this implementation:
//!
//! ```text
//! header:  MAGIC "TAXB" (4) | version u8 (1) | folder count u32-LE (4)
//! folder:  name len u16-LE | name bytes (UTF-8) | element count u32-LE
//! element: data len u32-LE | data bytes
//! ```
//!
//! All integers are little-endian. Lengths are bounded by sanity limits so a
//! hostile peer cannot make the decoder allocate absurd amounts up front.

use bytes::Bytes;

use crate::{Briefcase, BriefcaseError, Element, Folder};

/// Magic bytes opening every encoded briefcase.
pub const MAGIC: [u8; 4] = *b"TAXB";

/// Current codec version. Decoders reject other versions.
pub const CODEC_VERSION: u8 = 1;

/// Upper bound on a single element's declared length (64 MiB). Larger
/// payloads should be chunked across elements.
const MAX_ELEMENT_LEN: u64 = 64 << 20;

/// Upper bound on a folder name length.
const MAX_NAME_LEN: u64 = u16::MAX as u64;

/// Upper bound on declared counts, to bound eager allocation.
const MAX_COUNT: u64 = 1 << 24;

/// Configurable decoder bounds. Every declared length and count is checked
/// against these *and* against the bytes actually remaining in the input
/// before anything is allocated, so a hostile peer cannot reserve memory
/// by lying about sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Largest accepted total wire size, in bytes.
    pub max_frame: u64,
    /// Largest accepted single element.
    pub max_element: u64,
    /// Largest accepted folder name.
    pub max_name: u64,
    /// Largest accepted folder/element count.
    pub max_count: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            // One max-size element plus generous framing; matches the
            // transport layer's frame ceiling.
            max_frame: MAX_ELEMENT_LEN + (1 << 20),
            max_element: MAX_ELEMENT_LEN,
            max_name: MAX_NAME_LEN,
            max_count: MAX_COUNT,
        }
    }
}

impl DecodeLimits {
    /// Tight limits for small control messages (handshakes, admin).
    pub fn strict(max_frame: u64) -> Self {
        DecodeLimits {
            max_frame,
            max_element: max_frame,
            max_name: MAX_NAME_LEN,
            max_count: MAX_COUNT,
        }
    }
}

/// Exact length in bytes of [`encode_briefcase`]'s output.
pub(crate) fn encoded_len(bc: &Briefcase) -> usize {
    let mut len = 4 + 1 + 4;
    for folder in bc.iter() {
        len += 2 + folder.name().len() + 4;
        for element in folder {
            len += 4 + element.len();
        }
    }
    len
}

/// Encodes a briefcase into the TAX wire format.
pub fn encode_briefcase(bc: &Briefcase) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(bc));
    encode_briefcase_into(bc, &mut out);
    out
}

/// Encodes a briefcase into a caller-provided buffer, appending to it.
///
/// This is the allocation-reuse path: a sender that encodes many
/// briefcases (a connection's write loop, the simulated transport) can
/// `clear()` and reuse one buffer instead of allocating a fresh `Vec`
/// per message. The buffer is reserved up front to the exact encoded
/// length, so encoding appends without reallocating.
pub fn encode_briefcase_into(bc: &Briefcase, out: &mut Vec<u8>) {
    out.reserve(encoded_len(bc));
    out.extend_from_slice(&MAGIC);
    out.push(CODEC_VERSION);
    out.extend_from_slice(&(bc.folder_count() as u32).to_le_bytes());
    for folder in bc.iter() {
        let name = folder.name().as_bytes();
        debug_assert!(name.len() <= MAX_NAME_LEN as usize);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(folder.len() as u32).to_le_bytes());
        for element in folder {
            out.extend_from_slice(&(element.len() as u32).to_le_bytes());
            out.extend_from_slice(element.data());
        }
    }
}

/// Decodes a briefcase from the TAX wire format with default limits.
///
/// # Errors
///
/// Returns a [`BriefcaseError`] describing the first malformation
/// encountered; never panics on arbitrary input.
pub fn decode_briefcase(wire: &[u8]) -> Result<Briefcase, BriefcaseError> {
    decode_briefcase_with_limits(wire, &DecodeLimits::default())
}

/// Decodes a briefcase, bounding every declared size by `limits` and by
/// the bytes actually remaining in `wire` before any allocation happens.
///
/// # Errors
///
/// Returns a [`BriefcaseError`] describing the first malformation
/// encountered; never panics on arbitrary input.
pub fn decode_briefcase_with_limits(
    wire: &[u8],
    limits: &DecodeLimits,
) -> Result<Briefcase, BriefcaseError> {
    decode_impl(wire, limits, |data, _, _| Element::from(data))
}

/// Decodes a briefcase from a shared [`Bytes`] buffer with default limits,
/// **without copying element data**: each element is a [`Bytes::slice`]
/// view into `wire`'s backing allocation.
///
/// This is the receive path's zero-copy fast lane: a transport frame read
/// into one allocation can be decoded into a briefcase whose elements all
/// share that allocation, so page bodies and agent binaries are never
/// copied between the socket buffer and the VM.
///
/// # Errors
///
/// Exactly as [`decode_briefcase`]: the two functions accept and reject
/// identical inputs (property-tested).
pub fn decode_briefcase_bytes(wire: &Bytes) -> Result<Briefcase, BriefcaseError> {
    decode_briefcase_bytes_with_limits(wire, &DecodeLimits::default())
}

/// Zero-copy decode with explicit limits; see [`decode_briefcase_bytes`].
///
/// # Errors
///
/// As [`decode_briefcase_with_limits`].
pub fn decode_briefcase_bytes_with_limits(
    wire: &Bytes,
    limits: &DecodeLimits,
) -> Result<Briefcase, BriefcaseError> {
    decode_impl(wire, limits, |_, start, end| {
        Element::from_bytes(wire.slice(start..end))
    })
}

/// The single decode loop, parameterized over element materialization:
/// the copying path builds elements from the borrowed slice, the
/// zero-copy path slices the shared allocation by offset. Bounds checks
/// and error behavior are identical by construction.
fn decode_impl(
    wire: &[u8],
    limits: &DecodeLimits,
    mut make_element: impl FnMut(&[u8], usize, usize) -> Element,
) -> Result<Briefcase, BriefcaseError> {
    if wire.len() as u64 > limits.max_frame {
        return Err(BriefcaseError::LengthOverflow {
            declared: wire.len() as u64,
            context: "briefcase frame",
        });
    }
    let mut r = Reader { buf: wire, pos: 0 };

    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found[..magic.len()].copy_from_slice(magic);
        return Err(BriefcaseError::BadMagic { found });
    }
    let version = r.take(1, "version")?[0];
    if version != CODEC_VERSION {
        return Err(BriefcaseError::UnsupportedVersion { found: version });
    }

    let folder_count = r.u32("folder count")? as u64;
    if folder_count > limits.max_count {
        return Err(BriefcaseError::LengthOverflow {
            declared: folder_count,
            context: "folder count",
        });
    }
    // Each folder needs at least 6 bytes (name len u16 + element count
    // u32), so a count the remaining bytes cannot possibly hold is proven
    // bogus here, before the decode loop runs at all.
    r.fits(folder_count.saturating_mul(6), "folder count")?;

    let mut bc = Briefcase::new();
    for _ in 0..folder_count {
        let name_len = r.u16("folder name length")? as u64;
        if name_len > limits.max_name {
            return Err(BriefcaseError::LengthOverflow {
                declared: name_len,
                context: "folder name",
            });
        }
        r.fits(name_len, "folder name")?;
        let name_bytes = r.take(name_len as usize, "folder name")?;
        let name = std::str::from_utf8(name_bytes).map_err(|_| BriefcaseError::BadFolderName)?;
        if bc.contains_folder(name) {
            return Err(BriefcaseError::DuplicateFolder {
                name: name.to_owned(),
            });
        }
        let mut folder = Folder::new(name);

        let element_count = r.u32("element count")? as u64;
        if element_count > limits.max_count {
            return Err(BriefcaseError::LengthOverflow {
                declared: element_count,
                context: "element count",
            });
        }
        // Each element needs at least its 4-byte length prefix.
        r.fits(element_count.saturating_mul(4), "element count")?;
        for _ in 0..element_count {
            let len = r.u32("element length")? as u64;
            if len > limits.max_element {
                return Err(BriefcaseError::LengthOverflow {
                    declared: len,
                    context: "element",
                });
            }
            r.fits(len, "element data")?;
            let data = r.take(len as usize, "element data")?;
            let end = r.pos;
            folder.append(make_element(data, end - len as usize, end));
        }
        bc.insert_folder(folder);
    }

    if r.pos != wire.len() {
        return Err(BriefcaseError::TrailingBytes {
            remaining: wire.len() - r.pos,
        });
    }
    Ok(bc)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> u64 {
        (self.buf.len() - self.pos) as u64
    }

    /// Rejects a declared size the remaining input cannot possibly hold,
    /// before any buffer for it is reserved.
    fn fits(&self, declared: u64, context: &'static str) -> Result<(), BriefcaseError> {
        if declared > self.remaining() {
            return Err(BriefcaseError::Truncated {
                offset: self.pos,
                context,
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], BriefcaseError> {
        if self.buf.len() - self.pos < n {
            // Report what little remains so BadMagic can show partial bytes.
            if context == "magic" {
                return Ok(&self.buf[self.pos..]);
            }
            return Err(BriefcaseError::Truncated {
                offset: self.pos,
                context,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, BriefcaseError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, BriefcaseError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folders;

    fn sample() -> Briefcase {
        let mut bc = Briefcase::new();
        bc.append(folders::HOSTS, "tacoma://h1/vm_script")
            .append(folders::HOSTS, "tacoma://h2/vm_script")
            .append(folders::CODE, vec![0u8, 1, 2, 255])
            .set_single(folders::CODE_TYPE, "taxscript-bytecode");
        bc.ensure_folder("EMPTY");
        bc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bc = sample();
        let wire = bc.encode();
        assert_eq!(wire.len(), bc.encoded_len());
        let back = Briefcase::decode(&wire).unwrap();
        assert_eq!(bc, back);
        assert!(back.contains_folder("EMPTY"));
        assert!(back.folder("EMPTY").unwrap().is_empty());
    }

    #[test]
    fn empty_briefcase_roundtrips() {
        let bc = Briefcase::new();
        let wire = bc.encode();
        assert_eq!(wire.len(), 9);
        assert_eq!(Briefcase::decode(&wire).unwrap(), bc);
    }

    #[test]
    fn bad_magic_is_reported() {
        let err = Briefcase::decode(b"NOPE\x01\x00\x00\x00\x00").unwrap_err();
        assert!(matches!(err, BriefcaseError::BadMagic { found } if &found == b"NOPE"));
    }

    #[test]
    fn short_input_is_bad_magic_not_panic() {
        assert!(matches!(
            Briefcase::decode(b"TA"),
            Err(BriefcaseError::BadMagic { .. })
        ));
        assert!(matches!(
            Briefcase::decode(b""),
            Err(BriefcaseError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut wire = sample().encode();
        wire[4] = 99;
        assert_eq!(
            Briefcase::decode(&wire).unwrap_err(),
            BriefcaseError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let wire = sample().encode();
        for cut in 5..wire.len() {
            let err = Briefcase::decode(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, BriefcaseError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut wire = sample().encode();
        wire.push(0);
        assert_eq!(
            Briefcase::decode(&wire).unwrap_err(),
            BriefcaseError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn hostile_length_is_bounded() {
        // Header claiming u32::MAX folders must fail fast, not allocate.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(CODEC_VERSION);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Briefcase::decode(&wire).unwrap_err();
        assert!(matches!(
            err,
            BriefcaseError::LengthOverflow {
                context: "folder count",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_folder_on_wire_is_rejected() {
        // Hand-craft: two folders both named "X" with zero elements.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(CODEC_VERSION);
        wire.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            wire.extend_from_slice(&1u16.to_le_bytes());
            wire.push(b'X');
            wire.extend_from_slice(&0u32.to_le_bytes());
        }
        assert_eq!(
            Briefcase::decode(&wire).unwrap_err(),
            BriefcaseError::DuplicateFolder { name: "X".into() }
        );
    }

    #[test]
    fn non_utf8_folder_name_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(CODEC_VERSION);
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&2u16.to_le_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Briefcase::decode(&wire).unwrap_err(),
            BriefcaseError::BadFolderName
        );
    }

    #[test]
    fn frame_limit_rejects_oversize_input_up_front() {
        let bc = sample();
        let wire = bc.encode();
        let limits = DecodeLimits::strict(wire.len() as u64 - 1);
        assert!(matches!(
            Briefcase::decode_with_limits(&wire, &limits),
            Err(BriefcaseError::LengthOverflow {
                context: "briefcase frame",
                ..
            })
        ));
        assert_eq!(
            Briefcase::decode_with_limits(&wire, &DecodeLimits::strict(wire.len() as u64)).unwrap(),
            bc
        );
    }

    #[test]
    fn element_limit_is_configurable() {
        let mut bc = Briefcase::new();
        bc.append("BIN", vec![0u8; 2000]);
        let wire = bc.encode();
        let limits = DecodeLimits {
            max_element: 1999,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            Briefcase::decode_with_limits(&wire, &limits),
            Err(BriefcaseError::LengthOverflow {
                declared: 2000,
                context: "element",
            })
        ));
    }

    #[test]
    fn declared_lengths_beyond_remaining_fail_before_allocating() {
        // A within-limits element length the buffer cannot hold: the
        // `fits` check must refuse it as truncation, not try to read.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(CODEC_VERSION);
        wire.extend_from_slice(&1u32.to_le_bytes()); // one folder
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(b'F');
        wire.extend_from_slice(&1u32.to_le_bytes()); // one element
        wire.extend_from_slice(&(MAX_ELEMENT_LEN as u32).to_le_bytes()); // lies
        let err = Briefcase::decode(&wire).unwrap_err();
        assert!(matches!(
            err,
            BriefcaseError::Truncated {
                context: "element data",
                ..
            }
        ));

        // An element count the remaining four bytes cannot hold.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(CODEC_VERSION);
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(b'F');
        wire.extend_from_slice(&1000u32.to_le_bytes()); // 1000 elements, 0 bytes
        assert!(matches!(
            Briefcase::decode(&wire).unwrap_err(),
            BriefcaseError::Truncated {
                context: "element count",
                ..
            }
        ));
    }

    #[test]
    fn encoded_len_matches_for_binary_payloads() {
        let mut bc = Briefcase::new();
        bc.append("BIN", vec![0u8; 100_000]);
        assert_eq!(bc.encode().len(), bc.encoded_len());
    }

    #[test]
    fn zero_copy_decode_equals_copying_decode() {
        let bc = sample();
        let wire = Bytes::from(bc.encode());
        let copied = decode_briefcase(&wire).unwrap();
        let sliced = decode_briefcase_bytes(&wire).unwrap();
        assert_eq!(copied, sliced);
        assert_eq!(sliced, bc);
    }

    #[test]
    fn zero_copy_elements_share_the_wire_allocation() {
        let mut bc = Briefcase::new();
        bc.append("BIN", vec![7u8; 10_000]);
        bc.append("TXT", "hello");
        let wire = Bytes::from(bc.encode());
        let decoded = decode_briefcase_bytes(&wire).unwrap();

        let base = wire.as_ptr() as usize;
        let end = base + wire.len();
        for folder in decoded.iter() {
            for element in folder {
                let p = element.bytes().as_ptr() as usize;
                assert!(
                    p >= base && p + element.len() <= end,
                    "element not sliced from the wire buffer"
                );
            }
        }
    }

    #[test]
    fn zero_copy_decode_rejects_what_copying_decode_rejects() {
        let wire = sample().encode();
        for cut in 0..wire.len() {
            let copied = decode_briefcase(&wire[..cut]);
            let sliced = decode_briefcase_bytes(&Bytes::copy_from_slice(&wire[..cut]));
            assert_eq!(copied, sliced, "divergence at cut {cut}");
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let bc = sample();
        let mut buf = Vec::new();
        encode_briefcase_into(&bc, &mut buf);
        assert_eq!(buf, bc.encode());
        let cap = buf.capacity();
        buf.clear();
        encode_briefcase_into(&bc, &mut buf);
        assert_eq!(buf, bc.encode());
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
    }
}
