//! Property-based tests for the copy-on-write briefcase representation
//! and the encode-once wire cache.
//!
//! The CoW contract: a clone is a pointer bump that behaves exactly like
//! a deep copy — mutating either side is never observable from the other.
//! The cache contract: `wire_bytes`/`encode` after any mutation sequence
//! equal an eager re-encode of the same logical state, byte for byte.

use proptest::prelude::*;
use tacoma_briefcase::{Briefcase, Bytes, Element, Folder};

/// Strategy for an arbitrary element payload (bounded for test speed).
fn arb_element() -> impl Strategy<Value = Element> {
    prop::collection::vec(any::<u8>(), 0..256).prop_map(Element::from)
}

/// Strategy for a folder name: non-degenerate UTF-8 up to 40 chars.
fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z0-9:_.@ -]{1,40}"
}

fn arb_briefcase() -> impl Strategy<Value = Briefcase> {
    prop::collection::btree_map(arb_name(), prop::collection::vec(arb_element(), 0..8), 0..8)
        .prop_map(|map| {
            map.into_iter()
                .map(|(name, elements)| {
                    let mut f = Folder::new(name);
                    f.extend(elements);
                    f
                })
                .collect()
        })
}

/// One mutation drawn from the briefcase API surface.
#[derive(Debug, Clone)]
enum Mutation {
    Append(String, Vec<u8>),
    SetSingle(String, Vec<u8>),
    RemoveFolder(usize),
    RemoveFront(usize),
    ClearFolder(usize),
    Merge(Vec<(String, Vec<u8>)>),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (arb_name(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(n, d)| Mutation::Append(n, d)),
        (arb_name(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(n, d)| Mutation::SetSingle(n, d)),
        (0usize..8).prop_map(Mutation::RemoveFolder),
        (0usize..8).prop_map(Mutation::RemoveFront),
        (0usize..8).prop_map(Mutation::ClearFolder),
        prop::collection::vec(
            (arb_name(), prop::collection::vec(any::<u8>(), 0..32)),
            0..4
        )
        .prop_map(Mutation::Merge),
    ]
}

fn nth_folder_name(bc: &Briefcase, idx: usize) -> Option<String> {
    bc.names()
        .nth(idx % bc.folder_count().max(1))
        .map(str::to_owned)
}

/// Applies one mutation; returns whether any `&mut self` briefcase API
/// was actually invoked (a folder-targeting op on an empty briefcase is a
/// no-op that legitimately leaves the encode cache warm).
fn apply(bc: &mut Briefcase, m: &Mutation) -> bool {
    match m {
        Mutation::Append(name, data) => {
            bc.append(name, data.clone());
            true
        }
        Mutation::SetSingle(name, data) => {
            bc.set_single(name, data.clone());
            true
        }
        Mutation::RemoveFolder(idx) => match nth_folder_name(bc, *idx) {
            Some(name) => {
                bc.remove_folder(&name);
                true
            }
            None => false,
        },
        Mutation::RemoveFront(idx) => match nth_folder_name(bc, *idx) {
            Some(name) => {
                if let Some(f) = bc.folder_mut(&name) {
                    f.remove_front();
                }
                true
            }
            None => false,
        },
        Mutation::ClearFolder(idx) => match nth_folder_name(bc, *idx) {
            Some(name) => {
                if let Some(f) = bc.folder_mut(&name) {
                    f.clear();
                }
                true
            }
            None => false,
        },
        Mutation::Merge(folders) => {
            let mut other = Briefcase::new();
            for (name, data) in folders {
                other.append(name, data.clone());
            }
            bc.merge(other);
            true
        }
    }
}

/// Rebuilds the logical state from scratch (deep copy through the wire),
/// so the expected encoding comes from a briefcase with no shared history
/// and no cache.
fn eager_reencode(bc: &Briefcase) -> Vec<u8> {
    Briefcase::decode(&bc.encode()).unwrap().encode()
}

proptest! {
    /// Mutating a cloned briefcase never observes or perturbs the other
    /// copy, in either direction, for any sequence of mutations.
    #[test]
    fn cloned_briefcase_mutation_is_isolated(
        bc in arb_briefcase(),
        muts in prop::collection::vec(arb_mutation(), 1..8),
    ) {
        let pristine = bc.clone();
        let snapshot_wire = bc.encode();

        let mut mutated = bc.clone();
        for m in &muts {
            apply(&mut mutated, m);
        }

        // The untouched clones still hold the original logical state.
        prop_assert_eq!(&bc, &pristine);
        prop_assert_eq!(bc.encode(), snapshot_wire.clone());
        prop_assert_eq!(pristine.encode(), snapshot_wire);

        // And the mutated copy is internally consistent on the wire.
        let wire = mutated.encode();
        prop_assert_eq!(Briefcase::decode(&wire).unwrap(), mutated);
    }

    /// Cache invalidation matches an eager re-encode byte for byte: after
    /// any interleaving of `wire_bytes` calls and mutations, the cached
    /// encoding equals that of a briefcase rebuilt from scratch.
    #[test]
    fn cache_invalidation_matches_eager_reencode(
        bc in arb_briefcase(),
        muts in prop::collection::vec(arb_mutation(), 1..8),
    ) {
        let mut bc = bc;
        // Populate the cache, mutate, re-check — every round.
        for m in &muts {
            let cached = bc.wire_bytes();
            prop_assert_eq!(cached.as_ref(), eager_reencode(&bc).as_slice());
            let touched = apply(&mut bc, m);
            // Any `&mut` access must have dropped the cache (conservative
            // invalidation); a no-op that never borrowed may keep it.
            prop_assert_eq!(bc.has_cached_wire(), !touched);
            prop_assert_eq!(bc.wire_bytes().as_ref(), eager_reencode(&bc).as_slice());
        }
        // encode(), encode_into(), and wire_bytes() agree when cached.
        let via_bytes = bc.wire_bytes().to_vec();
        let via_encode = bc.encode();
        let mut via_into = Vec::new();
        bc.encode_into(&mut via_into);
        prop_assert_eq!(&via_bytes, &via_encode);
        prop_assert_eq!(&via_bytes, &via_into);
        prop_assert_eq!(via_bytes.len(), bc.encoded_len());
    }

    /// Zero-copy decode → mutate → encode round-trips: slices aliasing the
    /// original wire buffer survive CoW mutation of the decoded briefcase.
    #[test]
    fn decode_bytes_mutate_encode_roundtrips(
        bc in arb_briefcase(),
        muts in prop::collection::vec(arb_mutation(), 0..8),
    ) {
        let wire = Bytes::from(bc.encode());
        let mut decoded = Briefcase::decode_bytes(&wire).unwrap();
        let mut copied = Briefcase::decode(&wire).unwrap();
        for m in &muts {
            apply(&mut decoded, m);
            apply(&mut copied, m);
        }
        // The zero-copy lineage and the deep-copy lineage stay equal...
        prop_assert_eq!(&decoded, &copied);
        // ...and the mutated zero-copy briefcase re-encodes faithfully.
        let reencoded = decoded.encode();
        prop_assert_eq!(Briefcase::decode(&reencoded).unwrap(), decoded);
    }

    /// Clones of a briefcase share one cached encoding (encode-once across
    /// fan-out), and each clone's cache stays correct after it diverges.
    #[test]
    fn fanout_clones_share_then_diverge(
        bc in arb_briefcase(),
        m in arb_mutation(),
    ) {
        let wire = bc.wire_bytes();
        let clones: Vec<Briefcase> = (0..4).map(|_| bc.clone()).collect();
        for c in &clones {
            // Same allocation: the fan-out serialized exactly once.
            prop_assert_eq!(c.wire_bytes().as_ptr(), wire.as_ptr());
        }
        let mut diverged = clones[0].clone();
        apply(&mut diverged, &m);
        prop_assert_eq!(diverged.wire_bytes().as_ref(), eager_reencode(&diverged).as_slice());
        // The siblings still serve the original bytes.
        prop_assert_eq!(clones[1].wire_bytes().as_ptr(), wire.as_ptr());
    }
}
