//! Property-based tests for the briefcase wire codec.

use proptest::prelude::*;
use tacoma_briefcase::{Briefcase, Element, Folder};

/// Strategy for an arbitrary element payload (bounded for test speed).
fn arb_element() -> impl Strategy<Value = Element> {
    prop::collection::vec(any::<u8>(), 0..256).prop_map(Element::from)
}

/// Strategy for a folder name: non-degenerate UTF-8 up to 40 chars.
fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z0-9:_.@ -]{1,40}"
}

fn arb_briefcase() -> impl Strategy<Value = Briefcase> {
    prop::collection::btree_map(
        arb_name(),
        prop::collection::vec(arb_element(), 0..12),
        0..12,
    )
    .prop_map(|map| {
        map.into_iter()
            .map(|(name, elements)| {
                let mut f = Folder::new(name);
                f.extend(elements);
                f
            })
            .collect()
    })
}

proptest! {
    /// encode → decode is the identity.
    #[test]
    fn roundtrip(bc in arb_briefcase()) {
        let wire = bc.encode();
        let back = Briefcase::decode(&wire).unwrap();
        prop_assert_eq!(bc, back);
    }

    /// encoded_len exactly predicts the encoding's size.
    #[test]
    fn encoded_len_exact(bc in arb_briefcase()) {
        prop_assert_eq!(bc.encode().len(), bc.encoded_len());
    }

    /// Encoding is deterministic: the same logical briefcase always encodes
    /// to identical bytes regardless of insertion order.
    #[test]
    fn deterministic_encoding(bc in arb_briefcase()) {
        let mut reversed = Briefcase::new();
        let folders: Vec<Folder> = bc.clone().into_iter().collect();
        for f in folders.into_iter().rev() {
            reversed.insert_folder(f);
        }
        prop_assert_eq!(bc.encode(), reversed.encode());
    }

    /// The decoder never panics on arbitrary bytes — it returns Ok or a
    /// structured error.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Briefcase::decode(&bytes);
    }

    /// Corrupting any single byte of a valid encoding either still decodes
    /// (payload byte flipped) or yields a structured error — never a panic.
    #[test]
    fn single_byte_corruption_is_contained(bc in arb_briefcase(), idx in any::<prop::sample::Index>(), xor in 1u8..) {
        let mut wire = bc.encode();
        if !wire.is_empty() {
            let i = idx.index(wire.len());
            wire[i] ^= xor;
            let _ = Briefcase::decode(&wire);
        }
    }

    /// The zero-copy decoder agrees with the copying decoder on every
    /// valid encoding: same briefcase out.
    #[test]
    fn decode_bytes_matches_decode_on_valid_wire(bc in arb_briefcase()) {
        let wire = bc.encode();
        let shared = bytes::Bytes::from(wire.clone());
        let copied = Briefcase::decode(&wire).unwrap();
        let sliced = Briefcase::decode_bytes(&shared).unwrap();
        prop_assert_eq!(&copied, &sliced);
        prop_assert_eq!(copied, bc);
    }

    /// And on *arbitrary* wire input the two decoders agree on
    /// acceptance: both Ok with equal briefcases, or both Err.
    #[test]
    fn decode_bytes_parity_on_garbage(bytes_in in prop::collection::vec(any::<u8>(), 0..512)) {
        let shared = bytes::Bytes::from(bytes_in.clone());
        match (Briefcase::decode(&bytes_in), Briefcase::decode_bytes(&shared)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "decoders disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// merge() unions folder names and sums element counts for shared ones.
    #[test]
    fn merge_counts(a in arb_briefcase(), b in arb_briefcase()) {
        let mut merged = a.clone();
        merged.merge(b.clone());
        for name in a.names().chain(b.names()) {
            let expect = a.folder(name).map_or(0, |f| f.len()) + b.folder(name).map_or(0, |f| f.len());
            prop_assert_eq!(merged.folder(name).unwrap().len(), expect);
        }
    }
}
