//! Deterministic seeded scenario generation.
//!
//! A [`ScenarioSpec`] plus a seed is the entire input: [`generate`] is a
//! pure function of them, so the same spec always yields the
//! byte-identical scenario (see [`crate::json::encode`]). Generated
//! topologies are hostile on purpose — heterogeneous link tiers assigned
//! by rank, zipfian explicit connectivity (a few hubs carry most links),
//! lossy links, and a scheduled track of crashes, partitions, and route
//! degradations.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{EventKind, LinkDef, LinkTier, Scenario, ScenarioEvent};

/// Hard cap on generated topology size.
pub const MAX_HOSTS: usize = 1000;

/// What to generate. Everything except the seed has a sensible default;
/// the seed is the experiment's identity.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario label carried into the output.
    pub name: String,
    /// The generator (and downstream network) seed.
    pub seed: u64,
    /// Host count, clamped to `2..=`[`MAX_HOSTS`].
    pub hosts: usize,
    /// Average explicit links per host (zipf-skewed toward hubs).
    pub link_density: f64,
    /// Number of crash/restore host-churn pairs to schedule.
    pub churn: usize,
    /// Number of partition/heal pairs to schedule.
    pub partitions: usize,
    /// Number of route-degradation events (latency or loss bumps).
    pub degradations: usize,
    /// Virtual-time horizon the event track is scheduled within, ms.
    pub horizon_ms: u64,
    /// Tier of every pair without an explicit link.
    pub default_tier: LinkTier,
}

impl ScenarioSpec {
    /// A spec with default knobs for the given seed and host count.
    pub fn new(seed: u64, hosts: usize) -> Self {
        ScenarioSpec {
            name: format!("hostile-{seed}-{hosts}"),
            seed,
            hosts,
            link_density: 2.0,
            churn: hosts.div_ceil(20),
            partitions: hosts.div_ceil(50),
            degradations: hosts.div_ceil(25),
            horizon_ms: 60_000,
            default_tier: LinkTier::Wan,
        }
    }
}

/// Fraction boundaries for rank-based tier assignment: the best-connected
/// quarter of hosts sit on the fast LAN, the long tail is on dial-up.
const TIER_CUTS: [(f64, LinkTier); 4] = [
    (0.25, LinkTier::Lan100),
    (0.50, LinkTier::Lan10),
    (0.80, LinkTier::Wan),
    (1.00, LinkTier::Modem),
];

fn host_tier(rank: usize, total: usize) -> LinkTier {
    #[allow(clippy::cast_precision_loss)]
    let frac = (rank as f64 + 0.5) / total as f64;
    TIER_CUTS
        .iter()
        .find(|(cut, _)| frac <= *cut)
        .map_or(LinkTier::Modem, |(_, tier)| *tier)
}

/// Draws a host index from a zipf(1.0) distribution over ranks, so rank 0
/// (the biggest hub) is drawn most often.
fn zipf_draw(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("nonempty cumulative weights");
    let x = rng.random_range(0.0..total);
    cumulative
        .partition_point(|&c| c <= x)
        .min(cumulative.len() - 1)
}

/// Generates the scenario `spec` describes. Pure: identical specs yield
/// identical scenarios, independent of platform or thread count.
pub fn generate(spec: &ScenarioSpec) -> Scenario {
    let n = spec.hosts.clamp(2, MAX_HOSTS);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let hosts: Vec<String> = (0..n).map(|i| format!("h{i:03}")).collect();

    // Zipf cumulative weights over host ranks (weight 1/(rank+1)).
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 0..n {
        #[allow(clippy::cast_precision_loss)]
        {
            acc += 1.0 / (rank as f64 + 1.0);
        }
        cumulative.push(acc);
    }

    // Explicit links: hubs accumulate most of them. The pair's tier is
    // the slower endpoint's tier — a modem host drags every route to it
    // down to modem speed.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let target_links = ((n as f64 * spec.link_density) as usize).min(n * (n - 1) / 2);
    let mut seen = BTreeSet::new();
    let mut links = Vec::with_capacity(target_links);
    let mut attempts = 0usize;
    while links.len() < target_links && attempts < target_links * 20 {
        attempts += 1;
        let i = zipf_draw(&mut rng, &cumulative);
        let j = zipf_draw(&mut rng, &cumulative);
        if i == j {
            continue;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        if !seen.insert((a, b)) {
            continue;
        }
        let tier = host_tier(a, n).max(host_tier(b, n));
        let loss = if rng.random_range(0u32..10) < 3 {
            // Round to 4 decimals so the JSON form stays compact.
            (rng.random_range(0.0..0.05) * 10_000.0).round() / 10_000.0
        } else {
            0.0
        };
        links.push(LinkDef {
            a: hosts[a].clone(),
            b: hosts[b].clone(),
            tier,
            loss,
        });
    }

    // Event targets are drawn from the back half of the rank order so the
    // hub hosts a tour wants to visit stay stable; `stable_hosts()` still
    // computes the exact stable set from the final track.
    let volatile_lo = n / 2;
    let pick_volatile = |rng: &mut StdRng| rng.random_range(volatile_lo..n);
    let horizon = spec.horizon_ms.max(10);
    let mut events = Vec::new();

    for _ in 0..spec.churn {
        let host = hosts[pick_volatile(&mut rng)].clone();
        let down = rng.random_range(0..horizon * 6 / 10);
        let up = down + rng.random_range(1..horizon * 3 / 10 + 1);
        events.push(ScenarioEvent {
            at_ms: down,
            kind: EventKind::HostDown { host: host.clone() },
        });
        events.push(ScenarioEvent {
            at_ms: up,
            kind: EventKind::HostUp { host },
        });
    }

    for _ in 0..spec.partitions {
        let i = pick_volatile(&mut rng);
        let mut j = pick_volatile(&mut rng);
        if j == i {
            j = if i + 1 < n { i + 1 } else { volatile_lo };
        }
        let (a, b) = (hosts[i.min(j)].clone(), hosts[i.max(j)].clone());
        let cut = rng.random_range(0..horizon * 6 / 10);
        let heal = cut + rng.random_range(1..horizon * 3 / 10 + 1);
        events.push(ScenarioEvent {
            at_ms: cut,
            kind: EventKind::Partition {
                a: a.clone(),
                b: b.clone(),
            },
        });
        events.push(ScenarioEvent {
            at_ms: heal,
            kind: EventKind::Heal { a, b },
        });
    }

    for _ in 0..spec.degradations {
        let i = pick_volatile(&mut rng);
        let mut j = pick_volatile(&mut rng);
        if j == i {
            j = if i + 1 < n { i + 1 } else { volatile_lo };
        }
        let (a, b) = (hosts[i.min(j)].clone(), hosts[i.max(j)].clone());
        let at_ms = rng.random_range(0..horizon);
        let kind = if rng.random::<bool>() {
            EventKind::SetLatency {
                a,
                b,
                latency_ms: rng.random_range(50..400),
            }
        } else {
            EventKind::SetLoss {
                a,
                b,
                loss: f64::from(rng.random_range(5u32..30)) / 100.0,
            }
        };
        events.push(ScenarioEvent { at_ms, kind });
    }

    // Stable sort: ties keep generation order, which is itself
    // deterministic, so the track is fully reproducible.
    events.sort_by_key(|e| e.at_ms);

    Scenario {
        name: spec.name.clone(),
        seed: spec.seed,
        default_tier: spec.default_tier,
        hosts,
        links,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_specs_yield_identical_scenarios() {
        let spec = ScenarioSpec::new(1234, 150);
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ScenarioSpec::new(1, 100));
        let b = generate(&ScenarioSpec::new(2, 100));
        assert_ne!(a.links, b.links);
    }

    #[test]
    fn respects_host_count_and_clamps() {
        assert_eq!(generate(&ScenarioSpec::new(7, 100)).hosts.len(), 100);
        assert_eq!(generate(&ScenarioSpec::new(7, 1)).hosts.len(), 2);
        assert_eq!(
            generate(&ScenarioSpec::new(7, 10_000)).hosts.len(),
            MAX_HOSTS
        );
    }

    #[test]
    fn connectivity_is_hub_skewed() {
        let scenario = generate(&ScenarioSpec::new(99, 200));
        let degree = |host: &str| {
            scenario
                .links
                .iter()
                .filter(|l| l.a == host || l.b == host)
                .count()
        };
        // The top-ranked hub should out-degree the median host.
        assert!(degree("h000") > degree("h100"));
    }

    #[test]
    fn events_are_sorted_and_leave_stable_hosts() {
        let scenario = generate(&ScenarioSpec::new(5, 120));
        assert!(!scenario.events.is_empty());
        assert!(scenario.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let stable = scenario.stable_hosts();
        assert!(!stable.is_empty());
        // The hub half is untouched by construction.
        assert!(stable.contains(&"h000".to_owned()));
    }

    #[test]
    fn tiers_cover_all_classes_at_scale() {
        let scenario = generate(&ScenarioSpec::new(11, 400));
        let mut tiers: Vec<LinkTier> = scenario.links.iter().map(|l| l.tier).collect();
        tiers.sort_unstable();
        tiers.dedup();
        assert!(tiers.len() >= 3, "expected tier diversity, got {tiers:?}");
    }
}
