//! Hand-rolled JSON encoding for scenarios.
//!
//! The workspace's `serde` is an offline no-op stand-in, so the wire
//! format is written and parsed by hand: a writer that emits a canonical
//! layout (stable key order, `{:?}`-formatted floats for exact `f64`
//! round-trips) and a minimal recursive-descent parser for the subset the
//! writer produces. Canonical output means byte-equality of two encoded
//! scenarios is the determinism check.

use std::fmt::Write as _;

use crate::model::{EventKind, LinkDef, LinkTier, Scenario, ScenarioEvent};

/// Encodes a scenario as canonical JSON (two-space indent, stable key
/// order, trailing newline).
pub fn encode(scenario: &Scenario) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", quote(&scenario.name));
    let _ = writeln!(out, "  \"seed\": {},", scenario.seed);
    let _ = writeln!(
        out,
        "  \"default_tier\": {},",
        quote(scenario.default_tier.name())
    );
    let _ = writeln!(out, "  \"hosts\": [");
    for (i, host) in scenario.hosts.iter().enumerate() {
        let comma = if i + 1 < scenario.hosts.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    {}{comma}", quote(host));
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"links\": [");
    for (i, link) in scenario.links.iter().enumerate() {
        let comma = if i + 1 < scenario.links.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"a\": {}, \"b\": {}, \"tier\": {}, \"loss\": {:?}}}{comma}",
            quote(&link.a),
            quote(&link.b),
            quote(link.tier.name()),
            link.loss,
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"events\": [");
    for (i, event) in scenario.events.iter().enumerate() {
        let comma = if i + 1 < scenario.events.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    {}{comma}", encode_event(event));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn encode_event(event: &ScenarioEvent) -> String {
    let head = format!(
        "{{\"at_ms\": {}, \"kind\": {}",
        event.at_ms,
        quote(event.kind.name())
    );
    match &event.kind {
        EventKind::HostDown { host } | EventKind::HostUp { host } => {
            format!("{head}, \"host\": {}}}", quote(host))
        }
        EventKind::Partition { a, b } | EventKind::Heal { a, b } => {
            format!("{head}, \"a\": {}, \"b\": {}}}", quote(a), quote(b))
        }
        EventKind::SetLatency { a, b, latency_ms } => format!(
            "{head}, \"a\": {}, \"b\": {}, \"latency_ms\": {latency_ms}}}",
            quote(a),
            quote(b)
        ),
        EventKind::SetLoss { a, b, loss } => format!(
            "{head}, \"a\": {}, \"b\": {}, \"loss\": {loss:?}}}",
            quote(a),
            quote(b)
        ),
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A decoding failure: what went wrong and roughly where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub at: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario decode error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a scenario from JSON produced by [`encode`] (or hand-written
/// in the same subset: objects, arrays, strings, and plain numbers).
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed JSON, unknown tiers or event
/// kinds, or missing fields.
pub fn decode(input: &str) -> Result<Scenario, DecodeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after scenario object"));
    }
    scenario_from_value(&value).map_err(|message| DecodeError {
        message,
        at: input.len(),
    })
}

/// A parsed JSON value in the subset the writer emits. Numbers keep
/// their literal text: a `u64` seed above 2^53 would lose precision
/// through an `f64`, so integer fields re-parse the text exactly.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Value::Str(s)) => Ok(s),
            Some(_) => Err(format!("field \"{key}\" is not a string")),
            None => Err(format!("missing field \"{key}\"")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Value::Num(text)) => text
                .parse()
                .map_err(|_| format!("field \"{key}\" is not a number: {text:?}")),
            Some(_) => Err(format!("field \"{key}\" is not a number")),
            None => Err(format!("missing field \"{key}\"")),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Value::Num(text)) => text
                .parse()
                .map_err(|_| format!("field \"{key}\" is not a non-negative integer: {text:?}")),
            Some(_) => Err(format!("field \"{key}\" is not a number")),
            None => Err(format!("missing field \"{key}\"")),
        }
    }

    fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Value], String> {
        match self.get(key) {
            Some(Value::Arr(items)) => Ok(items),
            Some(_) => Err(format!("field \"{key}\" is not an array")),
            None => Err(format!("missing field \"{key}\"")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DecodeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.peek() {
            Some(b'"') => self.string().map(Value::Str),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, DecodeError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Validate syntax now; integer fields re-parse the kept text
        // exactly rather than going through this lossy f64.
        text.parse::<f64>()
            .map(|_| Value::Num(text.to_owned()))
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, DecodeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DecodeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn scenario_from_value(value: &Value) -> Result<Scenario, String> {
    let name = value.str_field("name")?.to_owned();
    let seed = value.u64_field("seed")?;
    let tier_name = value.str_field("default_tier")?;
    let default_tier =
        LinkTier::parse(tier_name).ok_or_else(|| format!("unknown tier {tier_name:?}"))?;
    let hosts = value
        .arr_field("hosts")?
        .iter()
        .map(|h| match h {
            Value::Str(s) => Ok(s.clone()),
            _ => Err("host entry is not a string".to_owned()),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let links = value
        .arr_field("links")?
        .iter()
        .map(link_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let events = value
        .arr_field("events")?
        .iter()
        .map(event_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Scenario {
        name,
        seed,
        default_tier,
        hosts,
        links,
        events,
    })
}

fn link_from_value(value: &Value) -> Result<LinkDef, String> {
    let tier_name = value.str_field("tier")?;
    Ok(LinkDef {
        a: value.str_field("a")?.to_owned(),
        b: value.str_field("b")?.to_owned(),
        tier: LinkTier::parse(tier_name).ok_or_else(|| format!("unknown tier {tier_name:?}"))?,
        loss: value.num_field("loss")?,
    })
}

fn event_from_value(value: &Value) -> Result<ScenarioEvent, String> {
    let at_ms = value.u64_field("at_ms")?;
    let kind_name = value.str_field("kind")?;
    let kind = match kind_name {
        "host_down" => EventKind::HostDown {
            host: value.str_field("host")?.to_owned(),
        },
        "host_up" => EventKind::HostUp {
            host: value.str_field("host")?.to_owned(),
        },
        "partition" => EventKind::Partition {
            a: value.str_field("a")?.to_owned(),
            b: value.str_field("b")?.to_owned(),
        },
        "heal" => EventKind::Heal {
            a: value.str_field("a")?.to_owned(),
            b: value.str_field("b")?.to_owned(),
        },
        "set_latency" => EventKind::SetLatency {
            a: value.str_field("a")?.to_owned(),
            b: value.str_field("b")?.to_owned(),
            latency_ms: value.u64_field("latency_ms")?,
        },
        "set_loss" => EventKind::SetLoss {
            a: value.str_field("a")?.to_owned(),
            b: value.str_field("b")?.to_owned(),
            loss: value.num_field("loss")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(ScenarioEvent { at_ms, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            name: "sample \"quoted\"".into(),
            seed: 42,
            default_tier: LinkTier::Wan,
            hosts: vec!["h000".into(), "h001".into(), "h002".into()],
            links: vec![
                LinkDef {
                    a: "h000".into(),
                    b: "h001".into(),
                    tier: LinkTier::Lan100,
                    loss: 0.012_345_678_901_234_5,
                },
                LinkDef {
                    a: "h001".into(),
                    b: "h002".into(),
                    tier: LinkTier::Modem,
                    loss: 0.0,
                },
            ],
            events: vec![
                ScenarioEvent {
                    at_ms: 100,
                    kind: EventKind::HostDown {
                        host: "h002".into(),
                    },
                },
                ScenarioEvent {
                    at_ms: 150,
                    kind: EventKind::SetLatency {
                        a: "h000".into(),
                        b: "h001".into(),
                        latency_ms: 250,
                    },
                },
                ScenarioEvent {
                    at_ms: 200,
                    kind: EventKind::SetLoss {
                        a: "h000".into(),
                        b: "h001".into(),
                        loss: 0.5,
                    },
                },
                ScenarioEvent {
                    at_ms: 300,
                    kind: EventKind::HostUp {
                        host: "h002".into(),
                    },
                },
                ScenarioEvent {
                    at_ms: 400,
                    kind: EventKind::Partition {
                        a: "h000".into(),
                        b: "h002".into(),
                    },
                },
                ScenarioEvent {
                    at_ms: 500,
                    kind: EventKind::Heal {
                        a: "h000".into(),
                        b: "h002".into(),
                    },
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let original = sample();
        let encoded = encode(&original);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, original);
        // Canonical: re-encoding the decode is byte-identical.
        assert_eq!(encode(&decoded), encoded);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut encoded = encode(&sample());
        encoded.push_str("{}");
        assert!(decode(&encoded).is_err());
    }

    #[test]
    fn rejects_unknown_tier() {
        let encoded = encode(&sample()).replace("\"wan\"", "\"avian\"");
        let err = decode(&encoded).unwrap_err();
        assert!(err.message.contains("avian"), "{err}");
    }

    #[test]
    fn rejects_missing_field() {
        assert!(decode("{\"name\": \"x\"}").is_err());
        assert!(decode("not json").is_err());
    }
}
