//! Hostile-network scenarios and itinerary planning for the TAX
//! reproduction.
//!
//! The paper's §5 experiment runs on one friendly LAN and *conjectures*
//! what happens on worse networks. This crate makes the conjecture
//! testable at scale:
//!
//! * [`gen`] — a deterministic seeded generator producing 100–1000-host
//!   topologies with heterogeneous link tiers ([`model::LinkTier`]),
//!   zipfian hub connectivity, lossy links, and a scheduled track of
//!   crashes, partitions, and route degradations.
//! * [`model`] — the serializable [`model::Scenario`] the generator
//!   emits; [`json`] is its wire format (hand-rolled — the workspace's
//!   `serde` is an offline no-op stand-in).
//! * [`track`] / [`system`] — replaying the event track against a live
//!   network from a scheduler step hook, so hostility unfolds in virtual
//!   time, deterministically across worker counts.
//! * [`plan`] — a makespan-minimizing itinerary planner (nearest-neighbor
//!   seed + 2-opt refinement) for multi-hop webbot tours, with the
//!   paper-order baseline ([`plan::naive_order`]) it is benchmarked
//!   against in experiment E11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod json;
pub mod model;
pub mod plan;
pub mod system;
pub mod track;

pub use gen::{generate, ScenarioSpec, MAX_HOSTS};
pub use json::{decode, encode, DecodeError};
pub use model::{EventKind, LinkDef, LinkTier, Scenario, ScenarioEvent};
pub use plan::{naive_order, plan, predicted_makespan, Itinerary};
pub use system::{build_system, install_track};
pub use track::{ScenarioTrack, TrackHandle};
