//! Instantiating a scenario as a running TAX system.
//!
//! [`build_system`] turns a [`Scenario`] into a [`TaxSystem`] whose
//! topology matches the scenario's time-zero state; [`install_track`]
//! hooks the scenario's event track into the scheduler so crashes,
//! partitions, and link degradations fire at their scheduled virtual
//! times — at the top of each BSP step, before the message pump, keeping
//! runs deterministic across worker counts.

use tacoma_core::{StepHook, SystemBuilder, TaxSystem};

use crate::model::Scenario;
use crate::track::{ScenarioTrack, TrackHandle};

/// Builds a TAX system from the scenario: its hosts, its link matrix, its
/// seed, `threads` scheduler workers, and trust-everyone security (the
/// scenario layer studies networks, not policy).
pub fn build_system(scenario: &Scenario, threads: usize) -> TaxSystem {
    let mut builder = SystemBuilder::new()
        .default_link(scenario.default_tier.spec())
        .seed(scenario.seed)
        .trust_all()
        .threads(threads);
    for host in &scenario.hosts {
        builder = builder
            .host(host)
            .expect("generator emits valid host names");
    }
    for link in &scenario.links {
        builder = builder.link(&link.a, &link.b, link.spec());
    }
    builder.build()
}

/// Installs the scenario's event track as a scheduler step hook and
/// returns a handle the caller can poll for replay progress.
pub fn install_track(system: &mut TaxSystem, scenario: &Scenario) -> TrackHandle {
    let handle = TrackHandle::new(ScenarioTrack::new(scenario));
    let hook_handle = handle.clone();
    let hook: StepHook = Box::new(move |net, now| {
        hook_handle.apply_due(net, now);
    });
    system.add_step_hook(hook);
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScenarioSpec;
    use crate::model::{EventKind, LinkTier, ScenarioEvent};
    use tacoma_simnet::HostId;

    #[test]
    fn build_system_materializes_generated_topology() {
        let scenario = crate::gen::generate(&ScenarioSpec::new(3, 16));
        let system = build_system(&scenario, 1);
        assert_eq!(system.host_names().len(), 16);
        let net = system.network();
        for link in &scenario.links {
            let a = HostId::new(link.a.clone()).unwrap();
            let b = HostId::new(link.b.clone()).unwrap();
            let spec = net.with_topology(|t| t.effective_link(&a, &b));
            assert_eq!(spec.bandwidth_bps, link.tier.spec().bandwidth_bps);
        }
    }

    #[test]
    fn installed_track_fires_with_virtual_time() {
        let mut scenario = crate::gen::generate(&ScenarioSpec::new(4, 4));
        scenario.events = vec![ScenarioEvent {
            at_ms: 0,
            kind: EventKind::HostDown {
                host: scenario.hosts[3].clone(),
            },
        }];
        scenario.default_tier = LinkTier::Lan100;
        let mut system = build_system(&scenario, 1);
        let handle = install_track(&mut system, &scenario);
        assert_eq!(handle.applied(), 0);
        system.step();
        assert_eq!(handle.applied(), 1);
        let down = HostId::new(scenario.hosts[3].clone()).unwrap();
        assert!(system.network().with_topology(|t| t.is_down(&down)));
    }
}
