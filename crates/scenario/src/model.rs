//! The serializable scenario model: hosts, tiered links, and a scheduled
//! event track that `simnet` can instantiate and mutate at runtime.

use std::fmt;
use std::time::Duration;

use tacoma_simnet::{HostId, LinkSpec, Topology};

/// A named bandwidth/latency class for a link — the paper-era internet in
/// four steps, from the §5 department LAN down to the dial-up far end of
/// the "slower links widen the remote advantage" conjecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkTier {
    /// 100 Mbit switched LAN — the paper's test environment.
    Lan100,
    /// 10 Mbit shared LAN — the older department network.
    Lan10,
    /// A 2 Mbit / 40 ms wide-area route.
    Wan,
    /// 56 kbit dial-up.
    Modem,
}

impl LinkTier {
    /// Every tier, fastest first. The order is the slowdown order used by
    /// the E11 monotonicity gate.
    pub const ALL: [LinkTier; 4] = [
        LinkTier::Lan100,
        LinkTier::Lan10,
        LinkTier::Wan,
        LinkTier::Modem,
    ];

    /// The link spec this tier stands for.
    pub fn spec(self) -> LinkSpec {
        match self {
            LinkTier::Lan100 => LinkSpec::lan_100mbit(),
            LinkTier::Lan10 => LinkSpec::lan_10mbit(),
            LinkTier::Wan => LinkSpec::wan(2_000_000, Duration::from_millis(40)),
            LinkTier::Modem => LinkSpec::modem_56k(),
        }
    }

    /// How many times slower than [`LinkTier::Lan100`] this tier moves a
    /// reference 1 MB payload — the x-axis of the §5 conjecture sweep.
    pub fn slowdown(self) -> f64 {
        let reference = LinkTier::Lan100.spec().transfer_time(1_000_000);
        self.spec().transfer_time(1_000_000).as_secs_f64() / reference.as_secs_f64()
    }

    /// The tier's stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            LinkTier::Lan100 => "lan100",
            LinkTier::Lan10 => "lan10",
            LinkTier::Wan => "wan",
            LinkTier::Modem => "modem",
        }
    }

    /// Parses a wire name back into a tier.
    pub fn parse(name: &str) -> Option<LinkTier> {
        LinkTier::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for LinkTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One explicit link in a scenario: an unordered host pair, its tier, and
/// its loss probability. Pairs without an explicit link ride the
/// scenario's default tier, loss-free.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDef {
    /// One endpoint.
    pub a: String,
    /// The other endpoint.
    pub b: String,
    /// The bandwidth/latency class.
    pub tier: LinkTier,
    /// Loss probability in `[0, 1)`.
    pub loss: f64,
}

impl LinkDef {
    /// The link spec this definition instantiates.
    pub fn spec(&self) -> LinkSpec {
        if self.loss > 0.0 {
            self.tier.spec().with_loss(self.loss)
        } else {
            self.tier.spec()
        }
    }
}

/// What a scheduled event does to the running network.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The host crashes: all communication to or from it fails.
    HostDown {
        /// The crashing host.
        host: String,
    },
    /// The host comes back.
    HostUp {
        /// The restored host.
        host: String,
    },
    /// The pair's link is severed in both directions.
    Partition {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// The pair's severed link is restored.
    Heal {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// The pair's one-way latency changes (a degrading route).
    SetLatency {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// The new one-way latency in milliseconds.
        latency_ms: u64,
    },
    /// The pair's loss probability changes.
    SetLoss {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// The new loss probability in `[0, 1)`.
        loss: f64,
    },
}

impl EventKind {
    /// The kind's stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::HostDown { .. } => "host_down",
            EventKind::HostUp { .. } => "host_up",
            EventKind::Partition { .. } => "partition",
            EventKind::Heal { .. } => "heal",
            EventKind::SetLatency { .. } => "set_latency",
            EventKind::SetLoss { .. } => "set_loss",
        }
    }

    /// Host names this event touches.
    pub fn hosts(&self) -> Vec<&str> {
        match self {
            EventKind::HostDown { host } | EventKind::HostUp { host } => vec![host],
            EventKind::Partition { a, b }
            | EventKind::Heal { a, b }
            | EventKind::SetLatency { a, b, .. }
            | EventKind::SetLoss { a, b, .. } => vec![a, b],
        }
    }
}

/// One scheduled mutation of the running topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// Virtual time the event fires at, in milliseconds since the run's
    /// epoch.
    pub at_ms: u64,
    /// What happens.
    pub kind: EventKind,
}

/// A complete generated scenario: the topology to build and the event
/// track to drive while it runs. Serializable (see [`crate::json`]), and
/// a pure function of its generator spec — the same seed always yields
/// the byte-identical scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label, carried through benches and JSON.
    pub name: String,
    /// The seed it was generated from (also seeds the instantiated
    /// network's loss randomness).
    pub seed: u64,
    /// The tier of every pair without an explicit link.
    pub default_tier: LinkTier,
    /// All hosts, in name order.
    pub hosts: Vec<String>,
    /// Explicit links (zipfian connectivity: hubs carry most of them).
    pub links: Vec<LinkDef>,
    /// The event track, sorted by [`ScenarioEvent::at_ms`].
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Builds the simnet topology this scenario describes (its state at
    /// virtual time zero; the event track mutates it from there).
    ///
    /// # Panics
    ///
    /// Panics if a host or link endpoint is not a valid [`HostId`] — the
    /// generator only emits valid names, so this indicates a corrupted
    /// hand-written scenario.
    pub fn topology(&self) -> Topology {
        let mut topo = Topology::new(self.default_tier.spec());
        for host in &self.hosts {
            topo.add_host(HostId::new(host.clone()).expect("valid scenario host name"));
        }
        for link in &self.links {
            let a = HostId::new(link.a.clone()).expect("valid link endpoint");
            let b = HostId::new(link.b.clone()).expect("valid link endpoint");
            topo.set_link(&a, &b, link.spec());
        }
        topo
    }

    /// Hosts no event ever crashes or partitions — safe ground for a
    /// tour that must complete while the hostile background plays out.
    pub fn stable_hosts(&self) -> Vec<String> {
        self.hosts
            .iter()
            .filter(|h| {
                !self
                    .events
                    .iter()
                    .any(|e| e.kind.hosts().contains(&h.as_str()))
            })
            .cloned()
            .collect()
    }

    /// Total event count at or before `at_ms` — how much of the track a
    /// run to that virtual time should have applied.
    pub fn events_due_by(&self, at_ms: u64) -> usize {
        self.events.iter().filter(|e| e.at_ms <= at_ms).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_slowdown_is_monotone() {
        let mut prev = 0.0;
        for tier in LinkTier::ALL {
            let s = tier.slowdown();
            assert!(s >= prev, "{tier} slowdown {s} not monotone");
            prev = s;
        }
        assert!((LinkTier::Lan100.slowdown() - 1.0).abs() < 1e-9);
        assert!(LinkTier::Modem.slowdown() > 100.0);
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in LinkTier::ALL {
            assert_eq!(LinkTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(LinkTier::parse("carrier-pigeon"), None);
    }

    #[test]
    fn topology_applies_links_and_default() {
        let scenario = Scenario {
            name: "t".into(),
            seed: 1,
            default_tier: LinkTier::Wan,
            hosts: vec!["a".into(), "b".into(), "c".into()],
            links: vec![LinkDef {
                a: "a".into(),
                b: "b".into(),
                tier: LinkTier::Lan100,
                loss: 0.25,
            }],
            events: vec![],
        };
        let topo = scenario.topology();
        let h = |n: &str| HostId::new(n).unwrap();
        let ab = topo.route(&h("a"), &h("b")).unwrap();
        assert_eq!(ab.bandwidth_bps, LinkTier::Lan100.spec().bandwidth_bps);
        assert!((ab.loss - 0.25).abs() < 1e-12);
        let ac = topo.route(&h("a"), &h("c")).unwrap();
        assert_eq!(ac, LinkTier::Wan.spec());
    }

    #[test]
    fn stable_hosts_excludes_event_targets() {
        let scenario = Scenario {
            name: "t".into(),
            seed: 1,
            default_tier: LinkTier::Lan100,
            hosts: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            links: vec![],
            events: vec![
                ScenarioEvent {
                    at_ms: 10,
                    kind: EventKind::HostDown { host: "b".into() },
                },
                ScenarioEvent {
                    at_ms: 20,
                    kind: EventKind::Partition {
                        a: "c".into(),
                        b: "d".into(),
                    },
                },
            ],
        };
        assert_eq!(scenario.stable_hosts(), vec!["a".to_owned()]);
        assert_eq!(scenario.events_due_by(15), 1);
        assert_eq!(scenario.events_due_by(25), 2);
    }
}
