//! Runtime event track: replays a scenario's scheduled mutations against
//! a live [`Network`] as virtual time advances.
//!
//! A [`ScenarioTrack`] is a cursor over the (time-sorted) event list.
//! [`ScenarioTrack::apply_due`] applies every event whose time has
//! arrived; hooked into the scheduler via a step hook (see
//! [`crate::system::install_track`]) it fires at the top of every BSP
//! step, before the message pump, so event application is deterministic
//! with respect to the virtual clock regardless of worker count.

use std::sync::Arc;

use parking_lot::Mutex;
use tacoma_simnet::{HostId, Network, SimTime};

use crate::model::{EventKind, Scenario, ScenarioEvent};

/// A replay cursor over a scenario's event list.
#[derive(Debug)]
pub struct ScenarioTrack {
    events: Vec<ScenarioEvent>,
    next: usize,
}

impl ScenarioTrack {
    /// Builds a track over the scenario's events (assumed time-sorted, as
    /// the generator and decoder guarantee).
    pub fn new(scenario: &Scenario) -> Self {
        ScenarioTrack {
            events: scenario.events.clone(),
            next: 0,
        }
    }

    /// How many events have been applied so far.
    pub fn applied(&self) -> usize {
        self.next
    }

    /// Total events on the track.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the track has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Applies every not-yet-applied event with `at_ms <= now`, in track
    /// order. Returns how many fired. Events naming hosts absent from
    /// the network are skipped (counted as applied) rather than panicking
    /// — a track may legitimately outlive a pruned topology.
    pub fn apply_due(&mut self, net: &Network, now: SimTime) -> usize {
        let now_ms = now.as_nanos() / 1_000_000;
        let mut fired = 0;
        while let Some(event) = self.events.get(self.next) {
            if event.at_ms > now_ms {
                break;
            }
            apply_event(net, &event.kind);
            self.next += 1;
            fired += 1;
        }
        fired
    }
}

fn host(name: &str) -> Option<HostId> {
    HostId::new(name.to_owned()).ok()
}

fn apply_event(net: &Network, kind: &EventKind) {
    match kind {
        EventKind::HostDown { host: h } => {
            if let Some(h) = host(h) {
                if net.contains(&h) {
                    net.crash_host(&h);
                }
            }
        }
        EventKind::HostUp { host: h } => {
            if let Some(h) = host(h) {
                if net.contains(&h) {
                    net.restore_host(&h);
                }
            }
        }
        EventKind::Partition { a, b } => {
            if let (Some(a), Some(b)) = (host(a), host(b)) {
                net.partition(&a, &b);
            }
        }
        EventKind::Heal { a, b } => {
            if let (Some(a), Some(b)) = (host(a), host(b)) {
                net.heal(&a, &b);
            }
        }
        EventKind::SetLatency { a, b, latency_ms } => {
            if let (Some(a), Some(b)) = (host(a), host(b)) {
                net.set_latency(&a, &b, std::time::Duration::from_millis(*latency_ms));
            }
        }
        EventKind::SetLoss { a, b, loss } => {
            if let (Some(a), Some(b)) = (host(a), host(b)) {
                net.set_loss(&a, &b, *loss);
            }
        }
    }
}

/// Shared handle to a track installed behind a step hook: lets the
/// experiment read progress while the scheduler owns the hook closure.
#[derive(Debug, Clone)]
pub struct TrackHandle {
    inner: Arc<Mutex<ScenarioTrack>>,
}

impl TrackHandle {
    /// Wraps a track for sharing with a step hook.
    pub fn new(track: ScenarioTrack) -> Self {
        TrackHandle {
            inner: Arc::new(Mutex::new(track)),
        }
    }

    /// Applies due events through the shared track.
    pub fn apply_due(&self, net: &Network, now: SimTime) -> usize {
        self.inner.lock().apply_due(net, now)
    }

    /// Events applied so far.
    pub fn applied(&self) -> usize {
        self.inner.lock().applied()
    }

    /// Total events on the track.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the track is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinkTier, Scenario, ScenarioEvent};
    use tacoma_simnet::{LinkSpec, Topology};

    fn net3() -> Network {
        let mut topo = Topology::new(LinkSpec::lan_100mbit());
        for n in ["a", "b", "c"] {
            topo.add_host(HostId::new(n).unwrap());
        }
        Network::new(topo, 1)
    }

    fn scenario_with(events: Vec<ScenarioEvent>) -> Scenario {
        Scenario {
            name: "t".into(),
            seed: 0,
            default_tier: LinkTier::Lan100,
            hosts: vec!["a".into(), "b".into(), "c".into()],
            links: vec![],
            events,
        }
    }

    #[test]
    fn applies_events_in_time_order() {
        let net = net3();
        let scenario = scenario_with(vec![
            ScenarioEvent {
                at_ms: 5,
                kind: EventKind::HostDown { host: "b".into() },
            },
            ScenarioEvent {
                at_ms: 20,
                kind: EventKind::HostUp { host: "b".into() },
            },
        ]);
        let mut track = ScenarioTrack::new(&scenario);
        let b = HostId::new("b").unwrap();

        assert_eq!(track.apply_due(&net, SimTime::from_nanos(1_000_000)), 0);
        assert!(!net.with_topology(|t| t.is_down(&b)));

        assert_eq!(track.apply_due(&net, SimTime::from_nanos(5_000_000)), 1);
        assert!(net.with_topology(|t| t.is_down(&b)));

        // Idempotent between deadlines.
        assert_eq!(track.apply_due(&net, SimTime::from_nanos(6_000_000)), 0);

        assert_eq!(track.apply_due(&net, SimTime::from_nanos(25_000_000)), 1);
        assert!(!net.with_topology(|t| t.is_down(&b)));
        assert_eq!(track.applied(), 2);
    }

    #[test]
    fn partition_and_link_mutations_apply() {
        let net = net3();
        let scenario = scenario_with(vec![
            ScenarioEvent {
                at_ms: 1,
                kind: EventKind::Partition {
                    a: "a".into(),
                    b: "c".into(),
                },
            },
            ScenarioEvent {
                at_ms: 1,
                kind: EventKind::SetLatency {
                    a: "a".into(),
                    b: "b".into(),
                    latency_ms: 300,
                },
            },
        ]);
        let mut track = ScenarioTrack::new(&scenario);
        assert_eq!(track.apply_due(&net, SimTime::from_nanos(2_000_000)), 2);
        let (a, b, c) = (
            HostId::new("a").unwrap(),
            HostId::new("b").unwrap(),
            HostId::new("c").unwrap(),
        );
        assert!(net.probe(&a, &c, 10).is_err());
        let latency = net.with_topology(|t| t.effective_link(&a, &b).latency);
        assert_eq!(latency, std::time::Duration::from_millis(300));
    }

    #[test]
    fn unknown_hosts_are_skipped_not_fatal() {
        let net = net3();
        let scenario = scenario_with(vec![ScenarioEvent {
            at_ms: 1,
            kind: EventKind::HostDown {
                host: "ghost".into(),
            },
        }]);
        let mut track = ScenarioTrack::new(&scenario);
        assert_eq!(track.apply_due(&net, SimTime::from_nanos(2_000_000)), 1);
    }
}
