//! Makespan-minimizing itinerary planning.
//!
//! A multi-hop webbot tour visits a set of servers and returns home; its
//! virtual makespan is dominated by agent-transfer time over the links it
//! crosses. The paper sends its robot in request order. On a homogeneous
//! LAN the order is irrelevant, but over the heterogeneous topologies the
//! scenario generator produces, a tour that zig-zags across a modem link
//! pays for it on every crossing. This module plans the visit order
//! against the link matrix: nearest-neighbor construction from home,
//! refined by 2-opt segment reversal, with the home endpoints fixed (the
//! agent starts and ends at its launch host). [`naive_order`] is the
//! paper-order baseline the E11 experiment compares against.

use std::time::Duration;

use tacoma_simnet::{HostId, Topology};

/// A planned tour: the visit order (home excluded) and its predicted
/// makespan over the given link matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Itinerary {
    /// Stops in visit order; the tour runs home → stops… → home.
    pub order: Vec<HostId>,
    /// Predicted agent-transfer time for the whole round trip.
    pub predicted: Duration,
}

/// Predicted cost of one hop: the effective link's transfer time for an
/// agent of `payload_bytes`. Partitions and crashes are runtime
/// phenomena, not link properties, so they do not enter the prediction.
pub fn hop_cost(topo: &Topology, a: &HostId, b: &HostId, payload_bytes: u64) -> Duration {
    if a == b {
        return Duration::ZERO;
    }
    topo.effective_link(a, b).transfer_time(payload_bytes)
}

/// Predicted makespan of the round trip home → `order`… → home.
pub fn predicted_makespan(
    topo: &Topology,
    home: &HostId,
    order: &[HostId],
    payload_bytes: u64,
) -> Duration {
    let mut total = Duration::ZERO;
    let mut at = home;
    for stop in order {
        total += hop_cost(topo, at, stop, payload_bytes);
        at = stop;
    }
    total + hop_cost(topo, at, home, payload_bytes)
}

/// The paper-order baseline: visit stops exactly as requested.
pub fn naive_order(stops: &[HostId]) -> Vec<HostId> {
    stops.to_vec()
}

/// Nearest-neighbor construction: from home, repeatedly hop to the
/// cheapest unvisited stop. Ties break toward the earlier stop in the
/// input, keeping the result deterministic.
pub fn nearest_neighbor(
    topo: &Topology,
    home: &HostId,
    stops: &[HostId],
    payload_bytes: u64,
) -> Vec<HostId> {
    let mut remaining: Vec<&HostId> = stops.iter().collect();
    let mut order = Vec::with_capacity(stops.len());
    let mut at = home;
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, stop)| hop_cost(topo, at, stop, payload_bytes))
            .map(|(i, _)| i)
            .expect("remaining is nonempty");
        let next = remaining.remove(best);
        order.push(next.clone());
        at = order.last().expect("just pushed");
    }
    order
}

/// 2-opt refinement with fixed home endpoints: repeatedly reverses the
/// segment `[i..=j]` when doing so shortens the tour (including the
/// closing edge back home), until a full pass finds no improvement. The
/// result never costs more than the input order.
pub fn two_opt(
    topo: &Topology,
    home: &HostId,
    order: &[HostId],
    payload_bytes: u64,
) -> Vec<HostId> {
    let mut best: Vec<HostId> = order.to_vec();
    if best.len() < 2 {
        return best;
    }
    let cost = |a: &HostId, b: &HostId| hop_cost(topo, a, b, payload_bytes);
    // Bounded passes: 2-opt converges fast, but guard against cost-model
    // pathologies keeping us in a loop.
    for _ in 0..best.len() * 4 {
        let mut improved = false;
        for i in 0..best.len() - 1 {
            for j in i + 1..best.len() {
                let before_i = if i == 0 { home } else { &best[i - 1] };
                let after_j = if j == best.len() - 1 {
                    home
                } else {
                    &best[j + 1]
                };
                let current = cost(before_i, &best[i]) + cost(&best[j], after_j);
                let reversed = cost(before_i, &best[j]) + cost(&best[i], after_j);
                if reversed < current {
                    best[i..=j].reverse();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// Full planner: 2-opt refinement of both the nearest-neighbor seed and
/// the naive request order, keeping whichever predicts cheaper. Because
/// the naive order is one of the refined candidates and 2-opt never
/// regresses its input, the plan's predicted makespan is never worse
/// than the baseline's.
pub fn plan(topo: &Topology, home: &HostId, stops: &[HostId], payload_bytes: u64) -> Itinerary {
    let seeded = nearest_neighbor(topo, home, stops, payload_bytes);
    let candidates = [
        two_opt(topo, home, &seeded, payload_bytes),
        two_opt(topo, home, stops, payload_bytes),
    ];
    candidates
        .into_iter()
        .map(|order| {
            let predicted = predicted_makespan(topo, home, &order, payload_bytes);
            Itinerary { order, predicted }
        })
        .min_by_key(|it| it.predicted)
        .expect("two candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_simnet::LinkSpec;

    fn h(n: &str) -> HostId {
        HostId::new(n).unwrap()
    }

    /// A line topology: home — a — b — c with fast adjacent links and a
    /// slow default, so the optimal tour walks the line in order.
    fn line_topology() -> Topology {
        let mut topo = Topology::new(LinkSpec::modem_56k());
        for n in ["home", "a", "b", "c"] {
            topo.add_host(h(n));
        }
        for (x, y) in [("home", "a"), ("a", "b"), ("b", "c")] {
            topo.set_link(&h(x), &h(y), LinkSpec::lan_100mbit());
        }
        topo
    }

    #[test]
    fn planner_beats_adversarial_order_on_line() {
        let topo = line_topology();
        let home = h("home");
        let stops = [h("b"), h("c"), h("a")]; // zig-zags across slow default links
        let bytes = 100_000;

        let naive = predicted_makespan(&topo, &home, &naive_order(&stops), bytes);
        let planned = plan(&topo, &home, &stops, bytes);
        assert!(planned.predicted < naive, "{planned:?} !< {naive:?}");
        assert_eq!(planned.order, vec![h("a"), h("b"), h("c")]);
    }

    #[test]
    fn two_opt_never_worse_than_input() {
        let topo = line_topology();
        let home = h("home");
        let bytes = 50_000;
        let orders = [
            vec![h("a"), h("b"), h("c")],
            vec![h("c"), h("a"), h("b")],
            vec![h("b"), h("c"), h("a")],
        ];
        for order in orders {
            let before = predicted_makespan(&topo, &home, &order, bytes);
            let refined = two_opt(&topo, &home, &order, bytes);
            let after = predicted_makespan(&topo, &home, &refined, bytes);
            assert!(after <= before, "2-opt regressed: {after:?} > {before:?}");
        }
    }

    #[test]
    fn plan_visits_every_stop_exactly_once() {
        let topo = line_topology();
        let stops = [h("c"), h("a"), h("b")];
        let planned = plan(&topo, &h("home"), &stops, 1_000);
        let mut visited = planned.order.clone();
        visited.sort();
        let mut expected = stops.to_vec();
        expected.sort();
        assert_eq!(visited, expected);
    }

    #[test]
    fn degenerate_tours_are_handled() {
        let topo = line_topology();
        let home = h("home");
        assert!(plan(&topo, &home, &[], 1_000).order.is_empty());
        let single = plan(&topo, &home, &[h("a")], 1_000);
        assert_eq!(single.order, vec![h("a")]);
        assert!(single.predicted > Duration::ZERO);
    }
}
