//! Property tests: planner guarantees and generator determinism.
//!
//! The planner's contract is inequality-shaped (2-opt never regresses,
//! `plan` never loses to the naive order), which makes it a natural
//! property-test target: any generated topology and any visit order must
//! satisfy it, not just the line topologies the unit tests pick.

use proptest::prelude::*;
use tacoma_scenario::{decode, encode, generate, plan, predicted_makespan, ScenarioSpec};
use tacoma_simnet::HostId;

/// Turns raw picks into a duplicate-free stop list over `hosts`,
/// excluding the home host at rank 0.
fn stops_from_picks(hosts: &[String], picks: &[u64]) -> Vec<HostId> {
    let mut stops = Vec::new();
    for p in picks {
        #[allow(clippy::cast_possible_truncation)]
        let idx = 1 + (*p as usize) % (hosts.len() - 1);
        let id = HostId::new(hosts[idx].clone()).expect("generated host name");
        if !stops.contains(&id) {
            stops.push(id);
        }
    }
    stops
}

proptest! {
    /// 2-opt refinement never predicts worse than the order it was given,
    /// and the full planner never predicts worse than the naive baseline.
    #[test]
    fn planner_never_regresses(
        seed in any::<u64>(),
        hosts in 4usize..24,
        picks in prop::collection::vec(any::<u64>(), 1..8),
        bytes in 1u64..5_000_000,
    ) {
        let scenario = generate(&ScenarioSpec::new(seed, hosts));
        let topo = scenario.topology();
        let home = HostId::new(scenario.hosts[0].clone()).expect("home host");
        let stops = stops_from_picks(&scenario.hosts, &picks);

        let naive = predicted_makespan(&topo, &home, &stops, bytes);
        let refined = tacoma_scenario::plan::two_opt(&topo, &home, &stops, bytes);
        let after = predicted_makespan(&topo, &home, &refined, bytes);
        prop_assert!(after <= naive, "2-opt regressed: {after:?} > {naive:?}");

        let planned = plan(&topo, &home, &stops, bytes);
        prop_assert!(
            planned.predicted <= naive,
            "plan lost to naive: {:?} > {naive:?}",
            planned.predicted
        );
        prop_assert_eq!(
            predicted_makespan(&topo, &home, &planned.order, bytes),
            planned.predicted
        );

        // The plan is a permutation of the requested stops.
        let mut got = planned.order.clone();
        got.sort();
        let mut want = stops.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Generation is a pure function of the spec: concurrent generators on
    /// four threads produce the byte-identical encoding the main thread
    /// does. (Scheduler-thread invariance of a *running* scenario is
    /// covered by the `scenario_smoke` integration test.)
    #[test]
    fn identical_seeds_encode_identically_across_threads(
        seed in any::<u64>(),
        hosts in 2usize..64,
    ) {
        let spec = ScenarioSpec::new(seed, hosts);
        let reference = encode(&generate(&spec));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                std::thread::spawn(move || encode(&generate(&spec)))
            })
            .collect();
        for worker in workers {
            let theirs = worker.join().expect("generator thread");
            prop_assert_eq!(&theirs, &reference);
        }
    }

    /// Every generated scenario survives a JSON round trip exactly, and
    /// the encoding is a fixed point (canonical form).
    #[test]
    fn generated_scenarios_round_trip(seed in any::<u64>(), hosts in 2usize..40) {
        let scenario = generate(&ScenarioSpec::new(seed, hosts));
        let text = encode(&scenario);
        let back = decode(&text).expect("canonical encoding must decode");
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(encode(&back), text);
    }
}
