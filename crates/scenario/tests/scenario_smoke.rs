//! Smoke test: a 16-host scenario with one scheduled partition, replayed
//! under 1- and 4-worker schedulers.
//!
//! The partition severs the tour's home host from its first stop at
//! virtual time zero, so the tour must account that hop as *unreachable*
//! (distinct from random link loss) and carry on. Because the event track
//! fires from a BSP step hook, the full event trace must be identical
//! whatever the worker count.

use tacoma_core::HostEvent;
use tacoma_scenario::{
    build_system, generate, install_track, EventKind, Scenario, ScenarioEvent, ScenarioSpec,
};
use tacoma_webbot::fleet::{install_fleet_sites, FleetParams, FleetPlan};
use tacoma_webbot::mobile;
use tacoma_webbot::tour::{fetch_tour, tour_spec, TourStamps};

const HOME: &str = "h000";
const CUT_STOP: &str = "h009";

/// 16 hosts, no random churn or degradation — exactly one event: a
/// never-healed partition between the tour's home and its first stop.
fn smoke_scenario() -> Scenario {
    let mut spec = ScenarioSpec::new(16_161, 16);
    spec.churn = 0;
    spec.partitions = 0;
    spec.degradations = 0;
    let mut scenario = generate(&spec);
    scenario.events = vec![ScenarioEvent {
        at_ms: 0,
        kind: EventKind::Partition {
            a: HOME.to_owned(),
            b: CUT_STOP.to_owned(),
        },
    }];
    scenario
}

/// Runs the tour over the smoke scenario with `threads` scheduler
/// workers; returns the tour stamps, the network's unreachable counter,
/// and the full event trace.
fn run(threads: usize) -> (TourStamps, u64, Vec<(String, HostEvent)>) {
    let scenario = smoke_scenario();
    let order = [CUT_STOP.to_owned(), "h003".to_owned(), "h005".to_owned()];

    let mut system = build_system(&scenario, threads);
    let track = install_track(&mut system, &scenario);

    let params = FleetParams {
        plan: FleetPlan::from_pairs(order.iter().map(|stop| (HOME.to_owned(), stop.clone()))),
        pages: 4,
        total_bytes: 20_000,
        seed: scenario.seed,
        ..FleetParams::default()
    };
    install_fleet_sites(&system, &params);
    for name in params.plan.hosts() {
        mobile::install_programs(&system.host(&name).expect("scenario host"));
    }

    system
        .launch(HOME, tour_spec(HOME, &order, &[]))
        .expect("launch tour");
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced(), "smoke system did not quiesce");
    assert_eq!(track.applied(), 1, "the single partition event must fire");

    let (_, stamps) = fetch_tour(&mut system, HOME, HOME).expect("tour reported home");
    let unreachable = system.network().stats().total_unreachable();
    (stamps, unreachable, system.events())
}

#[test]
fn partitioned_stop_is_unreachable_not_lost() {
    let (stamps, net_unreachable, _) = run(1);
    assert_eq!(stamps.unreachable, vec![CUT_STOP.to_owned()]);
    assert_eq!(stamps.visited.len(), 2, "the two reachable stops scan");
    assert!(
        net_unreachable > 0,
        "the severed hop must hit the unreachable counter"
    );
    assert!(stamps.makespan_ms() >= 0);
}

#[test]
fn trace_is_identical_across_worker_counts() {
    let (stamps_1, unreachable_1, trace_1) = run(1);
    let (stamps_4, unreachable_4, trace_4) = run(4);
    assert_eq!(trace_1, trace_4, "1- vs 4-worker traces diverged");
    assert_eq!(stamps_1.visited, stamps_4.visited);
    assert_eq!(stamps_1.unreachable, stamps_4.unreachable);
    assert_eq!(unreachable_1, unreachable_4);
}
