//! Fault injection against the TCP backend: dead peers, half-closed
//! connections, and handshake rejection — proving the retry/backoff loop
//! reconnects when it can and reports honestly when it cannot.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use tacoma_transport::{
    build_welcome, BackoffPolicy, Frame, FrameKind, FrameLimits, ListenerConfig, TcpConfig,
    TcpTransport, Transport, TransportError, TransportListener,
};

fn fast_transport(local_host: &str) -> TcpTransport {
    let mut config = TcpConfig {
        backoff: BackoffPolicy::fast(),
        ..TcpConfig::default()
    };
    config.connect.local_host = local_host.to_owned();
    TcpTransport::new(config)
}

/// Nothing listening at all: every attempt fails, the caller gets
/// `RetriesExhausted`, and the counters account for every retry.
#[test]
fn dead_peer_exhausts_retries() {
    // Bind-then-drop to get a port nothing listens on.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let transport = fast_transport("alpha");
    let err = transport
        .send("alpha", "127.0.0.1", port, b"payload")
        .unwrap_err();
    let TransportError::RetriesExhausted { attempts, .. } = err else {
        panic!("expected RetriesExhausted, got {err:?}");
    };
    assert_eq!(attempts, BackoffPolicy::fast().max_attempts);

    let stats = transport.stats();
    assert_eq!(stats.frames_sent, 0);
    assert_eq!(stats.retry_timeouts, 1);
    assert_eq!(stats.reconnects, u64::from(attempts) - 1);
}

/// Answers the handshake on a raw socket: read HELLO, send WELCOME.
fn serve_handshake(stream: &mut TcpStream) {
    let limits = FrameLimits::default();
    let hello = Frame::read_from(stream, &limits).unwrap();
    assert_eq!(hello.kind, FrameKind::Hello);
    Frame::new(FrameKind::Welcome, build_welcome("beta"))
        .write_to(stream)
        .unwrap();
}

/// A peer that handshakes, accepts the Briefcase frame, then slams the
/// connection shut *before* acking. The buffered TCP write succeeded, so
/// only the ack protocol detects the loss; the transport must treat the
/// connection as poisoned, back off, reconnect, and succeed on the
/// healthy second connection.
#[test]
fn half_close_before_ack_reconnects_and_delivers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();

    let server = thread::spawn(move || {
        // Connection 1: swallow the payload, never ack.
        let (mut stream, _) = listener.accept().unwrap();
        serve_handshake(&mut stream);
        let frame = Frame::read_from(&mut stream, &FrameLimits::default()).unwrap();
        assert_eq!(frame.kind, FrameKind::Briefcase);
        drop(stream);

        // Connection 2: behave.
        let (mut stream, _) = listener.accept().unwrap();
        serve_handshake(&mut stream);
        let frame = Frame::read_from(&mut stream, &FrameLimits::default()).unwrap();
        assert_eq!(frame.kind, FrameKind::Briefcase);
        Frame::bare(FrameKind::Ack).write_to(&mut stream).unwrap();
        frame.payload
    });

    let transport = fast_transport("alpha");
    transport
        .send("alpha", "127.0.0.1", port, b"survives the fault")
        .expect("retry should deliver on the second connection");

    assert_eq!(&server.join().unwrap()[..], b"survives the fault");
    let stats = transport.stats();
    assert_eq!(stats.frames_sent, 1, "counted once despite the retry");
    assert!(stats.reconnects >= 1, "the half-close forced a reconnect");
    assert_eq!(stats.retry_timeouts, 0, "the message was never given up on");
}

/// A listener that requires signed HELLOs refuses an unsigned client —
/// and the client fails *fast*: retrying the same credentials cannot
/// succeed, so no backoff attempts are burned.
#[test]
fn handshake_rejection_fails_without_retries() {
    let mut config = ListenerConfig::trusting("beta");
    config.require_signed = true;
    let listener = TransportListener::bind("127.0.0.1:0", config).unwrap();
    let port = listener.local_addr().port();

    let transport = fast_transport("alpha");
    let err = transport
        .send("alpha", "127.0.0.1", port, b"unsigned")
        .unwrap_err();
    assert!(
        matches!(err, TransportError::HandshakeFailed { .. }),
        "got {err:?}"
    );

    let stats = transport.stats();
    assert_eq!(stats.reconnects, 0, "no pointless retries after a reject");
    assert_eq!(stats.handshake_failures, 1);
    assert_eq!(listener.stats().handshake_failures, 1);
}

/// Sanity: against a healthy `TransportListener`, payloads arrive tagged
/// with the announced peer and the connection is pooled (one connect for
/// many sends).
#[test]
fn healthy_listener_receives_and_pools() {
    let listener =
        TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("beta")).unwrap();
    let port = listener.local_addr().port();

    let transport = Arc::new(fast_transport("alpha"));
    for i in 0..3u8 {
        transport.send("alpha", "127.0.0.1", port, &[i]).unwrap();
    }
    let mut payloads = Vec::new();
    for _ in 0..3 {
        let inbound = listener
            .incoming()
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert_eq!(inbound.from_host, "alpha");
        payloads.extend_from_slice(&inbound.payload);
    }
    payloads.sort_unstable();
    assert_eq!(payloads, vec![0, 1, 2]);
    assert_eq!(transport.stats().connects, 1, "pooled connection reused");
}
