//! Property-based tests for the frame codec: roundtrip identity, limit
//! enforcement, and totality on hostile input.

use proptest::prelude::*;
use tacoma_transport::{Frame, FrameKind, FrameLimits, TransportError, FRAME_HEADER_LEN};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    (1u8..9).prop_map(|b| FrameKind::from_u8(b).expect("1..=8 are all valid kinds"))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_kind(), prop::collection::vec(any::<u8>(), 0..2048))
        .prop_map(|(kind, payload)| Frame::new(kind, payload))
}

proptest! {
    /// encode → decode is the identity and consumes exactly the encoding.
    #[test]
    fn roundtrip(frame in arb_frame()) {
        let wire = frame.encode();
        let (back, used) = Frame::decode(&wire, &FrameLimits::default()).unwrap();
        prop_assert_eq!(back, frame);
        prop_assert_eq!(used, wire.len());
    }

    /// Stream read/write agrees with the buffer codec.
    #[test]
    fn stream_roundtrip(frame in arb_frame()) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice(), &FrameLimits::default()).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Two frames back-to-back decode in order from one buffer.
    #[test]
    fn frames_are_self_delimiting(a in arb_frame(), b in arb_frame()) {
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let limits = FrameLimits::default();
        let (first, used) = Frame::decode(&wire, &limits).unwrap();
        let (second, rest) = Frame::decode(&wire[used..], &limits).unwrap();
        prop_assert_eq!(first, a);
        prop_assert_eq!(second, b);
        prop_assert_eq!(used + rest, wire.len());
    }

    /// Any payload larger than the limit is refused with `FrameTooLarge`,
    /// regardless of how much of it is actually present.
    #[test]
    fn over_limit_is_rejected(
        kind in arb_kind(),
        limit in 0u64..512,
        excess in 1u64..512,
        present in 0usize..64,
    ) {
        let declared = limit + excess;
        let mut wire = Frame::new(kind, Vec::new()).encode();
        wire[6..10].copy_from_slice(&(declared as u32).to_le_bytes());
        wire.truncate(FRAME_HEADER_LEN);
        wire.extend(std::iter::repeat_n(0u8, present));
        let err = Frame::decode(&wire, &FrameLimits { max_frame: limit }).unwrap_err();
        prop_assert!(matches!(err, TransportError::FrameTooLarge { .. }));
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes, &FrameLimits::default());
        let _ = Frame::read_from(&mut bytes.as_slice(), &FrameLimits::default());
    }

    /// Corrupting any single header byte of a valid frame either still
    /// decodes (length-compatible payload flip) or yields a structured
    /// error — never a panic or an over-read.
    #[test]
    fn header_corruption_is_contained(frame in arb_frame(), idx in 0usize..FRAME_HEADER_LEN, xor in 1u8..) {
        let mut wire = frame.encode();
        wire[idx] ^= xor;
        let _ = Frame::decode(&wire, &FrameLimits::default());
    }
}
