//! Property tests of the pipelined ack-window protocol: arbitrary
//! interleavings of sends, deliveries, ack losses, timeouts, and
//! reconnects never deliver a frame to the forward hook twice and never
//! lose an unacked frame.
//!
//! The wire model is TCP's: in-order and reliable *within* a
//! connection. Frames are never silently dropped mid-stream — losing a
//! frame means losing the connection (the `Reconnect` op), which drops
//! everything in flight in both directions and restarts both windows.
//! That assumption is what makes cumulative acks sound; a transport
//! with mid-stream loss would ack past never-delivered frames.
//!
//! The model mirrors the reactor exactly: a [`SendWindow`] fed from a
//! FIFO queue (requeued in order on reconnect), frames and acks in
//! flight on a lossy in-order wire, a per-connection [`RecvWindow`] on
//! the receiving side, and — crucially — the persistent hop-key journal
//! dedup that suppresses *cross*-connection retries, which seq numbers
//! alone cannot (they restart at 1 on every connection).

use std::collections::{HashSet, VecDeque};

use proptest::prelude::*;
use tacoma_transport::{RecvWindow, SendWindow};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue a fresh frame on the sender.
    Send,
    /// The receiver takes the next frame off the wire.
    DeliverFrame,
    /// The sender takes the next ack off the wire.
    DeliverAck,
    /// The network starves the sender of the next ack (the ack is
    /// cumulative, so a later one covers it — this models delay-driven
    /// timeout retransmits, not TCP loss).
    DropAck,
    /// Sender ack-timeout: retransmit everything unacked.
    Timeout,
    /// Connection torn down: both wire directions are lost, the sender
    /// requeues its window, the receiver starts a fresh seq space.
    Reconnect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof is unweighted; repetition biases the mix
    // toward forward progress so runs exercise deep windows.
    prop_oneof![
        Just(Op::Send),
        Just(Op::Send),
        Just(Op::Send),
        Just(Op::Send),
        Just(Op::DeliverFrame),
        Just(Op::DeliverFrame),
        Just(Op::DeliverFrame),
        Just(Op::DeliverFrame),
        Just(Op::DeliverAck),
        Just(Op::DeliverAck),
        Just(Op::DeliverAck),
        Just(Op::DropAck),
        Just(Op::Timeout),
        Just(Op::Reconnect),
    ]
}

struct Model {
    window: SendWindow<u32>,
    queue: VecDeque<u32>,
    next_id: u32,
    /// Frames in flight sender → receiver (in order, as on TCP).
    wire: VecDeque<(u64, u32)>,
    /// Acks in flight receiver → sender.
    acks: VecDeque<u64>,
    recv: RecvWindow,
    /// The durable hop-key dedup (the journal's `pre_ack` role).
    journal: HashSet<u32>,
    /// Every id the forward hook actually executed, in order.
    forwarded: Vec<u32>,
    /// Every id whose send completed (released by a cumulative ack).
    completed: Vec<u32>,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            window: SendWindow::new(capacity),
            queue: VecDeque::new(),
            next_id: 0,
            wire: VecDeque::new(),
            acks: VecDeque::new(),
            recv: RecvWindow::new(),
            journal: HashSet::new(),
            forwarded: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// As the reactor does after every command drain: move queued work
    /// into the window, emitting a wire frame per admitted item.
    fn refill(&mut self) {
        while self.window.has_room() && !self.queue.is_empty() {
            let id = self.queue.pop_front().expect("checked non-empty");
            let seq = self.window.push(id);
            self.wire.push_back((seq, id));
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Send => {
                self.queue.push_back(self.next_id);
                self.next_id += 1;
                self.refill();
            }
            Op::DeliverFrame => {
                if let Some((seq, id)) = self.wire.pop_front() {
                    if self.recv.accept(seq) && self.journal.insert(id) {
                        self.forwarded.push(id);
                    }
                    // Always ack — even duplicates — so the sender
                    // stops retrying; cumulative, so it covers
                    // everything accepted so far.
                    self.acks.push_back(self.recv.ack_seq());
                }
            }
            Op::DeliverAck => {
                if let Some(seq) = self.acks.pop_front() {
                    self.completed.extend(self.window.ack(seq));
                    self.refill();
                }
            }
            Op::DropAck => {
                self.acks.pop_front();
            }
            Op::Timeout => {
                for (seq, id) in self.window.unacked() {
                    self.wire.push_back((seq, *id));
                }
            }
            Op::Reconnect => {
                self.wire.clear();
                self.acks.clear();
                let inflight = self.window.reset();
                for id in inflight.into_iter().rev() {
                    self.queue.push_front(id);
                }
                self.recv = RecvWindow::new();
                self.refill();
            }
        }
    }

    /// Everything the sender still holds responsibility for.
    fn outstanding(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.queue.iter().copied().collect();
        ids.extend(self.window.unacked().map(|(_, id)| *id));
        ids
    }

    fn check_invariants(&self) {
        // Exactly-once into the forward hook.
        let unique: HashSet<u32> = self.forwarded.iter().copied().collect();
        prop_assert_eq!(
            unique.len(),
            self.forwarded.len(),
            "forward hook ran twice for some frame"
        );
        // No completion duplication on the sender either.
        let unique: HashSet<u32> = self.completed.iter().copied().collect();
        prop_assert_eq!(unique.len(), self.completed.len(), "a send completed twice");
        // Conservation: every frame is completed or still tracked.
        let mut all: Vec<u32> = self.completed.clone();
        all.extend(self.outstanding());
        all.sort_unstable();
        prop_assert_eq!(
            all,
            (0..self.next_id).collect::<Vec<u32>>(),
            "an unacked frame vanished"
        );
    }
}

proptest! {
    /// Under any interleaving, the invariants hold at every step, and
    /// once the network behaves (a clean drain), every frame completes
    /// exactly once on both sides.
    #[test]
    fn window_never_double_delivers_or_loses(
        capacity in 1usize..9,
        ops in prop::collection::vec(arb_op(), 0..250),
    ) {
        let mut m = Model::new(capacity);
        for op in ops {
            m.apply(op);
            m.check_invariants();
        }
        // Drain: retransmit and deliver until everything lands.
        let mut rounds = 0;
        while !(m.queue.is_empty() && m.window.is_empty()) {
            m.apply(Op::Timeout);
            while !m.wire.is_empty() {
                m.apply(Op::DeliverFrame);
            }
            while !m.acks.is_empty() {
                m.apply(Op::DeliverAck);
            }
            m.check_invariants();
            rounds += 1;
            prop_assert!(rounds < 10_000, "drain did not converge");
        }
        let mut completed = m.completed.clone();
        completed.sort_unstable();
        prop_assert_eq!(completed, (0..m.next_id).collect::<Vec<u32>>());
        let mut forwarded = m.forwarded.clone();
        forwarded.sort_unstable();
        prop_assert_eq!(forwarded, (0..m.next_id).collect::<Vec<u32>>());
    }

    /// The sender window is total over arbitrary (even hostile) ack
    /// sequences: no panic, no double release.
    #[test]
    fn send_window_is_total_over_hostile_acks(
        capacity in 1usize..9,
        acks in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut w = SendWindow::new(capacity);
        let mut pushed = 0u32;
        let mut released = 0usize;
        for ack in acks {
            while w.has_room() && pushed < 32 {
                w.push(pushed);
                pushed += 1;
            }
            released += w.ack(ack).len();
            prop_assert!(released <= pushed as usize);
        }
    }
}
