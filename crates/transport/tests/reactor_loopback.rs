//! The sharded reactor against a real listener on loopback: pipelined
//! completions, blocking fallback, bounded backpressure, restart
//! recovery, and the WAN-delay coalescing the bench gate relies on.

use std::net::TcpListener as StdTcpListener;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tacoma_transport::{
    BackoffPolicy, Completion, ConnectConfig, ListenerConfig, ReactorConfig, ReactorTransport,
    Transport, TransportError, TransportListener,
};

fn fast_reactor(local_host: &str) -> ReactorTransport {
    ReactorTransport::new(ReactorConfig {
        connect: ConnectConfig {
            local_host: local_host.to_owned(),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            ..ConnectConfig::default()
        },
        shards: 2,
        ack_window: 16,
        queue_capacity: 1024,
        ack_timeout: Duration::from_millis(300),
        retry_budget: Duration::from_secs(5),
        backoff: BackoffPolicy::fast(),
        max_connectors: 16,
    })
}

/// Drains completions until `want` have arrived or the deadline hits.
fn collect_completions(transport: &ReactorTransport, want: usize) -> Vec<Completion> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = Vec::new();
    while got.len() < want && Instant::now() < deadline {
        got.extend(transport.drain_completions());
        std::thread::sleep(Duration::from_millis(2));
    }
    got
}

#[test]
fn pipelined_sends_complete_and_arrive() {
    let listener =
        TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("beta")).unwrap();
    let port = listener.local_addr().port();
    let transport = fast_reactor("alpha");

    for token in 0..50u64 {
        transport
            .send_nowait(
                "alpha",
                "127.0.0.1",
                port,
                Bytes::from(format!("payload-{token}").into_bytes()),
                token,
            )
            .unwrap();
    }

    let completions = collect_completions(&transport, 50);
    assert_eq!(completions.len(), 50);
    let mut tokens: Vec<u64> = completions
        .iter()
        .map(|c| {
            assert!(c.result.is_ok(), "token {} failed: {:?}", c.token, c.result);
            c.token
        })
        .collect();
    tokens.sort_unstable();
    assert_eq!(tokens, (0..50).collect::<Vec<_>>());

    let mut payloads = Vec::new();
    for _ in 0..50 {
        let inbound = listener
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        assert_eq!(inbound.from_host, "alpha");
        payloads.push(String::from_utf8(inbound.payload.to_vec()).unwrap());
    }
    payloads.sort();
    let mut expected: Vec<String> = (0..50).map(|t| format!("payload-{t}")).collect();
    expected.sort();
    assert_eq!(payloads, expected);

    let stats = transport.stats();
    assert_eq!(stats.frames_sent, 50);
    assert!(stats.acks_received >= 1);
    assert_eq!(stats.queue_depth, 0, "everything drained");
    assert!(stats.queue_high_water >= 1);
    assert_eq!(stats.retry_timeouts, 0);
}

#[test]
fn blocking_send_rides_the_reactor() {
    let listener =
        TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("beta")).unwrap();
    let port = listener.local_addr().port();
    let transport = fast_reactor("alpha");

    transport
        .send("alpha", "127.0.0.1", port, b"blocking path")
        .unwrap();
    let inbound = listener
        .incoming()
        .recv_timeout(Duration::from_secs(5))
        .unwrap();
    assert_eq!(&inbound.payload[..], b"blocking path");
    assert_eq!(transport.stats().frames_sent, 1);
}

#[test]
fn full_queue_refuses_with_backpressure() {
    // A port nothing listens on: the queue can only fill.
    let port = {
        let probe = StdTcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let transport = ReactorTransport::new(ReactorConfig {
        queue_capacity: 4,
        retry_budget: Duration::from_secs(30),
        ..ReactorConfig::default()
    });

    for token in 0..4u64 {
        transport
            .send_nowait("alpha", "127.0.0.1", port, Bytes::from(vec![1u8]), token)
            .unwrap();
    }
    let err = transport
        .send_nowait("alpha", "127.0.0.1", port, Bytes::from(vec![1u8]), 99)
        .unwrap_err();
    assert!(
        matches!(err, TransportError::QueueFull { capacity: 4, .. }),
        "got {err:?}"
    );

    let stats = transport.stats();
    assert!(stats.queue_drops >= 1);
    assert!(stats.queue_high_water >= 4);
}

#[test]
fn listener_restart_redelivers_the_window() {
    let listener =
        TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("beta")).unwrap();
    let addr = listener.local_addr();
    let port = addr.port();
    let transport = fast_reactor("alpha");

    // Warm batch over the first connection.
    for token in 0..5u64 {
        transport
            .send_nowait(
                "alpha",
                "127.0.0.1",
                port,
                Bytes::from(format!("warm-{token}").into_bytes()),
                token,
            )
            .unwrap();
    }
    assert_eq!(collect_completions(&transport, 5).len(), 5);
    let mut seen = Vec::new();
    for _ in 0..5 {
        let inbound = listener
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .unwrap();
        seen.push(String::from_utf8(inbound.payload.to_vec()).unwrap());
    }

    // Kill the receiver; the next batch queues and rides the reconnect
    // backoff until the listener returns on the same port.
    drop(listener);
    for token in 5..10u64 {
        transport
            .send_nowait(
                "alpha",
                "127.0.0.1",
                port,
                Bytes::from(format!("cold-{token}").into_bytes()),
                token,
            )
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let listener = TransportListener::bind(
        &format!("127.0.0.1:{port}"),
        ListenerConfig::trusting("beta"),
    )
    .expect("rebind the same port");

    let completions = collect_completions(&transport, 5);
    assert_eq!(completions.len(), 5);
    for c in &completions {
        assert!(c.result.is_ok(), "token {} failed: {:?}", c.token, c.result);
    }
    // Transport-level redelivery may duplicate across the crash (dedup
    // is the journal layer's job) — but nothing may be lost.
    let deadline = Instant::now() + Duration::from_secs(5);
    while seen.len() < 10 && Instant::now() < deadline {
        if let Ok(inbound) = listener.incoming().recv_timeout(Duration::from_millis(100)) {
            seen.push(String::from_utf8(inbound.payload.to_vec()).unwrap());
        }
    }
    for token in 0..10 {
        let label = if token < 5 {
            format!("warm-{token}")
        } else {
            format!("cold-{token}")
        };
        assert!(seen.contains(&label), "{label} lost across the restart");
    }
    assert!(transport.stats().reconnects >= 1);
}

#[test]
fn delayed_acks_coalesce_and_pipelining_beats_stop_and_wait() {
    let mut config = ListenerConfig::trusting("beta");
    config.ack_delay = Some(Duration::from_millis(30));
    let listener = TransportListener::bind("127.0.0.1:0", config).unwrap();
    let port = listener.local_addr().port();
    let transport = fast_reactor("alpha");

    let start = Instant::now();
    for token in 0..16u64 {
        transport
            .send_nowait(
                "alpha",
                "127.0.0.1",
                port,
                Bytes::from(vec![7u8; 64]),
                token,
            )
            .unwrap();
    }
    let completions = collect_completions(&transport, 16);
    let elapsed = start.elapsed();
    assert_eq!(completions.len(), 16);
    for c in &completions {
        assert!(c.result.is_ok(), "token {} failed: {:?}", c.token, c.result);
    }

    // Stop-and-wait would pay the 30 ms ack delay 16 times (480 ms);
    // the pipelined window absorbs it in a handful of coalesced acks.
    assert!(
        elapsed < Duration::from_millis(240),
        "pipelining should beat half the stop-and-wait floor, took {elapsed:?}"
    );
    let stats = transport.stats();
    assert_eq!(stats.frames_sent, 16);
    assert!(
        stats.acks_received < 16,
        "delayed acks should coalesce, got {}",
        stats.acks_received
    );
}
