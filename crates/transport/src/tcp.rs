//! [`TcpTransport`]: the real-socket [`Transport`] backend — a per-peer
//! connection pool with reconnect, and retry with exponential backoff.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use parking_lot::Mutex;

use crate::conn::{ConnectConfig, Connection};
use crate::{BackoffPolicy, Transport, TransportCounters, TransportError, TransportStats};

/// How many idle connections to keep per peer.
const POOL_PER_PEER: usize = 2;

/// Configuration for a [`TcpTransport`].
#[derive(Debug, Clone, Default)]
pub struct TcpConfig {
    /// Connection-level settings (local host name, keyring, limits,
    /// timeouts).
    pub connect: ConnectConfig,
    /// Retry pacing for one logical send.
    pub backoff: BackoffPolicy,
}

/// The TCP backend: resolves peers, pools connections, retries with
/// backoff, and reports when a message is truly undeliverable so the
/// firewall can park it instead of dropping it.
#[derive(Debug)]
pub struct TcpTransport {
    config: TcpConfig,
    /// Explicit peer table: host name → socket address. Hosts not listed
    /// fall back to `host:port` resolution.
    peers: Mutex<HashMap<String, String>>,
    /// Idle connections, per resolved address.
    pool: Mutex<HashMap<String, Vec<Connection>>>,
    counters: TransportCounters,
    nonce: AtomicU64,
}

impl TcpTransport {
    /// A transport with the given configuration.
    pub fn new(config: TcpConfig) -> Self {
        // Nonce freshness: wall-clock seed, monotonic after that.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(1, |d| d.as_nanos() as u64);
        TcpTransport {
            config,
            peers: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
            counters: TransportCounters::new(),
            nonce: AtomicU64::new(seed | 1),
        }
    }

    /// Maps a firewall host name to a socket address (`"127.0.0.1:7001"`).
    pub fn add_peer(&self, host: impl Into<String>, addr: impl Into<String>) {
        self.peers.lock().insert(host.into(), addr.into());
    }

    /// The shared counters (also used by tests).
    pub fn counters(&self) -> TransportCounters {
        self.counters.clone()
    }

    fn resolve(&self, to_host: &str, to_port: u16) -> String {
        self.peers
            .lock()
            .get(to_host)
            .cloned()
            .unwrap_or_else(|| format!("{to_host}:{to_port}"))
    }

    fn checkout(&self, addr: &str) -> Option<Connection> {
        self.pool.lock().get_mut(addr).and_then(Vec::pop)
    }

    fn checkin(&self, addr: &str, conn: Connection) {
        let mut pool = self.pool.lock();
        let idle = pool.entry(addr.to_owned()).or_default();
        if idle.len() < POOL_PER_PEER {
            idle.push(conn);
        }
        // else: drop — the socket closes, the peer's handler exits.
    }

    fn fresh_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::Relaxed)
    }

    /// Seed for deterministic jitter, derived from the destination.
    fn jitter_seed(addr: &str) -> u64 {
        addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }
}

impl Transport for TcpTransport {
    fn send(
        &self,
        _from: &str,
        to_host: &str,
        to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let addr = self.resolve(to_host, to_port);
        let seed = Self::jitter_seed(&addr);
        let mut last = TransportError::Unreachable {
            host: to_host.to_owned(),
            detail: "no attempt made".to_owned(),
        };

        for attempt in 1..=self.config.backoff.max_attempts {
            if attempt > 1 {
                self.counters.add_reconnect();
                thread::sleep(self.config.backoff.delay(attempt - 1, seed));
            }
            // Reuse an idle pooled connection or establish a fresh one.
            let pooled = self.checkout(&addr);
            let mut conn = match pooled {
                Some(c) => c,
                None => {
                    match Connection::establish(&addr, self.fresh_nonce(), &self.config.connect) {
                        Ok(c) => {
                            self.counters.add_connect();
                            c
                        }
                        Err(e) => {
                            if matches!(e, TransportError::HandshakeFailed { .. }) {
                                self.counters.add_handshake_failure();
                                // The peer will keep refusing us; retrying
                                // with the same credentials cannot help.
                                self.counters.add_retry_timeout();
                                return Err(e);
                            }
                            last = e;
                            continue;
                        }
                    }
                }
            };
            match conn.send_payload(payload) {
                Ok(()) => {
                    self.counters.add_sent(payload.len() as u64);
                    self.checkin(&addr, conn);
                    return Ok(());
                }
                Err(e) => {
                    // The connection is poisoned; drop it and retry on a
                    // fresh one after the backoff delay.
                    last = e;
                }
            }
        }
        self.counters.add_retry_timeout();
        Err(TransportError::RetriesExhausted {
            host: to_host.to_owned(),
            attempts: self.config.backoff.max_attempts,
            last: last.to_string(),
        })
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}
