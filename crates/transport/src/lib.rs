//! Real wire transport for TACOMA firewalls.
//!
//! TAX 2.0's firewalls mediate every agent transfer between hosts; until
//! now this repository only exchanged briefcases over the in-process
//! simulated network. This crate adds the real thing: a length-prefixed
//! frame codec over TCP, an authenticated HELLO handshake tied into the
//! security layer's principals and trust store, a per-peer connection
//! pool with reconnect, and retry with exponential backoff — behind a
//! [`Transport`] trait that the simnet bus also implements, so the
//! firewall routes identically whether its peers share a process or a
//! network.
//!
//! Layers, bottom up:
//!
//! - [`frame`]: the `TAXF` frame codec (magic, version, kind, u32-LE
//!   length, payload), with declared-length checks before allocation;
//!   pipelined frames carry an 8-byte seq and are acked cumulatively.
//! - [`handshake`]: the HELLO/WELCOME/REJECT exchange, optionally MAC-
//!   signed and verified against a [`tacoma_security::TrustStore`].
//! - [`conn`]: one handshaken connection — Briefcase frames are acked,
//!   Stats frames answered.
//! - [`window`]: the pipelined ack-window protocol state machines.
//! - [`reactor`]: the sharded nonblocking client backend — pipelined
//!   windows, zero-copy vectored writes, bounded backpressure.
//! - [`tcp`] / [`listener`]: the legacy blocking client pool and the
//!   (sharded, nonblocking) server side.
//! - [`sim`]: the same [`Transport`] trait over the simulated network.
//! - [`backoff`] / [`stats`]: retry pacing and shared counters.

pub mod backoff;
pub mod conn;
pub mod error;
pub mod frame;
pub mod handshake;
pub mod listener;
pub mod reactor;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod traits;
pub mod window;

pub use backoff::BackoffPolicy;
pub use conn::{ConnectConfig, Connection};
pub use error::TransportError;
pub use frame::{
    frame_header, parse_ack_seq, split_seq, write_frame_vectored, Frame, FrameKind, FrameLimits,
    FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION,
};
pub use handshake::{build_hello, build_welcome, parse_welcome, verify_hello, HelloInfo};
pub use listener::{Inbound, ListenerConfig, PreAckHook, TransportListener};
pub use reactor::{ReactorConfig, ReactorTransport};
pub use sim::SimTransport;
pub use stats::{TransportCounters, TransportStats};
pub use tcp::{TcpConfig, TcpTransport};
pub use traits::{Completion, Transport};
pub use window::{RecvWindow, SendWindow};
