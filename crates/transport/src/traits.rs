//! The [`Transport`] abstraction: how a firewall ships an encoded message
//! to a peer firewall, independent of whether the wire is a real TCP
//! socket or the in-process simulated network.

use std::fmt;

use crate::{TransportError, TransportStats};

/// A delivery fabric between firewalls.
///
/// Implementations ship opaque payloads (encoded firewall messages) from
/// the firewall on `from` to the firewall serving `to_host:to_port`. The
/// call is synchronous: `Ok(())` means the peer acknowledged receipt (TCP)
/// or the simulated network accepted the envelope (simnet). Errors are
/// final from the transport's point of view — internal retry/backoff has
/// already run — so the caller decides whether to park the message.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Ships `payload` to the firewall at `to_host:to_port`.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] after the transport's own retry budget is
    /// exhausted (TCP) or the simulated network refuses the transfer.
    fn send(
        &self,
        from: &str,
        to_host: &str,
        to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError>;

    /// Counter snapshot for this transport instance.
    fn stats(&self) -> TransportStats;

    /// Short backend name for logs and stats lines (`"tcp"`, `"simnet"`).
    fn kind(&self) -> &'static str;
}
