//! The [`Transport`] abstraction: how a firewall ships an encoded message
//! to a peer firewall, independent of whether the wire is a real TCP
//! socket or the in-process simulated network.

use std::fmt;

use bytes::Bytes;

use crate::{TransportError, TransportStats};

/// The outcome of one [`Transport::send_nowait`] call, reported later by
/// [`Transport::drain_completions`].
#[derive(Debug, Clone)]
pub struct Completion {
    /// The caller-chosen token passed to `send_nowait`.
    pub token: u64,
    /// `Ok(())` once the peer acknowledged the frame; an error after the
    /// transport's retry budget gave up on it.
    pub result: Result<(), TransportError>,
}

/// A delivery fabric between firewalls.
///
/// Implementations ship opaque payloads (encoded firewall messages) from
/// the firewall on `from` to the firewall serving `to_host:to_port`. The
/// call is synchronous: `Ok(())` means the peer acknowledged receipt (TCP)
/// or the simulated network accepted the envelope (simnet). Errors are
/// final from the transport's point of view — internal retry/backoff has
/// already run — so the caller decides whether to park the message.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Ships `payload` to the firewall at `to_host:to_port`.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] after the transport's own retry budget is
    /// exhausted (TCP) or the simulated network refuses the transfer.
    fn send(
        &self,
        from: &str,
        to_host: &str,
        to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError>;

    /// Counter snapshot for this transport instance.
    fn stats(&self) -> TransportStats;

    /// Short backend name for logs and stats lines (`"tcp"`, `"simnet"`).
    fn kind(&self) -> &'static str;

    /// Whether this transport implements the pipelined nonblocking path
    /// ([`Transport::send_nowait`] / [`Transport::drain_completions`]).
    /// Backends that don't (simnet, legacy pooled TCP) keep the default
    /// `false` and callers stay on the blocking [`Transport::send`].
    fn supports_nowait(&self) -> bool {
        false
    }

    /// Enqueues `payload` for pipelined delivery to `to_host:to_port`
    /// without waiting for the peer's acknowledgement. The outcome
    /// arrives later through [`Transport::drain_completions`], tagged
    /// with `token`.
    ///
    /// The payload is taken as [`Bytes`] so a briefcase's cached wire
    /// encoding travels to the socket without being copied.
    ///
    /// # Errors
    ///
    /// [`TransportError::QueueFull`] when the peer's bounded outbound
    /// queue is at capacity (nothing was enqueued — backpressure), or
    /// any immediate refusal. Wire failures are *not* reported here;
    /// they surface as failed completions.
    fn send_nowait(
        &self,
        from: &str,
        to_host: &str,
        to_port: u16,
        payload: Bytes,
        token: u64,
    ) -> Result<(), TransportError> {
        let _ = (from, to_host, to_port, payload, token);
        Err(TransportError::Io {
            detail: format!("{} transport has no nonblocking send path", self.kind()),
        })
    }

    /// Collects every finished [`Transport::send_nowait`] outcome that
    /// has accumulated since the last drain. Never blocks.
    fn drain_completions(&self) -> Vec<Completion> {
        Vec::new()
    }
}
