//! One established, handshaken TCP connection to a peer firewall.

use std::net::TcpStream;
use std::time::Duration;

use tacoma_security::Keyring;

use crate::{build_hello, parse_welcome, Frame, FrameKind, FrameLimits, TransportError};

/// Client-side connection settings.
#[derive(Debug, Clone)]
pub struct ConnectConfig {
    /// Host name this side speaks as (`HELLO:HOST`).
    pub local_host: String,
    /// Signs the HELLO when present; unsigned otherwise.
    pub keyring: Option<Keyring>,
    /// Receive-side frame limits.
    pub limits: FrameLimits,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-frame read/write timeout once connected.
    pub io_timeout: Duration,
}

impl Default for ConnectConfig {
    fn default() -> Self {
        ConnectConfig {
            local_host: "client".to_owned(),
            keyring: None,
            limits: FrameLimits::default(),
            connect_timeout: Duration::from_secs(3),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A live connection that has completed the HELLO exchange.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    limits: FrameLimits,
    peer_host: String,
}

impl Connection {
    /// Connects to `addr`, performs the HELLO exchange, and returns the
    /// ready connection.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`TransportError::HandshakeFailed`] when the peer
    /// rejects us.
    pub fn establish(
        addr: &str,
        nonce: u64,
        config: &ConnectConfig,
    ) -> Result<Self, TransportError> {
        use std::net::ToSocketAddrs;
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| TransportError::Unreachable {
                host: addr.to_owned(),
                detail: e.to_string(),
            })?
            .next()
            .ok_or_else(|| TransportError::Unreachable {
                host: addr.to_owned(),
                detail: "no address resolved".to_owned(),
            })?;
        let stream = TcpStream::connect_timeout(&resolved, config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.io_timeout))?;
        stream.set_write_timeout(Some(config.io_timeout))?;

        let mut conn = Connection {
            stream,
            limits: config.limits,
            peer_host: String::new(),
        };
        let hello = build_hello(&config.local_host, config.keyring.as_ref(), nonce);
        conn.write(&Frame::new(FrameKind::Hello, hello))?;
        let reply = conn.read()?;
        match reply.kind {
            FrameKind::Welcome => {
                conn.peer_host = parse_welcome(&reply.payload)?;
                Ok(conn)
            }
            FrameKind::Reject => Err(TransportError::HandshakeFailed {
                reason: String::from_utf8_lossy(&reply.payload).into_owned(),
            }),
            other => Err(TransportError::BadFrame {
                detail: format!("expected Welcome/Reject, got {other:?}"),
            }),
        }
    }

    /// The host name the peer announced in its WELCOME.
    pub fn peer_host(&self) -> &str {
        &self.peer_host
    }

    /// Consumes the connection and hands back the underlying stream.
    ///
    /// The reactor uses this: connector threads run the blocking
    /// handshake through [`Connection::establish`], then the shard takes
    /// over the socket in nonblocking mode.
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Ships one Briefcase frame and waits for the peer's Ack.
    ///
    /// The payload is written with vectored I/O directly from the
    /// caller's buffer — a briefcase's cached `wire_bytes()` reaches the
    /// socket without being copied into a frame-encode buffer first.
    ///
    /// # Errors
    ///
    /// I/O errors (including ack timeout) or a protocol violation.
    pub fn send_payload(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        crate::frame::write_frame_vectored(&mut self.stream, FrameKind::Briefcase, payload)?;
        let reply = self.read()?;
        match reply.kind {
            FrameKind::Ack => Ok(()),
            FrameKind::Bye => Err(TransportError::Io {
                detail: "peer said goodbye instead of acking".to_owned(),
            }),
            other => Err(TransportError::BadFrame {
                detail: format!("expected Ack, got {other:?}"),
            }),
        }
    }

    /// Asks the peer for its stats line.
    ///
    /// # Errors
    ///
    /// I/O errors or a protocol violation.
    pub fn query_stats(&mut self) -> Result<String, TransportError> {
        self.write(&Frame::bare(FrameKind::Stats))?;
        let reply = self.read()?;
        match reply.kind {
            FrameKind::StatsReply => Ok(String::from_utf8_lossy(&reply.payload).into_owned()),
            other => Err(TransportError::BadFrame {
                detail: format!("expected StatsReply, got {other:?}"),
            }),
        }
    }

    /// Sends an orderly goodbye; errors are ignored (we are leaving).
    pub fn goodbye(mut self) {
        let _ = self.write(&Frame::bare(FrameKind::Bye));
    }

    fn write(&mut self, frame: &Frame) -> Result<(), TransportError> {
        frame.write_to(&mut self.stream)
    }

    fn read(&mut self) -> Result<Frame, TransportError> {
        Frame::read_from(&mut self.stream, &self.limits)
    }
}
