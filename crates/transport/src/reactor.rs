//! [`ReactorTransport`]: the sharded nonblocking TCP backend.
//!
//! The legacy [`TcpTransport`](crate::TcpTransport) is blocking and
//! stop-and-wait: one briefcase per round trip, one pooled connection
//! checked out per send. That caps per-peer throughput at `1/RTT` and
//! makes every concurrent peer cost a blocked thread. This module
//! replaces it with a small, fixed set of **shard threads** (peers
//! assigned by host hash), each owning many *nonblocking* sockets and
//! looping:
//!
//! 1. drain the shard's command channel (new sends, shutdown),
//! 2. apply finished connector handshakes,
//! 3. per peer: refill the pipelined [`SendWindow`], flush pending
//!    vectored writes, read acks, retransmit or reconnect on timeout.
//!
//! Between passes the shard parks on `recv_timeout` with an **adaptive
//! duty cycle**: ~1 ms while any socket has work in flight, decaying
//! exponentially toward a long nap when the fleet is idle, so a
//! thousand mostly-idle peers do not spin a CPU.
//!
//! Writes are **zero-copy and vectored**: a frame is `[header(+seq)
//! prefix, payload Bytes]` and multiple frames are coalesced into one
//! `write_vectored` syscall; the payload (typically a briefcase's cached
//! `wire_bytes()`) is never copied into an encode buffer.
//!
//! Backpressure is explicit: each peer has a **bounded outbound queue**
//! whose depth is checked synchronously at
//! [`Transport::send_nowait`] — a full queue refuses the enqueue with
//! [`TransportError::QueueFull`] rather than buffering without limit.
//! Depth, high-water mark, and drops surface in [`TransportStats`].
//!
//! `std::net` has no nonblocking connect, so connection establishment
//! (TCP connect + blocking HELLO handshake) runs on short-lived
//! **connector threads** — capped per shard — that hand the established
//! socket to the shard, which flips it nonblocking and takes over.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::frame::{parse_header, ParsedHeader};
use crate::traits::Completion;
use crate::window::SendWindow;
use crate::{
    frame_header, parse_ack_seq, BackoffPolicy, ConnectConfig, Connection, Frame, FrameKind,
    FrameLimits, Transport, TransportCounters, TransportError, TransportStats, FRAME_HEADER_LEN,
};

/// How many frames one `write_vectored` call may coalesce.
const MAX_COALESCED_FRAMES: usize = 32;

/// Idle park ceiling for a shard with nothing in flight.
const MAX_IDLE_PARK: Duration = Duration::from_millis(50);

/// Park time while any socket has work in flight.
const BUSY_PARK: Duration = Duration::from_millis(1);

/// FNV-1a over a host name: the shard assignment and jitter seed hash.
pub(crate) fn host_hash(host: &str) -> u64 {
    host.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

// ---------------------------------------------------------------------
// Incremental nonblocking frame reader (shared with the listener).
// ---------------------------------------------------------------------

/// Decodes frames from a nonblocking stream across partial reads: bytes
/// accumulate in a header buffer, then a payload `Vec` sized from the
/// declared length (bounds-checked first), which is adopted into
/// [`Bytes`] without copying when the frame completes.
#[derive(Debug)]
pub(crate) struct FrameReader {
    limits: FrameLimits,
    header: [u8; FRAME_HEADER_LEN],
    header_have: usize,
    partial: Option<PartialPayload>,
}

#[derive(Debug)]
struct PartialPayload {
    kind: FrameKind,
    buf: Vec<u8>,
    have: usize,
}

/// What [`FrameReader::pump`] saw on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadStatus {
    /// The stream is still open (it may simply have nothing to read).
    Open,
    /// The peer closed the stream.
    Closed,
}

impl FrameReader {
    pub(crate) fn new(limits: FrameLimits) -> Self {
        FrameReader {
            limits,
            header: [0u8; FRAME_HEADER_LEN],
            header_have: 0,
            partial: None,
        }
    }

    /// Reads as much as the socket will give without blocking,
    /// appending every completed frame to `out`.
    ///
    /// # Errors
    ///
    /// Fatal I/O errors and malformed/oversized headers; `WouldBlock`
    /// is not an error (it ends the pump with [`ReadStatus::Open`]).
    pub(crate) fn pump(
        &mut self,
        stream: &mut impl Read,
        out: &mut Vec<Frame>,
    ) -> Result<ReadStatus, TransportError> {
        loop {
            if let Some(partial) = &mut self.partial {
                if partial.have < partial.buf.len() {
                    match stream.read(&mut partial.buf[partial.have..]) {
                        Ok(0) => return Ok(ReadStatus::Closed),
                        Ok(n) => partial.have += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                if self.partial.as_ref().is_some_and(|p| p.have == p.buf.len()) {
                    let done = self.partial.take().expect("checked above");
                    self.header_have = 0;
                    out.push(Frame {
                        kind: done.kind,
                        // Adopted, not copied: the read buffer becomes
                        // the payload allocation.
                        payload: Bytes::from(done.buf),
                    });
                }
            } else {
                match stream.read(&mut self.header[self.header_have..]) {
                    Ok(0) => return Ok(ReadStatus::Closed),
                    Ok(n) => self.header_have += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
                if self.header_have == FRAME_HEADER_LEN {
                    let ParsedHeader { kind, len } = parse_header(&self.header, &self.limits)?;
                    self.partial = Some(PartialPayload {
                        kind,
                        buf: vec![0u8; len as usize],
                        have: 0,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Vectored write queue (shared with the listener).
// ---------------------------------------------------------------------

/// Outbound frames awaiting socket room. Each entry keeps its wire
/// prefix (`header`, plus the 8-byte seq for `BriefcaseSeq`) on the
/// stack and the payload as shared [`Bytes`]; flushing builds an
/// `IoSlice` batch over up to [`MAX_COALESCED_FRAMES`] frames so one
/// syscall carries many frames and zero payload copies.
#[derive(Debug, Default)]
pub(crate) struct WriteQueue {
    frames: VecDeque<PendingFrame>,
    /// Bytes of the front frame already written (partial-write cursor).
    cursor: usize,
}

#[derive(Debug)]
struct PendingFrame {
    prefix: [u8; FRAME_HEADER_LEN + 8],
    prefix_len: usize,
    payload: Bytes,
}

impl PendingFrame {
    fn wire_len(&self) -> usize {
        self.prefix_len + self.payload.len()
    }
}

impl WriteQueue {
    pub(crate) fn new() -> Self {
        WriteQueue::default()
    }

    /// Queues an ordinary frame.
    pub(crate) fn push_frame(&mut self, kind: FrameKind, payload: Bytes) {
        let mut prefix = [0u8; FRAME_HEADER_LEN + 8];
        prefix[..FRAME_HEADER_LEN].copy_from_slice(&frame_header(kind, payload.len() as u32));
        self.frames.push_back(PendingFrame {
            prefix,
            prefix_len: FRAME_HEADER_LEN,
            payload,
        });
    }

    /// Queues a `BriefcaseSeq` frame: the 8-byte seq lives in the wire
    /// prefix, so the message payload is shipped unmodified.
    pub(crate) fn push_seq_frame(&mut self, seq: u64, payload: Bytes) {
        let mut prefix = [0u8; FRAME_HEADER_LEN + 8];
        prefix[..FRAME_HEADER_LEN].copy_from_slice(&frame_header(
            FrameKind::BriefcaseSeq,
            (payload.len() + 8) as u32,
        ));
        prefix[FRAME_HEADER_LEN..].copy_from_slice(&seq.to_le_bytes());
        self.frames.push_back(PendingFrame {
            prefix,
            prefix_len: FRAME_HEADER_LEN + 8,
            payload,
        });
    }

    /// Queues an `AckSeq` frame for cumulative ack `seq`.
    pub(crate) fn push_ack_seq(&mut self, seq: u64) {
        self.push_frame(FrameKind::AckSeq, Bytes::from(seq.to_le_bytes().to_vec()));
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Writes as much as the socket will take without blocking.
    ///
    /// # Errors
    ///
    /// Fatal I/O errors (`WouldBlock` simply leaves the rest queued).
    pub(crate) fn flush(&mut self, stream: &mut impl Write) -> Result<(), TransportError> {
        while !self.frames.is_empty() {
            let written = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_COALESCED_FRAMES * 2);
                for (i, frame) in self.frames.iter().take(MAX_COALESCED_FRAMES).enumerate() {
                    let mut skip = if i == 0 { self.cursor } else { 0 };
                    if skip < frame.prefix_len {
                        slices.push(IoSlice::new(&frame.prefix[skip..frame.prefix_len]));
                        skip = 0;
                    } else {
                        skip -= frame.prefix_len;
                    }
                    if skip < frame.payload.len() {
                        slices.push(IoSlice::new(&frame.payload[skip..]));
                    }
                }
                match stream.write_vectored(&slices) {
                    Ok(0) => {
                        return Err(TransportError::Io {
                            detail: "socket write returned 0 bytes".to_owned(),
                        })
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            };
            self.advance(written);
        }
        Ok(())
    }

    fn advance(&mut self, mut n: usize) {
        n += self.cursor;
        self.cursor = 0;
        while let Some(front) = self.frames.front() {
            let len = front.wire_len();
            if n >= len {
                n -= len;
                self.frames.pop_front();
            } else {
                self.cursor = n;
                return;
            }
        }
        debug_assert_eq!(n, 0, "advanced past the queued bytes");
    }
}

// ---------------------------------------------------------------------
// Reactor configuration.
// ---------------------------------------------------------------------

/// Tunables for a [`ReactorTransport`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connection-level settings (local host name, keyring, limits,
    /// connect/handshake timeouts) — shared with the blocking path.
    pub connect: ConnectConfig,
    /// Shard thread count. Defaults to `available_parallelism`
    /// (clamped to 8): shards are about socket fan-out, not CPU.
    pub shards: usize,
    /// Pipelined ack window per peer: how many briefcases may be in
    /// flight before the sender waits for a cumulative ack.
    pub ack_window: usize,
    /// Bounded per-peer outbound queue capacity; a full queue refuses
    /// enqueues with [`TransportError::QueueFull`].
    pub queue_capacity: usize,
    /// With no ack progress for this long, the in-flight window is
    /// retransmitted from the last acked seq; a second silent interval
    /// tears the connection down for a reconnect.
    pub ack_timeout: Duration,
    /// Total time budget per frame, from enqueue to giving up
    /// ([`TransportError::RetriesExhausted`] completion).
    pub retry_budget: Duration,
    /// Reconnect pacing after connection failures.
    pub backoff: BackoffPolicy,
    /// Cap on concurrent connector (blocking handshake) threads per
    /// shard.
    pub max_connectors: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        let shards = thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        ReactorConfig {
            connect: ConnectConfig::default(),
            shards: shards.clamp(1, 8),
            ack_window: 32,
            queue_capacity: 1024,
            ack_timeout: Duration::from_secs(2),
            retry_budget: Duration::from_secs(8),
            backoff: BackoffPolicy::default(),
            max_connectors: 64,
        }
    }
}

// ---------------------------------------------------------------------
// Shard plumbing.
// ---------------------------------------------------------------------

/// One queued send, from enqueue to completion.
#[derive(Debug)]
struct Outbound {
    host: String,
    addr: String,
    payload: Bytes,
    token: u64,
    /// Present for blocking sends: woken directly instead of (and in
    /// addition to) the completion channel.
    notify: Option<Sender<Result<(), TransportError>>>,
    enqueued_at: Instant,
    depth: Arc<AtomicUsize>,
}

enum Command {
    Send(Outbound),
    Shutdown,
}

enum ConnectOutcome {
    Connected { host: String, stream: TcpStream },
    Failed { host: String, error: TransportError },
}

struct Established {
    stream: TcpStream,
    reader: FrameReader,
    writeq: WriteQueue,
}

struct PeerState {
    host: String,
    addr: String,
    queue: VecDeque<Outbound>,
    window: SendWindow<Outbound>,
    conn: Option<Established>,
    connecting: bool,
    had_connection: bool,
    attempt: u32,
    backoff_until: Option<Instant>,
    last_progress: Instant,
    retransmitted: bool,
}

impl PeerState {
    fn busy(&self) -> bool {
        self.connecting
            || !self.queue.is_empty()
            || !self.window.is_empty()
            || self.conn.as_ref().is_some_and(|c| c.writeq.has_pending())
    }
}

struct Shard {
    commands: Receiver<Command>,
    connect_results: Receiver<ConnectOutcome>,
    connect_tx: Sender<ConnectOutcome>,
    completions: Sender<Completion>,
    counters: TransportCounters,
    config: ReactorConfig,
    nonce: Arc<AtomicU64>,
    peers: HashMap<String, PeerState>,
    connectors_out: usize,
    frames_scratch: Vec<Frame>,
}

impl Shard {
    fn run(mut self) {
        let mut idle_park = BUSY_PARK;
        loop {
            let mut open = true;
            // 1. Drain queued commands without blocking.
            loop {
                match self.commands.try_recv() {
                    Ok(Command::Send(out)) => self.admit(out),
                    Ok(Command::Shutdown) | Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                    Err(TryRecvError::Empty) => break,
                }
            }
            // 2. Fold in finished connector handshakes.
            while let Ok(outcome) = self.connect_results.try_recv() {
                self.connectors_out = self.connectors_out.saturating_sub(1);
                self.apply_connect(outcome);
            }
            if !open {
                self.shutdown();
                return;
            }
            // 3. Progress every peer.
            let now = Instant::now();
            let hosts: Vec<String> = self.peers.keys().cloned().collect();
            for host in hosts {
                self.progress_peer(&host, now);
            }
            // 4. Park. Busy shards nap ~1 ms so sockets keep moving;
            //    idle shards decay toward a long park (adaptive duty
            //    cycle) and any command wakes them instantly.
            let busy = self.peers.values().any(PeerState::busy);
            idle_park = if busy {
                BUSY_PARK
            } else {
                (idle_park * 2).min(MAX_IDLE_PARK)
            };
            match self.commands.recv_timeout(idle_park) {
                Ok(Command::Send(out)) => self.admit(out),
                Ok(Command::Shutdown) => {
                    self.shutdown();
                    return;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.shutdown();
                    return;
                }
            }
        }
    }

    fn admit(&mut self, out: Outbound) {
        let peer = self
            .peers
            .entry(out.host.clone())
            .or_insert_with(|| PeerState {
                host: out.host.clone(),
                addr: out.addr.clone(),
                queue: VecDeque::new(),
                window: SendWindow::new(self.config.ack_window),
                conn: None,
                connecting: false,
                had_connection: false,
                attempt: 0,
                backoff_until: None,
                last_progress: Instant::now(),
                retransmitted: false,
            });
        peer.addr.clone_from(&out.addr);
        peer.queue.push_back(out);
    }

    // By value: completing a send ends the `Outbound`'s life — it must
    // not be requeued after its depth slot is released.
    #[allow(clippy::needless_pass_by_value)]
    fn complete(&self, out: Outbound, result: Result<(), TransportError>) {
        out.depth.fetch_sub(1, Ordering::Relaxed);
        self.counters.queue_shrank(1);
        if let Err(e) = &result {
            if matches!(e, TransportError::RetriesExhausted { .. }) {
                self.counters.add_retry_timeout();
            }
        } else {
            self.counters.add_sent(out.payload.len() as u64);
        }
        if let Some(notify) = &out.notify {
            let _ = notify.send(result.clone());
        }
        let _ = self.completions.send(Completion {
            token: out.token,
            result,
        });
    }

    fn apply_connect(&mut self, outcome: ConnectOutcome) {
        match outcome {
            ConnectOutcome::Connected { host, stream } => {
                let Some(peer) = self.peers.get_mut(&host) else {
                    return;
                };
                peer.connecting = false;
                if stream.set_nonblocking(true).is_err() {
                    self.fail_connect_attempt(&host, None);
                    return;
                }
                let _ = stream.set_read_timeout(None);
                let _ = stream.set_write_timeout(None);
                self.counters.add_connect();
                peer.had_connection = true;
                peer.attempt = 0;
                peer.backoff_until = None;
                peer.retransmitted = false;
                peer.last_progress = Instant::now();
                peer.conn = Some(Established {
                    stream,
                    reader: FrameReader::new(self.config.connect.limits),
                    writeq: WriteQueue::new(),
                });
            }
            ConnectOutcome::Failed { host, error } => {
                self.fail_connect_attempt(&host, Some(&error));
            }
        }
    }

    fn fail_connect_attempt(&mut self, host: &str, error: Option<&TransportError>) {
        let Some(peer) = self.peers.get_mut(host) else {
            return;
        };
        peer.connecting = false;
        peer.attempt += 1;
        let delay = self
            .config
            .backoff
            .delay(peer.attempt, host_hash(&peer.addr));
        peer.backoff_until = Some(Instant::now() + delay);
        if let Some(TransportError::HandshakeFailed { reason }) = error {
            // The peer will keep refusing these credentials; retrying
            // cannot help. Fail everything queued, fast.
            self.counters.add_handshake_failure();
            let reason = reason.clone();
            let drained: Vec<Outbound> = self
                .peers
                .get_mut(host)
                .map_or_else(Vec::new, |p| p.queue.drain(..).collect());
            for out in drained {
                self.complete(
                    out,
                    Err(TransportError::HandshakeFailed {
                        reason: reason.clone(),
                    }),
                );
            }
        }
    }

    fn progress_peer(&mut self, host: &str, now: Instant) {
        // Expire queued frames past their budget (oldest first — the
        // queue is FIFO by enqueue time).
        let mut expired = Vec::new();
        if let Some(peer) = self.peers.get_mut(host) {
            while peer
                .queue
                .front()
                .is_some_and(|o| now.duration_since(o.enqueued_at) > self.config.retry_budget)
            {
                expired.push(peer.queue.pop_front().expect("front checked"));
            }
        }
        for out in expired {
            let attempts = self.peers.get(host).map_or(1, |p| p.attempt.max(1));
            let host_name = out.host.clone();
            self.complete(
                out,
                Err(TransportError::RetriesExhausted {
                    host: host_name,
                    attempts,
                    last: "retry budget exhausted".to_owned(),
                }),
            );
        }

        let Some(peer) = self.peers.get_mut(host) else {
            return;
        };
        if peer.conn.is_none() {
            // Nothing to do unless there is work; otherwise start a
            // connector when the backoff window has passed.
            if peer.queue.is_empty() || peer.connecting {
                return;
            }
            if peer.backoff_until.is_some_and(|until| now < until) {
                return;
            }
            if self.connectors_out >= self.config.max_connectors {
                return;
            }
            peer.connecting = true;
            if peer.attempt > 0 || peer.had_connection {
                // Every attempt after the first — whether the peer was
                // never up or a live connection died — is a reconnect,
                // matching the legacy pool's accounting.
                self.counters.add_reconnect();
            }
            self.connectors_out += 1;
            let addr = peer.addr.clone();
            let host_name = peer.host.clone();
            let connect = self.config.connect.clone();
            let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
            let tx = self.connect_tx.clone();
            thread::spawn(move || {
                let outcome = match Connection::establish(&addr, nonce, &connect) {
                    Ok(conn) => ConnectOutcome::Connected {
                        host: host_name,
                        stream: conn.into_stream(),
                    },
                    Err(error) => ConnectOutcome::Failed {
                        host: host_name,
                        error,
                    },
                };
                let _ = tx.send(outcome);
            });
            return;
        }

        // Fill the window from the queue.
        {
            let Some(peer) = self.peers.get_mut(host) else {
                return;
            };
            while peer.window.has_room() && !peer.queue.is_empty() {
                let out = peer.queue.pop_front().expect("checked non-empty");
                let payload = out.payload.clone();
                let seq = peer.window.push(out);
                if let Some(conn) = peer.conn.as_mut() {
                    conn.writeq.push_seq_frame(seq, payload);
                }
            }
        }

        // Flush writes, then read acks.
        let mut disconnect = false;
        let mut released: Vec<Outbound> = Vec::new();
        {
            let Some(peer) = self.peers.get_mut(host) else {
                return;
            };
            let Some(conn) = peer.conn.as_mut() else {
                return;
            };
            if conn.writeq.flush(&mut conn.stream).is_err() {
                disconnect = true;
            }
            if !disconnect {
                self.frames_scratch.clear();
                match conn.reader.pump(&mut conn.stream, &mut self.frames_scratch) {
                    Ok(ReadStatus::Open) => {}
                    Ok(ReadStatus::Closed) | Err(_) => disconnect = true,
                }
                for frame in self.frames_scratch.drain(..) {
                    match frame.kind {
                        FrameKind::AckSeq => {
                            if let Ok(seq) = parse_ack_seq(&frame.payload) {
                                self.counters.add_ack_received();
                                released.extend(peer.window.ack(seq));
                                peer.last_progress = now;
                                peer.retransmitted = false;
                            } else {
                                disconnect = true;
                            }
                        }
                        FrameKind::Bye => disconnect = true,
                        // Anything else from a server is a protocol
                        // violation on this pipelined connection.
                        _ => disconnect = true,
                    }
                }
            }
            // Ack-timeout handling: retransmit once from the last acked
            // seq, then tear down and reconnect if still silent.
            if !disconnect
                && !peer.window.is_empty()
                && now.duration_since(peer.last_progress) > self.config.ack_timeout
            {
                if peer.retransmitted {
                    disconnect = true;
                } else if let Some(conn) = peer.conn.as_mut() {
                    let mut n = 0u64;
                    for (seq, out) in peer.window.unacked() {
                        conn.writeq.push_seq_frame(seq, out.payload.clone());
                        n += 1;
                    }
                    self.counters.add_retransmits(n);
                    peer.retransmitted = true;
                    peer.last_progress = now;
                }
            }
        }
        for out in released {
            self.complete(out, Ok(()));
        }
        if disconnect {
            self.disconnect_peer(host, now);
        }
    }

    /// Drops the peer's connection, requeues its in-flight frames ahead
    /// of newer work, and arms the reconnect backoff.
    fn disconnect_peer(&mut self, host: &str, now: Instant) {
        let Some(peer) = self.peers.get_mut(host) else {
            return;
        };
        peer.conn = None;
        peer.retransmitted = false;
        let inflight = peer.window.reset();
        for out in inflight.into_iter().rev() {
            peer.queue.push_front(out);
        }
        peer.attempt += 1;
        let delay = self
            .config
            .backoff
            .delay(peer.attempt, host_hash(&peer.addr));
        peer.backoff_until = Some(now + delay);
    }

    fn shutdown(&mut self) {
        let hosts: Vec<String> = self.peers.keys().cloned().collect();
        for host in hosts {
            let Some(mut peer) = self.peers.remove(&host) else {
                continue;
            };
            let mut pending: Vec<Outbound> = peer.window.reset();
            pending.extend(peer.queue.drain(..));
            for out in pending {
                self.complete(
                    out,
                    Err(TransportError::Io {
                        detail: "transport shut down".to_owned(),
                    }),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The public transport.
// ---------------------------------------------------------------------

/// The sharded nonblocking reactor backend (see the module docs).
///
/// Implements both [`Transport`] paths: the blocking [`Transport::send`]
/// enqueues and waits for its own completion, and the pipelined
/// [`Transport::send_nowait`] / [`Transport::drain_completions`] pair is
/// the fast path the firewall uses.
#[derive(Debug)]
pub struct ReactorTransport {
    config: ReactorConfig,
    shard_txs: Vec<Sender<Command>>,
    shard_threads: Mutex<Vec<JoinHandle<()>>>,
    completions_rx: Receiver<Completion>,
    counters: TransportCounters,
    /// Host name → socket address overrides, as in
    /// [`TcpTransport::add_peer`](crate::TcpTransport::add_peer).
    peers: Mutex<HashMap<String, String>>,
    /// Per-peer queue depth gauges, shared with the owning shard so
    /// [`Transport::send_nowait`] can refuse synchronously at capacity.
    depths: Mutex<HashMap<String, Arc<AtomicUsize>>>,
}

impl ReactorTransport {
    /// Starts the shard threads and returns the ready transport.
    pub fn new(config: ReactorConfig) -> Self {
        let shards = config.shards.max(1);
        let (completions_tx, completions_rx) = unbounded();
        let counters = TransportCounters::new();
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(1, |d| d.as_nanos() as u64);
        let nonce = Arc::new(AtomicU64::new(seed | 1));
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_threads = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded();
            let (connect_tx, connect_results) = unbounded();
            let shard = Shard {
                commands: rx,
                connect_results,
                connect_tx,
                completions: completions_tx.clone(),
                counters: counters.clone(),
                config: config.clone(),
                nonce: Arc::clone(&nonce),
                peers: HashMap::new(),
                connectors_out: 0,
                frames_scratch: Vec::new(),
            };
            shard_txs.push(tx);
            shard_threads.push(thread::spawn(move || shard.run()));
        }
        ReactorTransport {
            config,
            shard_txs,
            shard_threads: Mutex::new(shard_threads),
            completions_rx,
            counters,
            peers: Mutex::new(HashMap::new()),
            depths: Mutex::new(HashMap::new()),
        }
    }

    /// Maps a firewall host name to a socket address
    /// (`"127.0.0.1:7001"`); unmapped hosts resolve as `host:port`.
    pub fn add_peer(&self, host: impl Into<String>, addr: impl Into<String>) {
        self.peers.lock().insert(host.into(), addr.into());
    }

    /// The shared counters (also used by tests).
    pub fn counters(&self) -> TransportCounters {
        self.counters.clone()
    }

    fn resolve(&self, to_host: &str, to_port: u16) -> String {
        self.peers
            .lock()
            .get(to_host)
            .cloned()
            .unwrap_or_else(|| format!("{to_host}:{to_port}"))
    }

    fn depth_gauge(&self, host: &str) -> Arc<AtomicUsize> {
        Arc::clone(
            self.depths
                .lock()
                .entry(host.to_owned())
                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
        )
    }

    /// Reserves one slot in the peer's bounded queue, or refuses.
    fn reserve_slot(&self, host: &str, depth: &AtomicUsize) -> Result<usize, TransportError> {
        let capacity = self.config.queue_capacity;
        let mut current = depth.load(Ordering::Relaxed);
        loop {
            if current >= capacity {
                self.counters.add_queue_drop();
                return Err(TransportError::QueueFull {
                    host: host.to_owned(),
                    capacity,
                });
            }
            match depth.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(current + 1),
                Err(seen) => current = seen,
            }
        }
    }

    fn enqueue(
        &self,
        to_host: &str,
        to_port: u16,
        payload: Bytes,
        token: u64,
        notify: Option<Sender<Result<(), TransportError>>>,
    ) -> Result<(), TransportError> {
        let depth = self.depth_gauge(to_host);
        let new_depth = self.reserve_slot(to_host, &depth)?;
        self.counters.queue_grew(new_depth as u64);
        let addr = self.resolve(to_host, to_port);
        let shard = (host_hash(to_host) as usize) % self.shard_txs.len();
        let out = Outbound {
            host: to_host.to_owned(),
            addr,
            payload,
            token,
            notify,
            enqueued_at: Instant::now(),
            depth: Arc::clone(&depth),
        };
        if self.shard_txs[shard].send(Command::Send(out)).is_err() {
            depth.fetch_sub(1, Ordering::Relaxed);
            self.counters.queue_shrank(1);
            return Err(TransportError::Io {
                detail: "transport shut down".to_owned(),
            });
        }
        Ok(())
    }
}

impl Transport for ReactorTransport {
    fn send(
        &self,
        _from: &str,
        to_host: &str,
        to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let (tx, rx) = unbounded();
        let deadline = Instant::now() + self.config.retry_budget + self.config.ack_timeout;
        let payload = Bytes::copy_from_slice(payload);
        // A full queue is backpressure, not failure: wait for room
        // within the budget.
        loop {
            match self.enqueue(to_host, to_port, payload.clone(), 0, Some(tx.clone())) {
                Ok(()) => break,
                Err(TransportError::QueueFull { .. }) if Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(result) => result,
            Err(_) => Err(TransportError::RetriesExhausted {
                host: to_host.to_owned(),
                attempts: 1,
                last: "timed out waiting for completion".to_owned(),
            }),
        }
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    fn kind(&self) -> &'static str {
        "reactor"
    }

    fn supports_nowait(&self) -> bool {
        true
    }

    fn send_nowait(
        &self,
        _from: &str,
        to_host: &str,
        to_port: u16,
        payload: Bytes,
        token: u64,
    ) -> Result<(), TransportError> {
        self.enqueue(to_host, to_port, payload, token, None)
    }

    fn drain_completions(&self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Ok(c) = self.completions_rx.try_recv() {
            out.push(c);
        }
        out
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        for tx in &self.shard_txs {
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.shard_threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_queue_coalesces_and_survives_partial_writes() {
        let mut q = WriteQueue::new();
        q.push_seq_frame(1, Bytes::from(vec![0xAA; 100]));
        q.push_frame(FrameKind::Briefcase, Bytes::from(vec![0xBB; 50]));
        q.push_ack_seq(7);

        // A writer that accepts 13 bytes at a time forces partial-write
        // cursor handling across prefix and payload boundaries.
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(13);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut sink = Dribble(Vec::new());
        q.flush(&mut sink).unwrap();
        assert!(!q.has_pending());

        // The byte stream decodes back into the three frames.
        let limits = FrameLimits::default();
        let mut rest: &[u8] = &sink.0;
        let (f1, used) = Frame::decode(rest, &limits).unwrap();
        rest = &rest[used..];
        let (f2, used) = Frame::decode(rest, &limits).unwrap();
        rest = &rest[used..];
        let (f3, used) = Frame::decode(rest, &limits).unwrap();
        assert_eq!(used, rest.len());
        assert_eq!(f1.kind, FrameKind::BriefcaseSeq);
        let (seq, body) = crate::split_seq(&f1.payload).unwrap();
        assert_eq!((seq, body.len()), (1, 100));
        assert_eq!(f2.kind, FrameKind::Briefcase);
        assert_eq!(f2.payload.len(), 50);
        assert_eq!(f3.kind, FrameKind::AckSeq);
        assert_eq!(parse_ack_seq(&f3.payload).unwrap(), 7);
    }

    #[test]
    fn frame_reader_reassembles_across_partial_reads() {
        let a = Frame::new(FrameKind::BriefcaseSeq, vec![1u8; 300]);
        let b = Frame::new(FrameKind::AckSeq, 9u64.to_le_bytes().to_vec());
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());

        // A reader that yields 7 bytes per call, with a WouldBlock
        // between chunks, models a nonblocking socket.
        struct Chunky {
            data: Vec<u8>,
            pos: usize,
            hungry: bool,
        }
        impl Read for Chunky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.hungry {
                    self.hungry = false;
                    return Err(std::io::Error::from(ErrorKind::WouldBlock));
                }
                self.hungry = true;
                let n = buf.len().min(7).min(self.data.len() - self.pos);
                if n == 0 {
                    return Ok(0);
                }
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        let mut reader = FrameReader::new(FrameLimits::default());
        let mut src = Chunky {
            data: wire,
            pos: 0,
            hungry: false,
        };
        let mut frames = Vec::new();
        loop {
            match reader.pump(&mut src, &mut frames).unwrap() {
                ReadStatus::Open if frames.len() < 2 => {}
                _ => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], a);
        assert_eq!(frames[1], b);
    }

    #[test]
    fn shard_assignment_is_stable() {
        assert_eq!(host_hash("beta"), host_hash("beta"));
        assert_ne!(host_hash("beta"), host_hash("gamma"));
    }
}
