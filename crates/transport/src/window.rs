//! The pipelined ack-window protocol, as pure state machines.
//!
//! Replaces stop-and-wait: up to W briefcases are in flight per
//! connection, each tagged with a per-connection sequence number
//! (starting at 1), and the receiver acknowledges cumulatively — one
//! `AckSeq(n)` frame covers every frame up to and including `n`.
//!
//! Sequence numbers are scoped to a single connection. On reconnect the
//! sender drains its in-flight items back into the queue and restarts at
//! seq 1 against the peer's fresh [`RecvWindow`]; cross-connection
//! duplicate suppression is the journal's hop-key dedup at the
//! listener's `pre_ack` hook, not this layer's job.
//!
//! Both halves are pure (no sockets, no clocks), so the reactor drives
//! them from its poll loop and the proptests drive them through
//! arbitrary interleavings of acks, timeouts, and reconnects.

use std::collections::VecDeque;

/// Sender half: tracks which sequence numbers are in flight and releases
/// items as cumulative acks arrive.
#[derive(Debug)]
pub struct SendWindow<T> {
    capacity: usize,
    next_seq: u64,
    acked: u64,
    inflight: VecDeque<(u64, T)>,
}

impl<T> SendWindow<T> {
    /// A window admitting up to `capacity` unacked frames.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity (the protocol needs at least
    /// stop-and-wait).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ack window capacity must be >= 1");
        SendWindow {
            capacity,
            next_seq: 1,
            acked: 0,
            inflight: VecDeque::new(),
        }
    }

    /// The configured window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether another frame may enter flight.
    pub fn has_room(&self) -> bool {
        self.inflight.len() < self.capacity
    }

    /// Frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// True when nothing is awaiting acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Highest cumulatively acknowledged sequence (0 before any ack).
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// The sequence number the next [`SendWindow::push`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Assigns the next sequence number to `item` and tracks it in
    /// flight, returning the assigned seq.
    ///
    /// # Panics
    ///
    /// Panics when the window is full — callers gate on
    /// [`SendWindow::has_room`].
    pub fn push(&mut self, item: T) -> u64 {
        assert!(self.has_room(), "pushed into a full ack window");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.push_back((seq, item));
        seq
    }

    /// Applies a cumulative ack for everything up to and including
    /// `seq`, returning the released items oldest-first. Stale or
    /// duplicate acks (≤ the current ack horizon) release nothing; an
    /// ack beyond anything we sent is clamped to the highest assigned
    /// seq rather than trusted.
    pub fn ack(&mut self, seq: u64) -> Vec<T> {
        let seq = seq.min(self.next_seq - 1);
        if seq <= self.acked {
            return Vec::new();
        }
        self.acked = seq;
        let mut released = Vec::new();
        while self
            .inflight
            .front()
            .is_some_and(|(front_seq, _)| *front_seq <= seq)
        {
            let (_, item) = self.inflight.pop_front().expect("front checked");
            released.push(item);
        }
        released
    }

    /// Everything still awaiting an ack, oldest first — the retransmit
    /// set after a window timeout ("retry from the last acked seq").
    pub fn unacked(&self) -> impl Iterator<Item = (u64, &T)> {
        self.inflight.iter().map(|(seq, item)| (*seq, item))
    }

    /// Tears the window down for a reconnect: drains every in-flight
    /// item oldest-first (so the caller can requeue them ahead of newer
    /// work) and restarts sequencing at 1 for the fresh connection.
    pub fn reset(&mut self) -> Vec<T> {
        self.next_seq = 1;
        self.acked = 0;
        self.inflight.drain(..).map(|(_, item)| item).collect()
    }
}

/// Receiver half: per-connection duplicate suppression plus the
/// cumulative ack horizon to report back.
#[derive(Debug, Default)]
pub struct RecvWindow {
    highest: u64,
}

impl RecvWindow {
    /// A fresh window expecting seq 1 first.
    pub fn new() -> Self {
        RecvWindow::default()
    }

    /// Decides whether the frame tagged `seq` is new (deliver it, true)
    /// or a retransmit of something already accepted (suppress the
    /// forward, false — but still ack, so the sender stops retrying).
    ///
    /// TCP delivers in order within a connection, so a seq at or below
    /// the horizon is a sender retransmit after a lost or delayed ack.
    /// A gap (seq jumping forward) only happens with a faulty sender;
    /// the frame itself is still new, so it is delivered and the horizon
    /// jumps with it.
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq <= self.highest {
            return false;
        }
        self.highest = seq;
        true
    }

    /// The cumulative ack to send: the highest accepted seq (0 before
    /// any frame arrived).
    pub fn ack_seq(&self) -> u64 {
        self.highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_and_releases_cumulatively() {
        let mut w = SendWindow::new(3);
        assert_eq!(w.push("a"), 1);
        assert_eq!(w.push("b"), 2);
        assert_eq!(w.push("c"), 3);
        assert!(!w.has_room());
        // One cumulative ack releases the first two, oldest first.
        assert_eq!(w.ack(2), vec!["a", "b"]);
        assert!(w.has_room());
        assert_eq!(w.in_flight(), 1);
        assert_eq!(w.ack(3), vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_and_wild_acks_are_harmless() {
        let mut w = SendWindow::new(4);
        w.push(10);
        w.push(11);
        assert_eq!(w.ack(1), vec![10]);
        // Duplicate / stale acks release nothing.
        assert!(w.ack(1).is_empty());
        assert!(w.ack(0).is_empty());
        // An ack beyond anything sent is clamped, not trusted.
        assert_eq!(w.ack(999), vec![11]);
        assert_eq!(w.acked(), 2);
        assert_eq!(w.next_seq(), 3);
    }

    #[test]
    fn unacked_is_the_retransmit_set() {
        let mut w = SendWindow::new(4);
        for item in ["a", "b", "c"] {
            w.push(item);
        }
        w.ack(1);
        let retrans: Vec<_> = w.unacked().collect();
        assert_eq!(retrans, vec![(2, &"b"), (3, &"c")]);
    }

    #[test]
    fn reset_drains_oldest_first_and_restarts_sequencing() {
        let mut w = SendWindow::new(4);
        for item in ["a", "b", "c"] {
            w.push(item);
        }
        w.ack(1);
        assert_eq!(w.reset(), vec!["b", "c"]);
        assert!(w.is_empty());
        assert_eq!(w.next_seq(), 1);
        assert_eq!(w.acked(), 0);
        assert_eq!(w.push("d"), 1);
    }

    #[test]
    fn recv_window_suppresses_retransmits() {
        let mut r = RecvWindow::new();
        assert_eq!(r.ack_seq(), 0);
        assert!(r.accept(1));
        assert!(r.accept(2));
        // Retransmits of accepted seqs are suppressed but still acked.
        assert!(!r.accept(1));
        assert!(!r.accept(2));
        assert_eq!(r.ack_seq(), 2);
        // A forward gap is still a new frame.
        assert!(r.accept(5));
        assert_eq!(r.ack_seq(), 5);
        assert!(!r.accept(3));
    }
}
