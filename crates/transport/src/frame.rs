//! The length-prefixed frame layer: everything two firewalls exchange
//! over a TCP connection is one of these frames.
//!
//! ```text
//! offset  size  field
//! 0       4     MAGIC "TAXF"
//! 4       1     frame version (currently 1)
//! 5       1     kind (see FrameKind)
//! 6       4     payload length, u32 little-endian
//! 10      n     payload bytes
//! ```
//!
//! Payload length is checked against [`FrameLimits::max_frame`] *before*
//! any allocation, so a hostile peer cannot make a receiver reserve
//! absurd buffers by declaring an absurd length.

use std::io::{Read, Write};

use bytes::Bytes;

use crate::TransportError;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TAXF";

/// Current frame version. Receivers reject other versions.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 10;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client→server greeting; payload is the HELLO briefcase.
    Hello = 1,
    /// Server→client handshake acceptance; payload names the server host.
    Welcome = 2,
    /// Server→client handshake rejection; payload is a UTF-8 reason.
    Reject = 3,
    /// An encoded firewall [`Message`](tacoma_briefcase::Briefcase) frame.
    Briefcase = 4,
    /// Server→client receipt for one Briefcase frame.
    Ack = 5,
    /// Client→server request for the peer's mediation statistics.
    Stats = 6,
    /// Server→client stats answer; payload is UTF-8 text.
    StatsReply = 7,
    /// Orderly goodbye; either side may send before closing.
    Bye = 8,
    /// A pipelined briefcase frame: payload is an 8-byte little-endian
    /// per-connection sequence number followed by the encoded message.
    /// Acknowledged cumulatively with [`FrameKind::AckSeq`] instead of
    /// one [`FrameKind::Ack`] per frame.
    BriefcaseSeq = 9,
    /// Cumulative receipt: payload is the highest 8-byte little-endian
    /// sequence number the receiver has accepted; it covers every
    /// [`FrameKind::BriefcaseSeq`] frame up to and including that seq.
    AckSeq = 10,
}

impl FrameKind {
    /// Parses a kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Welcome),
            3 => Some(FrameKind::Reject),
            4 => Some(FrameKind::Briefcase),
            5 => Some(FrameKind::Ack),
            6 => Some(FrameKind::Stats),
            7 => Some(FrameKind::StatsReply),
            8 => Some(FrameKind::Bye),
            9 => Some(FrameKind::BriefcaseSeq),
            10 => Some(FrameKind::AckSeq),
            _ => None,
        }
    }
}

/// Receiver-side size limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Largest accepted payload, in bytes.
    pub max_frame: u64,
}

impl Default for FrameLimits {
    fn default() -> Self {
        // The briefcase codec caps one element at 64 MiB; allow one such
        // element plus generous framing.
        FrameLimits {
            max_frame: (64 << 20) + (1 << 20),
        }
    }
}

/// One frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The payload bytes — a shared buffer, so decoding can hand out
    /// zero-copy views of the read allocation.
    pub payload: Bytes,
}

/// Builds the 10-byte frame header for a payload of `payload_len` bytes.
///
/// The reactor's vectored write path ships `[header, payload]` (or
/// `[header, seq, payload]` for [`FrameKind::BriefcaseSeq`]) as separate
/// `IoSlice`s, so the payload `Bytes` is never copied into a contiguous
/// encode buffer.
pub fn frame_header(kind: FrameKind, payload_len: u32) -> [u8; FRAME_HEADER_LEN] {
    let len = payload_len.to_le_bytes();
    [
        FRAME_MAGIC[0],
        FRAME_MAGIC[1],
        FRAME_MAGIC[2],
        FRAME_MAGIC[3],
        FRAME_VERSION,
        kind as u8,
        len[0],
        len[1],
        len[2],
        len[3],
    ]
}

/// Splits a [`FrameKind::BriefcaseSeq`] payload into its sequence number
/// and the message bytes (a zero-copy slice of the frame payload).
///
/// # Errors
///
/// [`TransportError::BadFrame`] when the payload is shorter than the
/// 8-byte sequence prefix.
pub fn split_seq(payload: &Bytes) -> Result<(u64, Bytes), TransportError> {
    if payload.len() < 8 {
        return Err(TransportError::BadFrame {
            detail: format!("seq frame payload too short: {} bytes", payload.len()),
        });
    }
    let mut seq = [0u8; 8];
    seq.copy_from_slice(&payload[..8]);
    Ok((u64::from_le_bytes(seq), payload.slice(8..)))
}

/// Parses a [`FrameKind::AckSeq`] payload: the cumulative acked sequence.
///
/// # Errors
///
/// [`TransportError::BadFrame`] unless the payload is exactly 8 bytes.
pub fn parse_ack_seq(payload: &Bytes) -> Result<u64, TransportError> {
    if payload.len() != 8 {
        return Err(TransportError::BadFrame {
            detail: format!("ack-seq payload must be 8 bytes, got {}", payload.len()),
        });
    }
    let mut seq = [0u8; 8];
    seq.copy_from_slice(payload);
    Ok(u64::from_le_bytes(seq))
}

impl Frame {
    /// A frame of the given kind and payload.
    pub fn new(kind: FrameKind, payload: impl Into<Bytes>) -> Self {
        Frame {
            kind,
            payload: payload.into(),
        }
    }

    /// An empty frame of the given kind (Ack, Bye, Stats).
    pub fn bare(kind: FrameKind) -> Self {
        Frame {
            kind,
            payload: Bytes::new(),
        }
    }

    /// Encodes the frame: header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadFrame`] on malformation,
    /// [`TransportError::FrameTooLarge`] when the declared payload
    /// exceeds `limits`.
    pub fn decode(buf: &[u8], limits: &FrameLimits) -> Result<(Frame, usize), TransportError> {
        let (kind, range) = Frame::decode_range(buf, limits)?;
        Ok((
            Frame {
                kind,
                payload: Bytes::copy_from_slice(&buf[range.clone()]),
            },
            range.end,
        ))
    }

    /// Zero-copy decode from a shared buffer: the payload is a
    /// [`Bytes::slice`] of `buf`'s backing allocation, so a briefcase
    /// frame read into one buffer flows to the firewall and VM without
    /// the payload ever being copied.
    ///
    /// Returns the frame and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Exactly as [`Frame::decode`].
    pub fn decode_bytes(
        buf: &Bytes,
        limits: &FrameLimits,
    ) -> Result<(Frame, usize), TransportError> {
        let (kind, range) = Frame::decode_range(buf, limits)?;
        Ok((
            Frame {
                kind,
                payload: buf.slice(range.clone()),
            },
            range.end,
        ))
    }

    /// The shared validation path: parses and bounds-checks the header,
    /// returning the payload's byte range within `buf`.
    fn decode_range(
        buf: &[u8],
        limits: &FrameLimits,
    ) -> Result<(FrameKind, std::ops::Range<usize>), TransportError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(TransportError::BadFrame {
                detail: format!("short header: {} bytes", buf.len()),
            });
        }
        let header = parse_header(&buf[..FRAME_HEADER_LEN], limits)?;
        let total = FRAME_HEADER_LEN + header.len as usize;
        if buf.len() < total {
            return Err(TransportError::BadFrame {
                detail: format!("payload truncated: want {total} bytes, have {}", buf.len()),
            });
        }
        Ok((header.kind, FRAME_HEADER_LEN..total))
    }

    /// Reads one frame from a blocking stream.
    ///
    /// # Errors
    ///
    /// I/O errors (including clean EOF, surfaced as `Io`), malformed
    /// headers, or an over-limit declared length — checked before the
    /// payload buffer is allocated.
    pub fn read_from(r: &mut impl Read, limits: &FrameLimits) -> Result<Frame, TransportError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        r.read_exact(&mut header)?;
        let parsed = parse_header(&header, limits)?;
        let mut payload = vec![0u8; parsed.len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            kind: parsed.kind,
            // The one unavoidable copy off the socket; everything after
            // shares this allocation.
            payload: Bytes::from(payload),
        })
    }

    /// Writes the frame to a blocking stream and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), TransportError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

/// Writes one frame as `[header, payload]` via vectored I/O and flushes,
/// without ever building a contiguous `header+payload` buffer — the
/// caller's payload (typically a briefcase's cached `wire_bytes()`) goes
/// to the socket uncopied.
///
/// # Errors
///
/// Propagates I/O errors, including a zero-length write (peer gone).
pub fn write_frame_vectored(
    w: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), TransportError> {
    let header = frame_header(kind, payload.len() as u32);
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            w.write_vectored(&[
                std::io::IoSlice::new(&header[written..]),
                std::io::IoSlice::new(payload),
            ])?
        } else {
            w.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(TransportError::Io {
                detail: "socket write returned 0 bytes".to_owned(),
            });
        }
        written += n;
    }
    w.flush()?;
    Ok(())
}

pub(crate) struct ParsedHeader {
    pub(crate) kind: FrameKind,
    pub(crate) len: u64,
}

pub(crate) fn parse_header(
    header: &[u8],
    limits: &FrameLimits,
) -> Result<ParsedHeader, TransportError> {
    if header[..4] != FRAME_MAGIC {
        return Err(TransportError::BadFrame {
            detail: format!("bad magic {:02x?}", &header[..4]),
        });
    }
    if header[4] != FRAME_VERSION {
        return Err(TransportError::BadFrame {
            detail: format!("unsupported frame version {}", header[4]),
        });
    }
    let kind = FrameKind::from_u8(header[5]).ok_or_else(|| TransportError::BadFrame {
        detail: format!("unknown frame kind {}", header[5]),
    })?;
    let len = u64::from(u32::from_le_bytes([
        header[6], header[7], header[8], header[9],
    ]));
    if len > limits.max_frame {
        return Err(TransportError::FrameTooLarge {
            declared: len,
            limit: limits.max_frame,
        });
    }
    Ok(ParsedHeader { kind, len })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let limits = FrameLimits::default();
        for kind in [
            FrameKind::Hello,
            FrameKind::Welcome,
            FrameKind::Reject,
            FrameKind::Briefcase,
            FrameKind::Ack,
            FrameKind::Stats,
            FrameKind::StatsReply,
            FrameKind::Bye,
            FrameKind::BriefcaseSeq,
            FrameKind::AckSeq,
        ] {
            let f = Frame::new(kind, vec![1, 2, 3]);
            let wire = f.encode();
            let (back, used) = Frame::decode(&wire, &limits).unwrap();
            assert_eq!(back, f);
            assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn read_write_stream_roundtrip() {
        let f = Frame::new(FrameKind::Briefcase, vec![9u8; 1000]);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice(), &FrameLimits::default()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn vectored_write_matches_encode() {
        let f = Frame::new(FrameKind::Briefcase, vec![3u8; 777]);
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, f.kind, &f.payload).unwrap();
        assert_eq!(vectored, f.encode());
        let back = Frame::read_from(&mut vectored.as_slice(), &FrameLimits::default()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn oversize_declared_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.push(FRAME_VERSION);
        wire.push(FrameKind::Briefcase as u8);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        // No payload present at all — the length check must fire first.
        let err =
            Frame::read_from(&mut wire.as_slice(), &FrameLimits { max_frame: 1024 }).unwrap_err();
        assert!(matches!(err, TransportError::FrameTooLarge { .. }));
    }

    #[test]
    fn decode_bytes_is_zero_copy_and_matches_decode() {
        let f = Frame::new(FrameKind::Briefcase, vec![5u8; 256]);
        let wire = Bytes::from(f.encode());
        let (copied, used_a) = Frame::decode(&wire, &FrameLimits::default()).unwrap();
        let (sliced, used_b) = Frame::decode_bytes(&wire, &FrameLimits::default()).unwrap();
        assert_eq!(copied, sliced);
        assert_eq!(used_a, used_b);
        // The sliced payload points inside the wire allocation.
        let base = wire.as_ptr() as usize;
        let p = sliced.payload.as_ptr() as usize;
        assert!(p >= base && p + sliced.payload.len() <= base + wire.len());
        // The copying decode does not.
        let q = copied.payload.as_ptr() as usize;
        assert!(q < base || q >= base + wire.len());
    }

    #[test]
    fn header_builder_matches_encode() {
        let f = Frame::new(FrameKind::BriefcaseSeq, vec![1u8, 2, 3]);
        let wire = f.encode();
        assert_eq!(
            frame_header(FrameKind::BriefcaseSeq, 3),
            wire[..FRAME_HEADER_LEN]
        );
    }

    #[test]
    fn seq_payload_splits_zero_copy() {
        let mut payload = 42u64.to_le_bytes().to_vec();
        payload.extend_from_slice(b"agent-bytes");
        let payload = Bytes::from(payload);
        let (seq, rest) = split_seq(&payload).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(&rest[..], b"agent-bytes");
        // The message view points inside the frame payload's allocation.
        assert_eq!(rest.as_ptr(), std::ptr::from_ref(&payload[8]));
        assert!(split_seq(&Bytes::copy_from_slice(&[0; 7])).is_err());
    }

    #[test]
    fn ack_seq_roundtrip() {
        let payload = Bytes::from(7u64.to_le_bytes().to_vec());
        assert_eq!(parse_ack_seq(&payload).unwrap(), 7);
        assert!(parse_ack_seq(&Bytes::copy_from_slice(&[0; 9])).is_err());
    }

    #[test]
    fn garbage_is_bad_frame() {
        let err = Frame::decode(b"NOTAFRAME!", &FrameLimits::default()).unwrap_err();
        assert!(matches!(err, TransportError::BadFrame { .. }));
        let err = Frame::read_from(
            &mut b"TAXF\x02\x04\0\0\0\0".as_slice(),
            &FrameLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::BadFrame { .. }));
    }

    #[test]
    fn eof_mid_payload_is_io() {
        let f = Frame::new(FrameKind::Briefcase, vec![7u8; 64]);
        let wire = f.encode();
        let err = Frame::read_from(&mut wire[..20].as_ref(), &FrameLimits::default()).unwrap_err();
        assert!(matches!(err, TransportError::Io { .. }));
    }
}
