//! Transport counters, shared between connection pools, listeners, and
//! the firewall's stats surface.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of transport activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Payload bytes shipped in Briefcase frames.
    pub bytes_sent: u64,
    /// Payload bytes received in Briefcase frames.
    pub bytes_received: u64,
    /// Briefcase frames shipped (acked by the peer).
    pub frames_sent: u64,
    /// Briefcase frames received.
    pub frames_received: u64,
    /// Successful connection establishments (including the first).
    pub connects: u64,
    /// Connections re-established after a failure.
    pub reconnects: u64,
    /// HELLO exchanges that failed (either side).
    pub handshake_failures: u64,
    /// Sends abandoned after the full retry budget.
    pub retry_timeouts: u64,
    /// Cumulative-ack frames received on the pipelined path.
    pub acks_received: u64,
    /// Frames re-sent after an ack-window timeout or a reconnect.
    pub retransmits: u64,
    /// Current total depth of all bounded per-peer outbound queues.
    pub queue_depth: u64,
    /// Highest queue depth ever observed on any single peer queue.
    pub queue_high_water: u64,
    /// Enqueue attempts refused because a peer queue was at capacity.
    pub queue_drops: u64,
}

impl TransportStats {
    /// Field-wise sum, for folding the outbound pool and inbound listener
    /// counters into one report.
    pub fn merged(&self, other: &TransportStats) -> TransportStats {
        TransportStats {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            frames_sent: self.frames_sent + other.frames_sent,
            frames_received: self.frames_received + other.frames_received,
            connects: self.connects + other.connects,
            reconnects: self.reconnects + other.reconnects,
            handshake_failures: self.handshake_failures + other.handshake_failures,
            retry_timeouts: self.retry_timeouts + other.retry_timeouts,
            acks_received: self.acks_received + other.acks_received,
            retransmits: self.retransmits + other.retransmits,
            queue_depth: self.queue_depth + other.queue_depth,
            queue_high_water: self.queue_high_water.max(other.queue_high_water),
            queue_drops: self.queue_drops + other.queue_drops,
        }
    }
}

impl fmt::Display for TransportStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx-frames={} tx-bytes={} rx-frames={} rx-bytes={} connects={} reconnects={} handshake-fail={} retry-timeouts={} acks={} retransmits={} queue-depth={} queue-high-water={} queue-drops={}",
            self.frames_sent,
            self.bytes_sent,
            self.frames_received,
            self.bytes_received,
            self.connects,
            self.reconnects,
            self.handshake_failures,
            self.retry_timeouts,
            self.acks_received,
            self.retransmits,
            self.queue_depth,
            self.queue_high_water,
            self.queue_drops
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    connects: AtomicU64,
    reconnects: AtomicU64,
    handshake_failures: AtomicU64,
    retry_timeouts: AtomicU64,
    acks_received: AtomicU64,
    retransmits: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    queue_drops: AtomicU64,
}

/// Shared, thread-safe counters; cloning shares the underlying cells.
#[derive(Debug, Clone, Default)]
pub struct TransportCounters {
    inner: Arc<Inner>,
}

impl TransportCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TransportCounters::default()
    }

    /// Counts one shipped frame of `bytes` payload bytes. Public so
    /// out-of-crate [`Transport`](crate::Transport) implementations can
    /// keep the same books.
    pub fn add_sent(&self, bytes: u64) {
        self.inner.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_received(&self, bytes: u64) {
        self.inner.frames_received.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_received
            .fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_connect(&self) {
        self.inner.connects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_reconnect(&self) {
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_handshake_failure(&self) {
        self.inner
            .handshake_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one send abandoned after its full retry budget. Public for
    /// the same reason as [`TransportCounters::add_sent`].
    pub fn add_retry_timeout(&self) {
        self.inner.retry_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_ack_received(&self) {
        self.inner.acks_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_retransmits(&self, n: u64) {
        self.inner.retransmits.fetch_add(n, Ordering::Relaxed);
    }

    /// Tracks a queue growing to `depth` entries: bumps the global depth
    /// gauge and raises the high-water mark when exceeded.
    pub(crate) fn queue_grew(&self, depth: u64) {
        self.inner.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.inner
            .queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn queue_shrank(&self, by: u64) {
        // Saturating: a racing snapshot may observe a transient dip, but
        // the gauge never wraps.
        let mut current = self.inner.queue_depth.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(by);
            match self.inner.queue_depth.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    pub(crate) fn add_queue_drop(&self) {
        self.inner.queue_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            bytes_sent: self.inner.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.inner.bytes_received.load(Ordering::Relaxed),
            frames_sent: self.inner.frames_sent.load(Ordering::Relaxed),
            frames_received: self.inner.frames_received.load(Ordering::Relaxed),
            connects: self.inner.connects.load(Ordering::Relaxed),
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            handshake_failures: self.inner.handshake_failures.load(Ordering::Relaxed),
            retry_timeouts: self.inner.retry_timeouts.load(Ordering::Relaxed),
            acks_received: self.inner.acks_received.load(Ordering::Relaxed),
            retransmits: self.inner.retransmits.load(Ordering::Relaxed),
            queue_depth: self.inner.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            queue_drops: self.inner.queue_drops.load(Ordering::Relaxed),
        }
    }
}
