//! The HELLO exchange: the first frames on every connection.
//!
//! The client opens with a `Hello` frame whose payload is a briefcase —
//! briefcases all the way down, like every other TAX wire structure:
//!
//! | folder            | contents                                        |
//! |-------------------|--------------------------------------------------|
//! | `HELLO:HOST`      | the connecting firewall's host name              |
//! | `HELLO:PRINCIPAL` | principal the connection acts as (when signed)   |
//! | `HELLO:NONCE`     | decimal nonce, fresh per connection              |
//! | `HELLO:SIG`       | hex MAC over `hello:{host}:{nonce}` (when signed)|
//!
//! The server verifies the signature against its [`TrustStore`] (the same
//! store the firewall uses for agent cores) and answers `Welcome` with its
//! own host name, or `Reject` with a UTF-8 reason. A deployment may allow
//! unsigned peers (`require_signed = false`, the paper's single-domain
//! trust model of §2) — the peer is then treated as unauthenticated and
//! the firewall's unauthenticated-rights policy applies downstream.

use tacoma_briefcase::Briefcase;
use tacoma_security::{Digest, Keyring, Principal, Signature, TrustStore};

use crate::TransportError;

const HOST: &str = "HELLO:HOST";
const PRINCIPAL: &str = "HELLO:PRINCIPAL";
const NONCE: &str = "HELLO:NONCE";
const SIG: &str = "HELLO:SIG";

/// What the server learned from a verified HELLO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloInfo {
    /// The connecting firewall's host name.
    pub host: String,
    /// The authenticated principal, when the HELLO was signed and
    /// verified; `None` for an accepted unsigned peer.
    pub principal: Option<Principal>,
}

/// The bytes a HELLO signature covers.
fn signed_bytes(host: &str, nonce: u64) -> Vec<u8> {
    format!("hello:{host}:{nonce}").into_bytes()
}

/// Builds a HELLO payload for `host`, signed with `keyring` when given.
pub fn build_hello(host: &str, keyring: Option<&Keyring>, nonce: u64) -> Vec<u8> {
    let mut bc = Briefcase::new();
    bc.set_single(HOST, host);
    bc.set_single(NONCE, format!("{nonce}"));
    if let Some(keys) = keyring {
        bc.set_single(PRINCIPAL, keys.principal().as_str());
        bc.set_single(SIG, keys.sign(&signed_bytes(host, nonce)).digest().to_hex());
    }
    bc.encode()
}

/// Builds the WELCOME payload naming the accepting server.
pub fn build_welcome(host: &str) -> Vec<u8> {
    let mut bc = Briefcase::new();
    bc.set_single(HOST, host);
    bc.encode()
}

/// Reads the server host name out of a WELCOME payload.
///
/// # Errors
///
/// [`TransportError::BadFrame`] when the payload is not a WELCOME
/// briefcase.
pub fn parse_welcome(payload: &[u8]) -> Result<String, TransportError> {
    let bc = Briefcase::decode(payload).map_err(|e| TransportError::BadFrame {
        detail: format!("welcome payload: {e}"),
    })?;
    Ok(bc
        .single_str(HOST)
        .map_err(|e| TransportError::BadFrame {
            detail: format!("welcome payload: {e}"),
        })?
        .to_owned())
}

/// Verifies a HELLO payload against `trust`.
///
/// # Errors
///
/// [`TransportError::HandshakeFailed`] when the payload is malformed,
/// unsigned while `require_signed`, signed by an untrusted principal, or
/// carries a bad signature.
pub fn verify_hello(
    payload: &[u8],
    trust: &TrustStore,
    require_signed: bool,
) -> Result<HelloInfo, TransportError> {
    let rejected = |reason: String| TransportError::HandshakeFailed { reason };
    let bc = Briefcase::decode(payload)
        .map_err(|e| rejected(format!("hello is not a briefcase: {e}")))?;
    let host = bc
        .single_str(HOST)
        .map_err(|_| rejected("hello names no host".into()))?
        .to_owned();
    let nonce: u64 = bc
        .single_str(NONCE)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| rejected("hello carries no usable nonce".into()))?;

    let signed = bc.single_str(PRINCIPAL).is_ok() || bc.single_str(SIG).is_ok();
    if !signed {
        if require_signed {
            return Err(rejected(format!("unsigned hello from {host:?} refused")));
        }
        return Ok(HelloInfo {
            host,
            principal: None,
        });
    }

    let principal_name = bc
        .single_str(PRINCIPAL)
        .map_err(|_| rejected("signed hello names no principal".into()))?;
    let principal = Principal::new(principal_name)
        .map_err(|e| rejected(format!("bad hello principal: {e}")))?;
    let sig_hex = bc
        .single_str(SIG)
        .map_err(|_| rejected("signed hello carries no signature".into()))?;
    let digest = Digest::from_hex(sig_hex)
        .map_err(|_| rejected("hello signature is not valid hex".into()))?;
    trust
        .verify(
            &principal,
            &signed_bytes(&host, nonce),
            &Signature::from_digest(digest),
        )
        .map_err(|e| rejected(format!("hello signature refused: {e}")))?;
    Ok(HelloInfo {
        host,
        principal: Some(principal),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trusted() -> (Keyring, TrustStore) {
        let sys = Principal::local_system("h1");
        let keys = Keyring::generate(&sys, 11);
        let mut trust = TrustStore::new();
        trust.trust(keys.public());
        (keys, trust)
    }

    #[test]
    fn signed_hello_verifies_and_names_principal() {
        let (keys, trust) = trusted();
        let payload = build_hello("h1", Some(&keys), 77);
        let info = verify_hello(&payload, &trust, true).unwrap();
        assert_eq!(info.host, "h1");
        assert_eq!(info.principal.unwrap().as_str(), "system@h1");
    }

    #[test]
    fn unsigned_hello_needs_permissive_server() {
        let (_keys, trust) = trusted();
        let payload = build_hello("h9", None, 1);
        assert!(verify_hello(&payload, &trust, true).is_err());
        let info = verify_hello(&payload, &trust, false).unwrap();
        assert_eq!(info.host, "h9");
        assert_eq!(info.principal, None);
    }

    #[test]
    fn untrusted_signer_is_refused_even_when_permissive() {
        let (_keys, trust) = trusted();
        let rogue = Keyring::generate(&Principal::local_system("evil"), 3);
        let payload = build_hello("evil", Some(&rogue), 5);
        assert!(matches!(
            verify_hello(&payload, &trust, false),
            Err(TransportError::HandshakeFailed { .. })
        ));
    }

    #[test]
    fn tampered_host_breaks_signature() {
        let (keys, trust) = trusted();
        // Sign as h1 but claim to be h2: the MAC covers the host name.
        let mut bc = Briefcase::decode(&build_hello("h1", Some(&keys), 9)).unwrap();
        bc.set_single(HOST, "h2");
        assert!(verify_hello(&bc.encode(), &trust, false).is_err());
    }

    #[test]
    fn welcome_roundtrips() {
        assert_eq!(parse_welcome(&build_welcome("srv")).unwrap(), "srv");
        assert!(parse_welcome(b"junk").is_err());
    }
}
