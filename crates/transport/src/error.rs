//! [`TransportError`]: what can go wrong on the wire.

use std::fmt;

/// Errors from the wire transport.
///
/// Io errors are carried as rendered strings so the type stays `Clone` +
/// `PartialEq` and can travel inside firewall errors and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// A socket operation failed.
    Io {
        /// Rendered `std::io::Error`.
        detail: String,
    },
    /// The destination could not be reached at all (no route, refused,
    /// crashed simulated host, unknown peer).
    Unreachable {
        /// The destination host.
        host: String,
        /// What went wrong.
        detail: String,
    },
    /// The HELLO exchange failed: the peer rejected us, or an arriving
    /// peer failed authentication.
    HandshakeFailed {
        /// The rejection reason.
        reason: String,
    },
    /// A frame declared a payload larger than the configured limit.
    FrameTooLarge {
        /// Declared payload length.
        declared: u64,
        /// The limit in force.
        limit: u64,
    },
    /// The byte stream is not a valid TAX frame.
    BadFrame {
        /// What was malformed.
        detail: String,
    },
    /// The peer's bounded outbound queue is full — backpressure. The
    /// caller can retry later, fall back to a blocking send, or park the
    /// message; nothing was enqueued.
    QueueFull {
        /// The destination host.
        host: String,
        /// The queue's capacity.
        capacity: usize,
    },
    /// Every retry attempt failed; the caller should park the message.
    RetriesExhausted {
        /// The destination host.
        host: String,
        /// Attempts made (including the first).
        attempts: u32,
        /// The last error, rendered.
        last: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { detail } => write!(f, "transport i/o error: {detail}"),
            TransportError::Unreachable { host, detail } => {
                write!(f, "host {host:?} unreachable: {detail}")
            }
            TransportError::HandshakeFailed { reason } => {
                write!(f, "handshake failed: {reason}")
            }
            TransportError::FrameTooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds limit {limit}")
            }
            TransportError::BadFrame { detail } => write!(f, "malformed frame: {detail}"),
            TransportError::QueueFull { host, capacity } => {
                write!(f, "outbound queue for {host:?} full ({capacity} entries)")
            }
            TransportError::RetriesExhausted {
                host,
                attempts,
                last,
            } => {
                write!(f, "gave up on {host:?} after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io {
            detail: e.to_string(),
        }
    }
}
