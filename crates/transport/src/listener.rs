//! [`TransportListener`]: the accepting side of the TCP transport — the
//! socket a `taxd` firewall daemon answers on.
//!
//! Rewritten on the reactor's shard machinery: instead of one blocking
//! thread per connection (which caps concurrent peers at the thread
//! budget), a small set of shard threads each own many *nonblocking*
//! sockets, reassembling frames with the incremental
//! [`FrameReader`](crate::reactor) and answering through the vectored
//! [`WriteQueue`](crate::reactor). A thousand mostly-idle peers cost a
//! thousand sockets and a few parked threads.
//!
//! Both wire dialects are served on the same port:
//!
//! - legacy stop-and-wait (`Briefcase` → bare `Ack`), spoken by the
//!   pooled [`TcpTransport`](crate::TcpTransport) and `taxsh`;
//! - the pipelined window (`BriefcaseSeq` → cumulative `AckSeq`),
//!   spoken by [`ReactorTransport`](crate::ReactorTransport). Per
//!   connection, a [`RecvWindow`] suppresses retransmitted seqs (the
//!   frame is re-acked but not re-forwarded); *cross*-connection dedup
//!   stays where it always was, in the `pre_ack` hop-key hook.
//!
//! [`ListenerConfig::ack_delay`] delays (and therefore coalesces)
//! acknowledgements — the bench's WAN-RTT knob: one late cumulative ack
//! covers a whole pipelined window, while a stop-and-wait sender eats
//! the full delay on every frame.

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use tacoma_security::TrustStore;

use crate::reactor::{FrameReader, ReadStatus, WriteQueue};
use crate::window::RecvWindow;
use crate::{
    build_welcome, split_seq, verify_hello, Frame, FrameKind, FrameLimits, TransportCounters,
    TransportStats,
};

/// Park ceiling for a shard whose connections are all quiet.
const MAX_IDLE_PARK: Duration = Duration::from_millis(50);

/// Park time while any connection is mid-conversation.
const BUSY_PARK: Duration = Duration::from_millis(1);

/// A connection counts as mid-conversation for this long after its last
/// frame, keeping the poll cadence tight for request/reply exchanges.
const ACTIVITY_WINDOW: Duration = Duration::from_millis(100);

/// Server-side configuration.
#[derive(Clone)]
pub struct ListenerConfig {
    /// Host name announced in WELCOME frames.
    pub local_host: String,
    /// Keys of peers whose signed HELLOs we accept.
    pub trust: TrustStore,
    /// Refuse unsigned HELLOs when set (hostile-network deployment).
    pub require_signed: bool,
    /// Frame size limits applied to every inbound frame.
    pub limits: FrameLimits,
    /// Per-connection read timeout; an idle connection is dropped after
    /// this long (the client reconnects transparently).
    pub read_timeout: Duration,
    /// Shard threads sharing the accepted sockets. Connections are
    /// dealt round-robin. Defaults to `available_parallelism` clamped
    /// to 4 — shards exist for socket fan-out, not CPU.
    pub shards: usize,
    /// Artificial delay before acknowledgements go out, simulating a
    /// WAN round trip. Delayed acks coalesce: one cumulative `AckSeq`
    /// covers every seq frame that arrived while it was pending. `None`
    /// (the default) acks as fast as the poll loop turns.
    pub ack_delay: Option<Duration>,
    /// Answers `Stats` frames when present (e.g. `taxd` exposes its
    /// firewall's counters here for `taxsh stats --connect`).
    pub stats_provider: Option<Arc<dyn Fn() -> String + Send + Sync>>,
    /// Inspects each briefcase payload before it is acknowledged and
    /// forwarded inward. Returning `false` suppresses the forward but
    /// still acks the frame — the door-side dedup point: `taxd` journals
    /// arriving agent hops here, and a retry of an already-seen hop must
    /// be confirmed to the sender (so it stops retrying) without running
    /// the agent twice. Runs on the shard thread *before* the ack is
    /// scheduled, so a write-ahead record is durable by the time the
    /// sender hears success.
    pub pre_ack: Option<PreAckHook>,
}

/// The [`ListenerConfig::pre_ack`] inspection hook: runs on the shard
/// thread with the raw message payload; returning `false` acks the
/// frame but suppresses the inward forward.
pub type PreAckHook = Arc<dyn Fn(&bytes::Bytes) -> bool + Send + Sync>;

impl std::fmt::Debug for ListenerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListenerConfig")
            .field("local_host", &self.local_host)
            .field("require_signed", &self.require_signed)
            .field("limits", &self.limits)
            .field("shards", &self.shards)
            .field("ack_delay", &self.ack_delay)
            .finish_non_exhaustive()
    }
}

impl ListenerConfig {
    /// A permissive config for `local_host`: unsigned peers accepted,
    /// default limits.
    pub fn trusting(local_host: impl Into<String>) -> Self {
        let shards = thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        ListenerConfig {
            local_host: local_host.into(),
            trust: TrustStore::new(),
            require_signed: false,
            limits: FrameLimits::default(),
            read_timeout: Duration::from_secs(60),
            shards: shards.clamp(1, 4),
            ack_delay: None,
            stats_provider: None,
            pre_ack: None,
        }
    }
}

/// One payload that arrived over the wire, tagged with the (possibly
/// authenticated) peer that sent it.
#[derive(Debug, Clone)]
pub struct Inbound {
    /// The peer's announced host name.
    pub from_host: String,
    /// The peer's authenticated principal, if its HELLO was signed.
    pub from_principal: Option<String>,
    /// The encoded firewall message, sharing the read buffer's
    /// allocation so the firewall can decode it zero-copy.
    pub payload: bytes::Bytes,
}

/// A bound, accepting TCP endpoint delivering [`Inbound`] payloads.
#[derive(Debug)]
pub struct TransportListener {
    addr: SocketAddr,
    rx: Receiver<Inbound>,
    shutdown: Arc<AtomicBool>,
    counters: TransportCounters,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl TransportListener {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    // By value: each shard clones its own copy; a constructor taking a
    // reference would just force every caller to write `&config`.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bind(addr: &str, config: ListenerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = TransportCounters::new();
        let (tx, rx) = unbounded();

        let shard_count = config.shards.max(1);
        let mut intakes: Vec<Sender<TcpStream>> = Vec::with_capacity(shard_count);
        let mut shard_threads = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (intake_tx, intake_rx) = unbounded();
            intakes.push(intake_tx);
            let shard = ListenerShard {
                intake: intake_rx,
                config: config.clone(),
                tx: tx.clone(),
                counters: counters.clone(),
                shutdown: Arc::clone(&shutdown),
                conns: Vec::new(),
                frames_scratch: Vec::new(),
            };
            shard_threads.push(thread::spawn(move || shard.run()));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::spawn(move || {
            accept_loop(&listener, &intakes, &accept_shutdown);
        });

        Ok(TransportListener {
            addr: local,
            rx,
            shutdown,
            counters,
            accept_thread: Some(accept_thread),
            shard_threads,
        })
    }

    /// The actually bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The channel inbound payloads arrive on.
    pub fn incoming(&self) -> &Receiver<Inbound> {
        &self.rx
    }

    /// Counter snapshot for the inbound side.
    pub fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Stops accepting, closes every live connection, and joins the
    /// accept and shard threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.shard_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TransportListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, intakes: &[Sender<TcpStream>], shutdown: &Arc<AtomicBool>) {
    let mut next = 0usize;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Round-robin deal to the shards; a dead shard (only
                // during teardown) just drops the socket.
                let _ = intakes[next % intakes.len()].send(stream);
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

// ---------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------

enum Phase {
    /// The first frame must be a HELLO we accept.
    AwaitingHello,
    /// Handshake done; briefcases flow.
    Open {
        host: String,
        principal: Option<String>,
        recv: RecvWindow,
    },
}

struct ConnState {
    stream: TcpStream,
    reader: FrameReader,
    writeq: WriteQueue,
    phase: Phase,
    last_activity: Instant,
    /// Due times for owed legacy (stop-and-wait) acks, oldest first.
    legacy_acks: VecDeque<Instant>,
    /// The owed cumulative ack and when it is due. Seq frames arriving
    /// while one is pending fold into it — that is the coalescing.
    seq_ack: Option<(u64, Instant)>,
    /// Flush what is queued, then close.
    closing: bool,
}

impl ConnState {
    fn new(stream: TcpStream, limits: FrameLimits) -> Self {
        ConnState {
            stream,
            reader: FrameReader::new(limits),
            writeq: WriteQueue::new(),
            phase: Phase::AwaitingHello,
            last_activity: Instant::now(),
            legacy_acks: VecDeque::new(),
            seq_ack: None,
            closing: false,
        }
    }

    fn busy(&self, now: Instant) -> bool {
        self.writeq.has_pending()
            || !self.legacy_acks.is_empty()
            || self.seq_ack.is_some()
            || now.duration_since(self.last_activity) < ACTIVITY_WINDOW
    }
}

struct ListenerShard {
    intake: Receiver<TcpStream>,
    config: ListenerConfig,
    tx: Sender<Inbound>,
    counters: TransportCounters,
    shutdown: Arc<AtomicBool>,
    conns: Vec<ConnState>,
    frames_scratch: Vec<Frame>,
}

impl ListenerShard {
    fn run(mut self) {
        let mut idle_park = BUSY_PARK;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // 1. Adopt newly accepted sockets.
            while let Ok(stream) = self.intake.try_recv() {
                if stream.set_nonblocking(true).is_ok() {
                    let _ = stream.set_nodelay(true);
                    self.conns.push(ConnState::new(stream, self.config.limits));
                }
            }
            // 2. Progress every connection; drop the dead.
            let now = Instant::now();
            let mut i = 0;
            while i < self.conns.len() {
                if self.progress(i, now) {
                    i += 1;
                } else {
                    self.conns.swap_remove(i);
                }
            }
            // 3. Park adaptively: tight while conversations are live,
            //    long naps when every socket is quiet. New connections
            //    wake the park instantly.
            let busy = self.conns.iter().any(|c| c.busy(now));
            idle_park = if busy {
                BUSY_PARK
            } else {
                (idle_park * 2).min(MAX_IDLE_PARK)
            };
            // An owed ack must not oversleep its due time.
            let park = self.nearest_ack_due(now).map_or(idle_park, |due| {
                idle_park.min(
                    due.saturating_duration_since(now)
                        .max(Duration::from_micros(200)),
                )
            });
            match self.intake.recv_timeout(park) {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_ok() {
                        let _ = stream.set_nodelay(true);
                        self.conns.push(ConnState::new(stream, self.config.limits));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    fn nearest_ack_due(&self, _now: Instant) -> Option<Instant> {
        let mut nearest: Option<Instant> = None;
        for conn in &self.conns {
            for due in conn
                .legacy_acks
                .front()
                .copied()
                .into_iter()
                .chain(conn.seq_ack.map(|(_, due)| due))
            {
                nearest = Some(nearest.map_or(due, |n| n.min(due)));
            }
        }
        nearest
    }

    /// One pass over connection `i`. Returns `false` when the
    /// connection should be dropped.
    fn progress(&mut self, i: usize, now: Instant) -> bool {
        // Read whatever the socket has. Frames that arrived before an
        // EOF are still processed — a peer may half-close its write
        // side and legitimately wait for our acks.
        self.frames_scratch.clear();
        let eof = {
            let conn = &mut self.conns[i];
            match conn.reader.pump(&mut conn.stream, &mut self.frames_scratch) {
                Ok(ReadStatus::Open) => false,
                Ok(ReadStatus::Closed) | Err(_) => true,
            }
        };
        let frames: Vec<Frame> = self.frames_scratch.drain(..).collect();
        if !frames.is_empty() {
            self.conns[i].last_activity = now;
        }
        for frame in frames {
            if !self.handle_frame(i, frame, now) {
                return false;
            }
        }

        let conn = &mut self.conns[i];
        if eof {
            conn.closing = true;
        }
        // Emit acks that have come due — or everything owed, when the
        // peer is done sending and just waits for confirmations.
        while conn
            .legacy_acks
            .front()
            .is_some_and(|due| conn.closing || *due <= now)
        {
            conn.legacy_acks.pop_front();
            conn.writeq.push_frame(FrameKind::Ack, bytes::Bytes::new());
        }
        if conn
            .seq_ack
            .is_some_and(|(_, due)| conn.closing || due <= now)
        {
            let (seq, _) = conn.seq_ack.take().expect("checked above");
            conn.writeq.push_ack_seq(seq);
        }
        if conn.writeq.flush(&mut conn.stream).is_err() {
            return false;
        }
        if conn.closing && !conn.writeq.has_pending() {
            return false;
        }
        // Idle reaping.
        if now.duration_since(conn.last_activity) > self.config.read_timeout {
            return false;
        }
        true
    }

    /// Applies one inbound frame. Returns `false` to hang up.
    fn handle_frame(&mut self, i: usize, frame: Frame, now: Instant) -> bool {
        let delay = self.config.ack_delay.unwrap_or(Duration::ZERO);
        match &self.conns[i].phase {
            Phase::AwaitingHello => {
                if frame.kind != FrameKind::Hello {
                    self.counters.add_handshake_failure();
                    return false;
                }
                match verify_hello(
                    &frame.payload,
                    &self.config.trust,
                    self.config.require_signed,
                ) {
                    Ok(info) => {
                        self.counters.add_connect();
                        let conn = &mut self.conns[i];
                        conn.writeq.push_frame(
                            FrameKind::Welcome,
                            bytes::Bytes::from(build_welcome(&self.config.local_host)),
                        );
                        conn.phase = Phase::Open {
                            host: info.host,
                            principal: info.principal.map(|p| p.as_str().to_owned()),
                            recv: RecvWindow::new(),
                        };
                    }
                    Err(e) => {
                        self.counters.add_handshake_failure();
                        let conn = &mut self.conns[i];
                        conn.writeq.push_frame(
                            FrameKind::Reject,
                            bytes::Bytes::from(e.to_string().into_bytes()),
                        );
                        conn.closing = true;
                    }
                }
                true
            }
            Phase::Open { .. } => match frame.kind {
                FrameKind::Briefcase => {
                    self.counters.add_received(frame.payload.len() as u64);
                    let forward = self
                        .config
                        .pre_ack
                        .as_ref()
                        .is_none_or(|hook| hook(&frame.payload));
                    if forward && !self.forward(i, frame.payload) {
                        return false;
                    }
                    self.conns[i].legacy_acks.push_back(now + delay);
                    true
                }
                FrameKind::BriefcaseSeq => {
                    let Ok((seq, body)) = split_seq(&frame.payload) else {
                        return false;
                    };
                    self.counters.add_received(body.len() as u64);
                    let fresh = match &mut self.conns[i].phase {
                        Phase::Open { recv, .. } => recv.accept(seq),
                        Phase::AwaitingHello => unreachable!("phase checked"),
                    };
                    // A retransmit is re-acked but never re-forwarded.
                    if fresh {
                        let forward = self.config.pre_ack.as_ref().is_none_or(|hook| hook(&body));
                        if forward && !self.forward(i, body) {
                            return false;
                        }
                    }
                    let ack = match &self.conns[i].phase {
                        Phase::Open { recv, .. } => recv.ack_seq(),
                        Phase::AwaitingHello => unreachable!("phase checked"),
                    };
                    let conn = &mut self.conns[i];
                    // Coalesce: raise a pending ack's horizon in place,
                    // keeping its original due time.
                    conn.seq_ack = Some(match conn.seq_ack {
                        Some((_, due)) => (ack, due),
                        None => (ack, now + delay),
                    });
                    true
                }
                FrameKind::Stats => {
                    let text = self
                        .config
                        .stats_provider
                        .as_ref()
                        .map_or_else(|| "no stats available".to_owned(), |f| f());
                    self.conns[i]
                        .writeq
                        .push_frame(FrameKind::StatsReply, bytes::Bytes::from(text.into_bytes()));
                    true
                }
                FrameKind::Bye => {
                    self.conns[i].closing = true;
                    true
                }
                // Protocol violation: hang up.
                _ => false,
            },
        }
    }

    /// Forwards a payload inward. Returns `false` when the daemon side
    /// has hung up the inbound channel.
    fn forward(&mut self, i: usize, payload: bytes::Bytes) -> bool {
        let Phase::Open {
            host, principal, ..
        } = &self.conns[i].phase
        else {
            return false;
        };
        self.tx
            .send(Inbound {
                from_host: host.clone(),
                from_principal: principal.clone(),
                payload,
            })
            .is_ok()
    }
}
