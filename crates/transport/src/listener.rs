//! [`TransportListener`]: the accepting side of the TCP transport — the
//! socket a `taxd` firewall daemon answers on.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use tacoma_security::TrustStore;

use crate::{
    build_welcome, verify_hello, Frame, FrameKind, FrameLimits, TransportCounters, TransportStats,
};

/// Server-side configuration.
#[derive(Clone)]
pub struct ListenerConfig {
    /// Host name announced in WELCOME frames.
    pub local_host: String,
    /// Keys of peers whose signed HELLOs we accept.
    pub trust: TrustStore,
    /// Refuse unsigned HELLOs when set (hostile-network deployment).
    pub require_signed: bool,
    /// Frame size limits applied to every inbound frame.
    pub limits: FrameLimits,
    /// Per-connection read timeout; an idle connection is dropped after
    /// this long (the client reconnects transparently).
    pub read_timeout: Duration,
    /// Answers `Stats` frames when present (e.g. `taxd` exposes its
    /// firewall's counters here for `taxsh stats --connect`).
    pub stats_provider: Option<Arc<dyn Fn() -> String + Send + Sync>>,
    /// Inspects each Briefcase payload before it is acknowledged and
    /// forwarded inward. Returning `false` suppresses the forward but
    /// still acks the frame — the door-side dedup point: `taxd` journals
    /// arriving agent hops here, and a retry of an already-seen hop must
    /// be confirmed to the sender (so it stops retrying) without running
    /// the agent twice. Runs on the connection thread *before* the ack,
    /// so a write-ahead record is durable by the time the sender hears
    /// success.
    pub pre_ack: Option<PreAckHook>,
}

/// The [`ListenerConfig::pre_ack`] inspection hook: runs on the
/// connection thread with the raw payload; returning `false` acks the
/// frame but suppresses the inward forward.
pub type PreAckHook = Arc<dyn Fn(&bytes::Bytes) -> bool + Send + Sync>;

impl std::fmt::Debug for ListenerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListenerConfig")
            .field("local_host", &self.local_host)
            .field("require_signed", &self.require_signed)
            .field("limits", &self.limits)
            .finish_non_exhaustive()
    }
}

impl ListenerConfig {
    /// A permissive config for `local_host`: unsigned peers accepted,
    /// default limits.
    pub fn trusting(local_host: impl Into<String>) -> Self {
        ListenerConfig {
            local_host: local_host.into(),
            trust: TrustStore::new(),
            require_signed: false,
            limits: FrameLimits::default(),
            read_timeout: Duration::from_secs(60),
            stats_provider: None,
            pre_ack: None,
        }
    }
}

/// One payload that arrived over the wire, tagged with the (possibly
/// authenticated) peer that sent it.
#[derive(Debug, Clone)]
pub struct Inbound {
    /// The peer's announced host name.
    pub from_host: String,
    /// The peer's authenticated principal, if its HELLO was signed.
    pub from_principal: Option<String>,
    /// The encoded firewall message, sharing the read buffer's
    /// allocation so the firewall can decode it zero-copy.
    pub payload: bytes::Bytes,
}

/// A bound, accepting TCP endpoint delivering [`Inbound`] payloads.
#[derive(Debug)]
pub struct TransportListener {
    addr: SocketAddr,
    rx: Receiver<Inbound>,
    shutdown: Arc<AtomicBool>,
    counters: TransportCounters,
    accept_thread: Option<JoinHandle<()>>,
}

impl TransportListener {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: &str, config: ListenerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = TransportCounters::new();
        let (tx, rx) = unbounded();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counters = counters.clone();
        let accept_thread = thread::spawn(move || {
            accept_loop(&listener, &config, &tx, &accept_shutdown, &accept_counters);
        });

        Ok(TransportListener {
            addr: local,
            rx,
            shutdown,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The channel inbound payloads arrive on.
    pub fn incoming(&self) -> &Receiver<Inbound> {
        &self.rx
    }

    /// Counter snapshot for the inbound side.
    pub fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Stops accepting and joins the accept thread. Live per-connection
    /// handlers finish on their own when their sockets close or time out.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TransportListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ListenerConfig,
    tx: &Sender<Inbound>,
    shutdown: &Arc<AtomicBool>,
    counters: &TransportCounters,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let config = config.clone();
                let tx = tx.clone();
                let counters = counters.clone();
                thread::spawn(move || handle_connection(stream, &config, &tx, &counters));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    config: &ListenerConfig,
    tx: &Sender<Inbound>,
    counters: &TransportCounters,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    // Handshake: the first frame must be a HELLO we accept.
    let hello = match Frame::read_from(&mut stream, &config.limits) {
        Ok(f) if f.kind == FrameKind::Hello => f,
        _ => {
            counters.add_handshake_failure();
            return;
        }
    };
    let info = match verify_hello(&hello.payload, &config.trust, config.require_signed) {
        Ok(info) => info,
        Err(e) => {
            counters.add_handshake_failure();
            let _ = Frame::new(FrameKind::Reject, e.to_string().into_bytes()).write_to(&mut stream);
            return;
        }
    };
    if Frame::new(FrameKind::Welcome, build_welcome(&config.local_host))
        .write_to(&mut stream)
        .is_err()
    {
        return;
    }
    counters.add_connect();

    // Steady state: Briefcase frames get acked and forwarded inward;
    // Stats frames are answered inline; Bye or any error ends the
    // connection.
    loop {
        let Ok(frame) = Frame::read_from(&mut stream, &config.limits) else {
            return;
        };
        match frame.kind {
            FrameKind::Briefcase => {
                counters.add_received(frame.payload.len() as u64);
                let forward = config.pre_ack.as_ref().is_none_or(|f| f(&frame.payload));
                if forward {
                    let inbound = Inbound {
                        from_host: info.host.clone(),
                        from_principal: info.principal.as_ref().map(|p| p.as_str().to_owned()),
                        payload: frame.payload,
                    };
                    if tx.send(inbound).is_err() {
                        return; // Receiver gone; the daemon is shutting down.
                    }
                }
                if Frame::bare(FrameKind::Ack).write_to(&mut stream).is_err() {
                    return;
                }
            }
            FrameKind::Stats => {
                let text = config
                    .stats_provider
                    .as_ref()
                    .map_or_else(|| "no stats available".to_owned(), |f| f());
                if Frame::new(FrameKind::StatsReply, text.into_bytes())
                    .write_to(&mut stream)
                    .is_err()
                {
                    return;
                }
            }
            FrameKind::Bye => return,
            _ => return, // Protocol violation: hang up.
        }
    }
}
