//! Retry pacing: exponential backoff with deterministic jitter.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Random, SeedableRng};

/// Retry/backoff policy for one logical send.
///
/// Delay before attempt *n* (n ≥ 1) is
/// `min(initial * multiplier^(n-1), max)` scaled by a jitter factor drawn
/// uniformly from `[1 - jitter, 1 + jitter]`. Jitter is seeded from the
/// destination and attempt number, so behaviour is reproducible while
/// still decorrelating peers that fail together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Ceiling for any single delay.
    pub max: Duration,
    /// Growth factor between retries.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1)`; 0.2 means ±20 %.
    pub jitter: f64,
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(50),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.2,
            max_attempts: 8,
        }
    }
}

impl BackoffPolicy {
    /// A fast policy for tests: small delays, few attempts.
    pub fn fast() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(5),
            max: Duration::from_millis(40),
            multiplier: 2.0,
            jitter: 0.1,
            max_attempts: 4,
        }
    }

    /// The delay to sleep after failed attempt number `attempt`
    /// (1-based). `seed` should identify the destination so two peers
    /// don't thunder in lockstep.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp =
            self.initial.as_secs_f64() * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max.as_secs_f64());
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(attempt).wrapping_mul(0x9e37)));
        let unit = f64::random(&mut rng);
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::default()
        };
        let d1 = p.delay(1, 7);
        let d2 = p.delay(2, 7);
        let d5 = p.delay(5, 7);
        let d9 = p.delay(9, 7);
        assert!(d2 > d1);
        assert!(d5 > d2);
        assert!(d9 <= p.max, "{d9:?} within cap");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = BackoffPolicy::default();
        let a = p.delay(3, 42);
        let b = p.delay(3, 42);
        assert_eq!(a, b, "same seed, same delay");
        let base = p.initial.as_secs_f64() * p.multiplier.powi(2);
        let lo = base * (1.0 - p.jitter) * 0.999;
        let hi = base * (1.0 + p.jitter) * 1.001;
        let got = a.as_secs_f64();
        assert!(got >= lo && got <= hi, "{got} in [{lo}, {hi}]");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let p = BackoffPolicy::default();
        assert_ne!(p.delay(2, 1), p.delay(2, 2));
    }
}
