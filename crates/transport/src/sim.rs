//! [`SimTransport`]: the [`Transport`] backend over the in-process
//! simulated network, so the same firewall routing code runs unchanged in
//! single-process experiments.

use tacoma_simnet::{HostId, MessageBus, NetError};

use crate::{Transport, TransportCounters, TransportError, TransportStats};

/// Adapts a simnet [`MessageBus`] to the [`Transport`] trait. Delivery is
/// immediate in wall time (virtual time is charged by the bus), so there
/// is no retry machinery: a refused transfer is final.
#[derive(Debug, Clone)]
pub struct SimTransport {
    bus: MessageBus,
    counters: TransportCounters,
}

impl SimTransport {
    /// A transport over the given bus.
    pub fn new(bus: MessageBus) -> Self {
        SimTransport {
            bus,
            counters: TransportCounters::new(),
        }
    }

    /// The underlying bus.
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }
}

fn host_id(name: &str) -> Result<HostId, TransportError> {
    HostId::new(name).map_err(|e| TransportError::Unreachable {
        host: name.to_owned(),
        detail: e.to_string(),
    })
}

impl Transport for SimTransport {
    fn send(
        &self,
        from: &str,
        to_host: &str,
        _to_port: u16,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let from = host_id(from)?;
        let to = host_id(to_host)?;
        // Single copy into the refcounted wire buffer; `to_vec().into()`
        // would copy twice (Vec, then Arc storage).
        match self
            .bus
            .send(&from, &to, bytes::Bytes::copy_from_slice(payload))
        {
            Ok(()) => {
                self.counters.add_sent(payload.len() as u64);
                Ok(())
            }
            // Churn (crashed host, severed link) is a distinct outcome from
            // random loss: the destination is *unreachable*, not unlucky.
            Err(
                e @ (NetError::NoEndpoint { .. }
                | NetError::EndpointClosed { .. }
                | NetError::HostDown { .. }
                | NetError::Partitioned { .. }),
            ) => {
                self.counters.add_retry_timeout();
                Err(TransportError::Unreachable {
                    host: to_host.to_owned(),
                    detail: e.to_string(),
                })
            }
            Err(e) => {
                self.counters.add_retry_timeout();
                Err(TransportError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    fn kind(&self) -> &'static str {
        "simnet"
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use tacoma_simnet::{LinkSpec, Network, Topology};

    use super::*;

    fn bus() -> MessageBus {
        let mut t = Topology::new(LinkSpec::lan_100mbit());
        t.add_hosts([HostId::new("a").unwrap(), HostId::new("b").unwrap()]);
        MessageBus::new(Arc::new(Network::new(t, 3)))
    }

    #[test]
    fn delivers_and_counts() {
        let bus = bus();
        let rx = bus.register(HostId::new("b").unwrap());
        let t = SimTransport::new(bus);
        t.send("a", "b", 4711, &[1, 2, 3]).unwrap();
        assert_eq!(rx.try_recv().unwrap().payload, vec![1, 2, 3]);
        let stats = t.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.bytes_sent, 3);
    }

    #[test]
    fn missing_endpoint_is_unreachable() {
        let t = SimTransport::new(bus());
        let err = t.send("a", "b", 4711, &[0; 8]).unwrap_err();
        assert!(matches!(err, TransportError::Unreachable { .. }));
        assert_eq!(t.stats().retry_timeouts, 1);
    }
}
