//! Criterion micro-benchmarks (E9): the per-operation costs behind the
//! paper's design claims — briefcase codec, URI grammar, signatures,
//! the TaxScript toolchain, agent migration, library primitives, wrapper
//! stacking depth, and group-ordering buffers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tacoma_briefcase::{Briefcase, Folder};
use tacoma_core::{AgentSpec, SystemBuilder};
use tacoma_security::{hash_bytes, Keyring, Principal};
use tacoma_taxscript::{compile_source, NullHooks, Program, Vm};
use tacoma_uri::AgentUri;

fn briefcase_of(payload_bytes: usize, elements: usize) -> Briefcase {
    let mut bc = Briefcase::new();
    let per = (payload_bytes / elements.max(1)).max(1);
    let mut folder = Folder::new("DATA");
    for _ in 0..elements {
        folder.append(vec![0xABu8; per]);
    }
    bc.insert_folder(folder);
    bc.set_single("AGENT-NAME", "bench");
    bc
}

/// Briefcase wire codec throughput across payload sizes.
fn bench_briefcase_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("briefcase_codec");
    for size in [1_000usize, 64_000, 1_000_000] {
        let bc = briefcase_of(size, 16);
        let wire = bc.encode();
        group.bench_with_input(BenchmarkId::new("encode", size), &bc, |b, bc| {
            b.iter(|| black_box(bc.encode()))
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &wire, |b, wire| {
            b.iter(|| black_box(Briefcase::decode(wire).unwrap()))
        });
    }
    group.finish();
}

/// Figure-2 grammar: parse + format.
fn bench_uri(c: &mut Criterion) {
    let text = "tacoma://cl2.cs.uit.no:27017/tacoma@cl2.cs.uit.no/vm_c:933821661";
    c.bench_function("uri_parse", |b| {
        b.iter(|| black_box(text.parse::<AgentUri>().unwrap()))
    });
    let uri: AgentUri = text.parse().unwrap();
    c.bench_function("uri_display", |b| b.iter(|| black_box(uri.to_string())));
}

/// The signature scheme on agent-core-sized payloads (what the firewall
/// pays to authenticate an arriving Webbot).
fn bench_security(c: &mut Criterion) {
    let keys = Keyring::generate(&Principal::new("bench").unwrap(), 1);
    let core = vec![0x5Au8; 250_000];
    c.bench_function("hash_250k", |b| b.iter(|| black_box(hash_bytes(&core))));
    c.bench_function("sign_250k", |b| b.iter(|| black_box(keys.sign(&core))));
    let sig = keys.sign(&core);
    let public = keys.public();
    c.bench_function("verify_250k", |b| {
        b.iter(|| black_box(public.verify(&core, &sig)))
    });
}

const FIB_SRC: &str = r#"
    fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    fn main() { exit(fib(15)); }
"#;

/// The TaxScript toolchain: the costs inside the Figure-3 pipeline.
fn bench_taxscript(c: &mut Criterion) {
    c.bench_function("taxscript_compile", |b| {
        b.iter(|| black_box(compile_source(FIB_SRC).unwrap()))
    });
    let program = compile_source(FIB_SRC).unwrap();
    let wire = program.encode();
    c.bench_function("taxscript_decode_binary", |b| {
        b.iter(|| black_box(Program::decode(&wire).unwrap()))
    });
    c.bench_function("taxscript_run_fib15", |b| {
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run(&mut bc).unwrap())
        })
    });
}

/// The firewall's admission tax: bytecode verification throughput in
/// wire bytes per second, across program sizes. Programs are synthesized
/// as chains of small functions so size grows without changing shape.
fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    for n_fns in [4usize, 32, 256] {
        let mut src = String::new();
        for i in 0..n_fns {
            let callee = if i + 1 < n_fns {
                format!("f{}(a + 1)", i + 1)
            } else {
                "a".into()
            };
            src.push_str(&format!(
                "fn f{i}(a) {{ if (a < 0) {{ return 0; }} return {callee}; }}\n"
            ));
        }
        src.push_str("fn main() { exit(f0(1)); }\n");
        let program = compile_source(&src).unwrap();
        let wire_len = program.encode().len() as u64;
        group.throughput(Throughput::Bytes(wire_len));
        group.bench_with_input(BenchmarkId::from_parameter(wire_len), &program, |b, p| {
            b.iter(|| black_box(tacoma_taxscript::analysis::verify(p).unwrap()))
        });
    }
    group.finish();
}

/// Agent migration cost as the carried state grows (§3.1's argument for
/// dropping state before `go`).
fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration_go");
    group.sample_size(20);
    for payload in [0usize, 100_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(payload),
            &payload,
            |b, &payload| {
                b.iter(|| {
                    let mut system = SystemBuilder::new()
                        .host("a")
                        .unwrap()
                        .host("b")
                        .unwrap()
                        .trust_all()
                        .build();
                    let spec = AgentSpec::script(
                        "mover",
                        r#"fn main() {
                        if (host_name() == "b") { exit(0); }
                        go("tacoma://b/vm_script");
                    }"#,
                    )
                    .folder("BULK", [vec![0u8; payload]]);
                    system.launch("a", spec).unwrap();
                    black_box(system.run_until_quiet())
                })
            },
        );
    }
    group.finish();
}

/// Library primitives: meet (synchronous RPC) vs activate (async send),
/// local vs remote.
fn bench_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("library_primitives");
    group.sample_size(20);
    for (name, body) in [
        (
            "meet_local_service",
            r#"bc_set("CMD", "append"); bc_set("ARGS", "x"); meet("ag_log");"#,
        ),
        (
            "activate_local_service",
            r#"bc_set("CMD", "append"); bc_set("ARGS", "x"); activate("ag_log");"#,
        ),
        (
            "meet_remote_service",
            r#"bc_set("CMD", "append"); bc_set("ARGS", "x"); meet("tacoma://b/ag_log");"#,
        ),
    ] {
        let source =
            format!("fn main() {{ let i = 0; while (i < 50) {{ {body} i = i + 1; }} exit(0); }}");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut system = SystemBuilder::new()
                    .host("a")
                    .unwrap()
                    .host("b")
                    .unwrap()
                    .trust_all()
                    .build();
                system
                    .launch("a", AgentSpec::script("caller", source.clone()))
                    .unwrap();
                black_box(system.run_until_quiet())
            })
        });
    }
    group.finish();
}

/// Wrapper stacking depth: the §4 mechanism's per-layer overhead
/// ("wrappers may be stacked in arbitrary depth").
fn bench_wrapper_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrapper_depth");
    group.sample_size(20);
    for depth in [0usize, 1, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut system = SystemBuilder::new().host("a").unwrap().trust_all().build();
                let mut spec = AgentSpec::script(
                    "wrapped",
                    r#"fn main() {
                        let i = 0;
                        while (i < 20) {
                            bc_set("CMD", "append"); bc_set("ARGS", "x");
                            activate("ag_log");
                            i = i + 1;
                        }
                        exit(0);
                    }"#,
                );
                for _ in 0..depth {
                    spec = spec.wrap("logging");
                }
                system.launch("a", spec).unwrap();
                black_box(system.run_until_quiet())
            })
        });
    }
    group.finish();
}

/// Group-ordering buffers under worst-case (reversed) arrival.
fn bench_group_ordering(c: &mut Criterion) {
    use tacoma_core::wrappers::ordering::{CausalBuffer, FifoBuffer, TotalBuffer, VectorClock};
    const N: u64 = 100;

    c.bench_function("ordering_fifo_reversed_100", |b| {
        b.iter(|| {
            let mut buf = FifoBuffer::new();
            let mut delivered = 0;
            for seq in (1..=N).rev() {
                delivered += buf.offer("s", seq, seq).len();
            }
            assert_eq!(delivered as u64, N);
            black_box(delivered)
        })
    });
    c.bench_function("ordering_total_reversed_100", |b| {
        b.iter(|| {
            let mut buf = TotalBuffer::new();
            let mut delivered = 0;
            for seq in (1..=N).rev() {
                delivered += buf.offer(seq, seq).len();
            }
            assert_eq!(delivered as u64, N);
            black_box(delivered)
        })
    });
    c.bench_function("ordering_causal_chain_100", |b| {
        let mut stamps = Vec::new();
        let mut clock = VectorClock::new();
        for _ in 0..N {
            clock.tick("p");
            stamps.push(clock.clone());
        }
        b.iter(|| {
            let mut buf = CausalBuffer::new();
            let mut delivered = 0;
            for stamp in stamps.iter().rev() {
                delivered += buf.offer("p", stamp.clone(), ()).len();
            }
            assert_eq!(delivered as u64, N);
            black_box(delivered)
        })
    });
}

criterion_group!(
    benches,
    bench_briefcase_codec,
    bench_uri,
    bench_security,
    bench_taxscript,
    bench_verify,
    bench_migration,
    bench_rpc,
    bench_wrapper_depth,
    bench_group_ordering
);
criterion_main!(benches);
