//! Transport micro-benchmarks: frame codec throughput and the full
//! ack'd round-trip over a real loopback TCP connection — the wire tax a
//! briefcase pays to leave the process.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tacoma_transport::{
    ConnectConfig, Connection, Frame, FrameKind, FrameLimits, ListenerConfig, TransportListener,
};

/// Frame encode/decode throughput across payload sizes.
fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    let limits = FrameLimits::default();
    for size in [64usize, 4_096, 262_144] {
        let frame = Frame::new(FrameKind::Briefcase, vec![0xABu8; size]);
        let wire = frame.encode();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &frame, |b, f| {
            b.iter(|| black_box(f.encode()));
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &wire, |b, w| {
            b.iter(|| black_box(Frame::decode(w, &limits).unwrap()));
        });
    }
    group.finish();
}

/// One ack'd briefcase send over an established loopback connection —
/// the steady-state per-message cost of `taxd`-to-`taxd` delivery
/// (handshake amortized away by the connection pool).
fn bench_tcp_loopback_send(c: &mut Criterion) {
    let listener = TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("bench-server"))
        .expect("bind loopback");
    let addr = listener.local_addr().to_string();
    let config = ConnectConfig {
        local_host: "bench-client".to_owned(),
        ..ConnectConfig::default()
    };
    let mut conn = Connection::establish(&addr, 1, &config).expect("handshake");

    let mut group = c.benchmark_group("tcp_loopback");
    for size in [64usize, 4_096, 262_144] {
        let payload = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("send_acked", size),
            &payload,
            |b, payload| {
                b.iter(|| {
                    conn.send_payload(black_box(payload)).unwrap();
                    // Drain so the listener channel does not grow unboundedly.
                    let _ = listener.incoming().recv().unwrap();
                });
            },
        );
    }
    group.finish();
    conn.goodbye();
}

/// Connection establishment including the HELLO round-trip — what a
/// reconnect after a fault costs before backoff even starts.
fn bench_tcp_handshake(c: &mut Criterion) {
    let listener = TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("bench-server"))
        .expect("bind loopback");
    let addr = listener.local_addr().to_string();
    let config = ConnectConfig {
        local_host: "bench-client".to_owned(),
        ..ConnectConfig::default()
    };
    let mut nonce = 0u64;
    c.bench_function("tcp_connect_and_hello", |b| {
        b.iter(|| {
            nonce += 1;
            let conn = Connection::establish(&addr, nonce, &config).unwrap();
            black_box(conn).goodbye();
        });
    });
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_tcp_loopback_send,
    bench_tcp_handshake
);
criterion_main!(benches);
