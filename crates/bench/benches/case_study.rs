//! Criterion form of E1: the §5 Webbot comparison on a reduced site, so
//! `cargo bench` exercises the full stack in seconds. The full-scale
//! numbers come from `cargo run --bin exp_e1_webbot_local_vs_remote`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tacoma_bench::mining::{run_client_pull, run_mobile_agent, MiningParams};
use tacoma_webbot::experiment::{run_mobile, run_stationary, CaseStudyParams};

fn reduced() -> CaseStudyParams {
    CaseStudyParams {
        pages: 120,
        total_bytes: 600_000,
        seed: 5,
        ..CaseStudyParams::default()
    }
}

fn bench_webbot(c: &mut Criterion) {
    let mut group = c.benchmark_group("webbot_case_study");
    group.sample_size(10);
    group.bench_function("stationary_120_pages", |b| {
        b.iter(|| black_box(run_stationary(&reduced()).report.pages_scanned))
    });
    group.bench_function("mobile_120_pages", |b| {
        b.iter(|| black_box(run_mobile(&reduced()).report.pages_scanned))
    });
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_itinerary");
    group.sample_size(10);
    let params = MiningParams {
        servers: 3,
        records_per_server: 100,
        record_bytes: 2_048,
        selectivity: 0.05,
        ..MiningParams::default()
    };
    group.bench_function("client_pull", |b| {
        b.iter(|| black_box(run_client_pull(&params).matches))
    });
    group.bench_function("mobile_agent", |b| {
        b.iter(|| black_box(run_mobile_agent(&params).matches))
    });
    group.finish();
}

criterion_group!(benches, bench_webbot, bench_mining);
criterion_main!(benches);
