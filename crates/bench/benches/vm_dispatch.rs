//! Criterion micro-benchmarks for the TaxScript execution tiers (E13):
//! the legacy per-instruction interpreter vs the fused superinstruction
//! dispatcher, and the launch cost with and without a warm scratch.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tacoma_briefcase::Briefcase;
use tacoma_taxscript::{compile_source, ExecScratch, NullHooks, Program, Vm};

fn counter_loop(iters: u64) -> Program {
    let program = compile_source(&format!(
        "fn main() {{
            let i = 0;
            let acc = 0;
            while (i < {iters}) {{
                acc = acc + 3;
                i = i + 1;
            }}
            exit(0);
        }}"
    ))
    .expect("bench source compiles");
    program.prepare();
    program
}

fn call_tree(depth: u64) -> Program {
    let program = compile_source(&format!(
        "fn dive(n) {{
            if (n == 0) {{ return 0; }}
            return dive(n - 1) + 1;
        }}
        fn main() {{
            let i = 0;
            while (i < 64) {{
                dive({depth});
                i = i + 1;
            }}
            exit(0);
        }}"
    ))
    .expect("bench source compiles");
    program.prepare();
    program
}

/// The loop-heavy fusion sweet spot: counter bumps and loop headers.
fn bench_dispatch(c: &mut Criterion) {
    let iters = 10_000u64;
    let program = counter_loop(iters);
    // ~7 wire ops per iteration; throughput in wire-instructions.
    let mut group = c.benchmark_group("vm_dispatch");
    group.throughput(Throughput::Elements(iters * 7));
    group.bench_function("legacy_counter_loop", |b| {
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run_legacy(&mut bc).unwrap())
        })
    });
    group.bench_function("fused_counter_loop", |b| {
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run(&mut bc).unwrap())
        })
    });
    group.finish();
}

/// Call/Return frame traffic — the locals-arena path.
fn bench_calls(c: &mut Criterion) {
    let program = call_tree(100);
    c.bench_function("vm_dispatch/fused_call_tree", |b| {
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run(&mut bc).unwrap())
        })
    });
}

/// Launch cost with a cold scratch vs a reused (pool-style) scratch.
fn bench_scratch(c: &mut Criterion) {
    let program = counter_loop(50);
    c.bench_function("vm_launch/cold_scratch", |b| {
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run(&mut bc).unwrap())
        })
    });
    c.bench_function("vm_launch/warm_scratch", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            let mut bc = Briefcase::new();
            let mut vm = Vm::new(&program, NullHooks::default());
            black_box(vm.run_with_scratch(&mut bc, &mut scratch).unwrap())
        })
    });
}

criterion_group!(benches, bench_dispatch, bench_calls, bench_scratch);
criterion_main!(benches);
