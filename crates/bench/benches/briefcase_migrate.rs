//! The briefcase-migration hot path under the copy-on-write rebuild:
//! clone cost, the mutate-one-folder-then-encode hop, and the full
//! legacy-vs-CoW fan-out comparison at several state sizes.
//!
//! The workload (see `tacoma_bench::migrate`) models an itinerant agent
//! that appends a result, then ships its state to `fanout` peers. Before
//! the CoW rebuild every destination paid a deep clone plus a fresh
//! encode; now clones are pointer bumps and the encode-once wire cache
//! serializes the state a single time per mutation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tacoma_bench::migrate::{build_state, hop_cow, hop_legacy, legacy_clone};

/// (folders, elements per folder, element bytes) shapes under test, from
/// a small courier to a page-snapshot hauler.
const SHAPES: [(usize, usize, usize); 3] = [(4, 4, 256), (16, 8, 1024), (32, 8, 4096)];

fn shape_label(folders: usize, elements: usize, bytes: usize) -> String {
    format!("{folders}x{elements}x{bytes}")
}

/// Clone alone: deep copy (pre-PR cost model) vs CoW pointer bump.
fn bench_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("briefcase_clone");
    for (folders, elements, bytes) in SHAPES {
        let bc = build_state(folders, elements, bytes);
        let payload = (folders * elements * bytes) as u64;
        group.throughput(Throughput::Bytes(payload));
        let label = shape_label(folders, elements, bytes);
        group.bench_with_input(BenchmarkId::new("legacy_deep", &label), &bc, |b, bc| {
            b.iter(|| black_box(legacy_clone(bc)));
        });
        group.bench_with_input(BenchmarkId::new("cow", &label), &bc, |b, bc| {
            b.iter(|| black_box(bc.clone()));
        });
    }
    group.finish();
}

/// Mutate one folder then encode: with the wire cache the encode after a
/// mutation is the only full serialization; untouched clones reuse it.
fn bench_mutate_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("briefcase_mutate_encode");
    for (folders, elements, bytes) in SHAPES {
        let base = build_state(folders, elements, bytes);
        base.wire_bytes(); // warm the cache, as after an arriving hop
        let label = shape_label(folders, elements, bytes);
        group.bench_with_input(BenchmarkId::from_parameter(&label), &base, |b, base| {
            b.iter(|| {
                let mut bc = base.clone();
                bc.append("RESULTS", "one more page");
                black_box(bc.wire_bytes())
            });
        });
    }
    group.finish();
}

/// The full hop at several fan-outs: one mutation, then ship the state
/// to `fanout` peers. Legacy pays fanout deep clones + fanout encodes;
/// CoW pays fanout pointer bumps + one encode.
fn bench_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("briefcase_migrate_hop");
    group.sample_size(20);
    let (folders, elements, bytes) = SHAPES[1];
    for fanout in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(fanout as u64));
        group.bench_with_input(BenchmarkId::new("legacy", fanout), &fanout, |b, &fanout| {
            let mut bc = build_state(folders, elements, bytes);
            let mut hop = 0;
            b.iter(|| {
                hop_legacy(&mut bc, hop, fanout);
                hop += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("cow", fanout), &fanout, |b, &fanout| {
            let mut bc = build_state(folders, elements, bytes);
            let mut hop = 0;
            b.iter(|| {
                hop_cow(&mut bc, hop, fanout);
                hop += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clone, bench_mutate_encode, bench_hop);
criterion_main!(benches);
