//! The §4 data-mining scenario:
//!
//! > "A mobile agent in this application domain can be launched from a
//! > client host on an itinerant path visiting a set of server hosts
//! > containing voluminous data. […] The mobile agent will, at each host,
//! > filter necessary data, and only bring back the reduced set of data
//! > that is valuable for the application."
//!
//! Two designs over the same record stores:
//!
//! * **client pull** — fetch every record from every server to the
//!   client, filter there (the "fixed clients pulling data from remote
//!   servers" of the paper's introduction);
//! * **mobile agent** — visit each server, filter at the source, carry
//!   only the matches.
//!
//! The interesting output is *who moves fewer bytes and finishes sooner*
//! as the selectivity (match fraction) varies — the crossover is the
//! paper's argument made quantitative.

use std::sync::Arc;
use std::time::Duration;

use tacoma_core::{
    command_of, error_reply, folders, ok_reply, AgentSpec, Architecture, ArtifactBundle,
    BinaryArtifact, Briefcase, Folder, HostHooks, LinkSpec, Principal, ServiceAgent, ServiceEnv,
    SystemBuilder, TaxSystem,
};

/// Parameters of one mining comparison.
#[derive(Debug, Clone)]
pub struct MiningParams {
    /// Number of data servers on the itinerary.
    pub servers: usize,
    /// Records per server.
    pub records_per_server: usize,
    /// Bytes per record.
    pub record_bytes: usize,
    /// Fraction of records that match the query, in `[0, 1]`.
    pub selectivity: f64,
    /// Link between all hosts.
    pub link: LinkSpec,
    /// Seed for record matching.
    pub seed: u64,
    /// CPU cost of filtering one record.
    pub filter_work_ns: u64,
}

impl Default for MiningParams {
    fn default() -> Self {
        MiningParams {
            servers: 4,
            records_per_server: 200,
            record_bytes: 4_096,
            selectivity: 0.05,
            link: LinkSpec::lan_100mbit(),
            seed: 7,
            filter_work_ns: 50_000,
        }
    }
}

/// The measured outcome of one design.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// Matching records brought home.
    pub matches: u64,
    /// Virtual completion time.
    pub elapsed: Duration,
    /// Bytes moved across the network (loopback excluded).
    pub network_bytes: u64,
}

/// Whether record `i` on server `s` matches the query — deterministic in
/// the seed, so both designs find the identical answer set.
fn record_matches(seed: u64, server: usize, i: usize, selectivity: f64) -> bool {
    let x = (seed ^ (server as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(i as u64)
        .wrapping_mul(0x2545f4914f6cdd1d);
    ((x >> 16) % 10_000) as f64 / 10_000.0 < selectivity
}

/// The record-store service: `fetch-all` replies with every record, each
/// a `RECORDS` element whose first byte flags whether it matches.
struct RecordStore {
    server_index: usize,
    params: MiningParams,
}

impl ServiceAgent for RecordStore {
    fn name(&self) -> &str {
        "ag_records"
    }

    fn handle(&self, request: &mut Briefcase, env: &mut ServiceEnv<'_>) -> Briefcase {
        match command_of(request) {
            "fetch-all" => {
                // Serving costs CPU proportional to the records scanned.
                env.hooks
                    .work_ns(self.params.records_per_server as u64 * 2_000);
                let mut reply = ok_reply();
                let records = reply.ensure_folder("RECORDS");
                for i in 0..self.params.records_per_server {
                    let matches = record_matches(
                        self.params.seed,
                        self.server_index,
                        i,
                        self.params.selectivity,
                    );
                    let mut data = vec![0u8; self.params.record_bytes.max(1)];
                    data[0] = matches as u8;
                    records.append(data);
                }
                reply
            }
            "count" => {
                let mut reply = ok_reply();
                reply.set_single("COUNT", self.params.records_per_server as i64);
                reply
            }
            other => error_reply(format!("ag_records: unknown command {other:?}")),
        }
    }
}

/// Filters a `fetch-all` reply, charging filter work; returns the
/// matching records.
fn filter_records(
    reply: &Briefcase,
    filter_work_ns: u64,
    hooks: &mut dyn HostHooks,
) -> Vec<tacoma_core::Element> {
    let mut matches = Vec::new();
    if let Some(records) = reply.folder("RECORDS") {
        for record in records {
            hooks.work_ns(filter_work_ns);
            if record.data().first() == Some(&1) {
                matches.push(record.clone());
            }
        }
    }
    matches
}

const MINER_KEY: &str = "miner";
const PULLER_KEY: &str = "puller";
/// The miner agent's "binary" size on the wire.
const MINER_BINARY_SIZE: usize = 40_000;
const RESULT_DRAWER: &str = "mining-report";

fn install_programs(host: &tacoma_core::TaxHost, params: &MiningParams) {
    let filter_work = params.filter_work_ns;

    // The itinerant miner: visit HOSTS one by one, filter at each source,
    // accumulate matches in RESULTS, come home, park the results.
    host.install_native(MINER_KEY, move |bc, hooks| {
        let here = hooks.host_name();
        let home = bc.single_str("MINE:HOME").unwrap_or_default().to_owned();

        if here != home {
            // At a data server: mine it.
            let mut request = Briefcase::new();
            request.set_single(folders::COMMAND, "fetch-all");
            if let Some(reply) = hooks.meet("ag_records", &request) {
                for record in filter_records(&reply, filter_work, hooks) {
                    bc.append("RESULTS", record);
                }
            }
        }

        // Next hop, or home.
        let next = bc.folder_mut("HOSTS").and_then(Folder::remove_front);
        let dest = match next {
            Some(e) => e.as_str().unwrap_or_default().to_owned(),
            None if here == home => {
                // Home with the goods: park them.
                bc.set_single("MINE:T-DONE-MS", hooks.now_ms());
                let mut store = Briefcase::new();
                store.set_single(folders::COMMAND, "store");
                store.append(folders::ARGS, RESULT_DRAWER);
                store.set_single("CABINET-DATA", bc.encode());
                hooks.meet("ag_cabinet", &store);
                return Ok(tacoma_core::Outcome::Exit(0));
            }
            None => format!("tacoma://{home}/vm_bin"),
        };
        match hooks.go(&dest, bc) {
            tacoma_core::GoDecision::Moved => Ok(tacoma_core::Outcome::Moved { to: dest }),
            tacoma_core::GoDecision::Unreachable => Ok(tacoma_core::Outcome::Exit(1)),
        }
    });

    // The stationary puller: fetch everything from every server across
    // the network, filter locally.
    host.install_native(PULLER_KEY, move |bc, hooks| {
        let servers: Vec<String> = bc
            .folder("MINE:SERVERS")
            .map(|f| {
                f.iter()
                    .filter_map(|e| e.as_str().ok().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default();
        for server in servers {
            let mut request = Briefcase::new();
            request.set_single(folders::COMMAND, "fetch-all");
            if let Some(reply) = hooks.meet(&format!("tacoma://{server}/ag_records"), &request) {
                for record in filter_records(&reply, filter_work, hooks) {
                    bc.append("RESULTS", record);
                }
            }
        }
        bc.set_single("MINE:T-DONE-MS", hooks.now_ms());
        let mut store = Briefcase::new();
        store.set_single(folders::COMMAND, "store");
        store.append(folders::ARGS, RESULT_DRAWER);
        store.set_single("CABINET-DATA", bc.encode());
        hooks.meet("ag_cabinet", &store);
        Ok(tacoma_core::Outcome::Exit(0))
    });
}

fn server_names(params: &MiningParams) -> Vec<String> {
    (0..params.servers).map(|i| format!("srv{i}")).collect()
}

fn build_system(params: &MiningParams) -> TaxSystem {
    let mut builder = SystemBuilder::new()
        .default_link(params.link)
        .seed(params.seed)
        .trust_all()
        .host("client")
        .expect("host name");
    for s in server_names(params) {
        builder = builder.host(&s).expect("host name");
    }
    let system = builder.build();
    for (i, name) in server_names(params).iter().enumerate() {
        let host = system.host(name).expect("server");
        host.add_service(Arc::new(RecordStore {
            server_index: i,
            params: params.clone(),
        }));
        install_programs(&host, params);
    }
    install_programs(&system.host("client").expect("client"), params);
    system
}

fn collect(system: &mut TaxSystem) -> MiningOutcome {
    let principal = Principal::local_system("client");
    let mut fetch = Briefcase::new();
    fetch.set_single(folders::COMMAND, "fetch");
    fetch.append(folders::ARGS, RESULT_DRAWER);
    let reply = system
        .call_service("client", "ag_cabinet", &principal, fetch)
        .expect("cabinet reachable");
    let parked = Briefcase::decode(
        reply
            .element("CABINET-DATA", 0)
            .expect("report parked")
            .data(),
    )
    .expect("parked briefcase decodes");
    let matches = parked.folder("RESULTS").map_or(0, Folder::len) as u64;
    let done_ms = parked.single_i64("MINE:T-DONE-MS").unwrap_or(0).max(0) as u64;
    MiningOutcome {
        matches,
        elapsed: Duration::from_millis(done_ms),
        network_bytes: system.network().stats().network_bytes(),
    }
}

/// Runs the client-pull design.
pub fn run_client_pull(params: &MiningParams) -> MiningOutcome {
    let system = build_system(params);
    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        PULLER_KEY,
        Architecture::simulated(),
        PULLER_KEY,
        MINER_BINARY_SIZE,
    ));
    let spec = AgentSpec::bundle("puller", bundle).folder("MINE:SERVERS", server_names(params));
    let mut system_ref = system;
    system_ref.launch("client", spec).expect("launch puller");
    system_ref.run_until_quiet();
    collect(&mut system_ref)
}

/// Runs the itinerant mobile-agent design.
pub fn run_mobile_agent(params: &MiningParams) -> MiningOutcome {
    let mut system = build_system(params);
    let bundle = ArtifactBundle::new().with(BinaryArtifact::native(
        MINER_KEY,
        Architecture::simulated(),
        MINER_KEY,
        MINER_BINARY_SIZE,
    ));
    let itinerary: Vec<String> = server_names(params)
        .iter()
        .map(|s| format!("tacoma://{s}/vm_bin"))
        .collect();
    let spec = AgentSpec::bundle("miner", bundle)
        .folder("MINE:HOME", ["client"])
        .itinerary(itinerary);
    system.launch("client", spec).expect("launch miner");
    system.run_until_quiet();
    collect(&mut system)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MiningParams {
        MiningParams {
            servers: 3,
            records_per_server: 40,
            record_bytes: 512,
            selectivity: 0.1,
            ..MiningParams::default()
        }
    }

    #[test]
    fn both_designs_find_the_same_matches() {
        let params = small();
        let pull = run_client_pull(&params);
        let mobile = run_mobile_agent(&params);
        assert_eq!(pull.matches, mobile.matches);
        assert!(
            pull.matches > 0,
            "selectivity 0.1 over 120 records should match some"
        );
    }

    #[test]
    fn low_selectivity_favours_the_agent() {
        // Voluminous data (2.4 MB) dwarfing the 40 KB agent binary —
        // the paper's "huge data sets" premise. (With data smaller than
        // the agent, pulling wins, as the crossover sweep shows.)
        let params = MiningParams {
            selectivity: 0.02,
            records_per_server: 200,
            record_bytes: 4_096,
            ..small()
        };
        let pull = run_client_pull(&params);
        let mobile = run_mobile_agent(&params);
        assert!(
            mobile.network_bytes < pull.network_bytes,
            "mobile {} !< pull {}",
            mobile.network_bytes,
            pull.network_bytes
        );
    }

    #[test]
    fn high_selectivity_favours_the_client_pull() {
        // Near-1 selectivity: the agent drags almost all data across
        // every remaining hop; pulling once is cheaper.
        let params = MiningParams {
            selectivity: 0.95,
            servers: 4,
            ..small()
        };
        let pull = run_client_pull(&params);
        let mobile = run_mobile_agent(&params);
        assert!(
            mobile.network_bytes > pull.network_bytes,
            "mobile {} !> pull {}",
            mobile.network_bytes,
            pull.network_bytes
        );
    }
}
