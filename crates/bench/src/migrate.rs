//! Shared workload for the briefcase-migration benchmarks: a synthetic
//! agent state plus a faithful simulation of the pre-CoW representation.
//!
//! The `briefcase_migrate` criterion bench and the `exp_e9` regenerator
//! both compare one *hop* of a clone-heavy itinerary two ways:
//!
//! * **legacy** — how migration cost looked before the copy-on-write
//!   rebuild: every fan-out destination paid a deep clone (folder map,
//!   name strings, and every element buffer rebuilt) plus a full encode.
//! * **cow** — the current representation: clones are pointer bumps and
//!   the encode-once wire cache serializes the state a single time per
//!   mutation, however many peers it ships to.

use tacoma_briefcase::{Briefcase, Folder};

/// Builds the agent state under test: `folders` folders of `elements`
/// elements, each `element_bytes` long — the shape of a Webbot hauling
/// page snapshots home.
pub fn build_state(folders: usize, elements: usize, element_bytes: usize) -> Briefcase {
    let mut bc = Briefcase::new();
    for f in 0..folders {
        let name = format!("PAGES-{f:03}");
        for e in 0..elements {
            bc.append(&name, vec![(f ^ e) as u8; element_bytes]);
        }
    }
    bc
}

/// A deep clone with the pre-PR cost model: rebuilds the folder map, the
/// name strings, and every element's byte buffer — O(bytes), exactly what
/// `Briefcase::clone` used to cost when folders held plain `Vec`s.
pub fn legacy_clone(bc: &Briefcase) -> Briefcase {
    let mut out = Briefcase::new();
    for folder in bc.iter() {
        let mut f = Folder::new(folder.name().to_owned());
        for e in folder {
            f.append(e.data().to_vec());
        }
        out.insert_folder(f);
    }
    out
}

/// One itinerary hop, legacy cost model: mutate one folder, then ship to
/// `fanout` peers, each paying a deep clone plus a full encode.
pub fn hop_legacy(bc: &mut Briefcase, hop: usize, fanout: usize) {
    bc.append("RESULTS", format!("hop-{hop}"));
    for _ in 0..fanout {
        let clone = legacy_clone(bc);
        std::hint::black_box(clone.encode());
    }
}

/// One itinerary hop, CoW cost model: the same mutation, then `fanout`
/// pointer-bump clones sharing one cached encoding.
pub fn hop_cow(bc: &mut Briefcase, hop: usize, fanout: usize) {
    bc.append("RESULTS", format!("hop-{hop}"));
    for _ in 0..fanout {
        let clone = bc.clone();
        std::hint::black_box(clone.wire_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_clone_is_deep_but_equal() {
        let bc = build_state(4, 3, 64);
        let copy = legacy_clone(&bc);
        assert_eq!(bc, copy);
        assert!(!bc.shares_storage_with(&copy));
        let (a, b) = (
            bc.folder("PAGES-000").unwrap(),
            copy.folder("PAGES-000").unwrap(),
        );
        assert!(!a.shares_storage_with(b));
    }

    #[test]
    fn both_hop_models_produce_identical_wire() {
        let mut legacy = build_state(3, 2, 32);
        let mut cow = legacy_clone(&legacy);
        hop_legacy(&mut legacy, 0, 2);
        hop_cow(&mut cow, 0, 2);
        assert_eq!(legacy.encode(), cow.encode());
    }
}
