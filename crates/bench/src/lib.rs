//! Shared machinery for the experiment regenerators: table printing and
//! the §4 data-mining scenario (a record store service plus an itinerant
//! mining agent).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod migrate;
pub mod mining;

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row plus a rule.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(ToString::to_string).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Formats bytes in adaptive units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1}MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1}KB", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}
