//! **E6 — Figure 4, the hello-world itinerary agent.**
//!
//! The exact agent of the figure, translated from C to TaxScript: drain
//! the `HOSTS` folder one hop at a time, displaying at each host; the
//! `if (go(next))` failure branch fires for an unreachable host.

use tacoma_bench::{header, row};
use tacoma_core::{AgentSpec, EventKind, SystemBuilder};

fn main() {
    println!("E6: the Figure-4 agent on a five-host itinerary (one host down)\n");

    let hosts = ["h1", "h2", "h3", "h4", "h5"];
    let mut builder = SystemBuilder::new();
    for h in hosts {
        builder = builder.host(h).unwrap();
    }
    let mut system = builder.trust_all().build();

    // h3 is down — the failure branch of Figure 4 must fire.
    system.network().with_topology(|t| {
        t.crash_host(&"h3".parse().unwrap());
    });

    // Figure 4, line for line.
    let agent = AgentSpec::script(
        "hello",
        r#"
        fn main() {
            while (1) {
                display("Hello world");
                let e = bc_remove("HOSTS", 0);
                if (e == nil) { exit(0); }
                if (go(e)) { display("Unable to reach " + e); }
            }
        }
        "#,
    )
    .itinerary(
        hosts
            .iter()
            .skip(1)
            .map(|h| format!("tacoma://{h}/vm_script")),
    );

    system.launch("h1", agent).unwrap();
    system.run_until_quiet();

    println!("agent output, in virtual-time order:");
    for line in system.agent_outputs() {
        println!("  {line}");
    }

    println!("\nper-host lifecycle:");
    let widths = [6, 12, 12, 12];
    header(&["host", "installed", "departed", "completed"], &widths);
    for h in hosts {
        let events = system.host(h).unwrap().events();
        let count = |pred: &dyn Fn(&EventKind) -> bool| {
            events.iter().filter(|e| pred(&e.kind)).count().to_string()
        };
        row(
            &[
                h.to_owned(),
                count(&|k| matches!(k, EventKind::Installed { .. })),
                count(&|k| matches!(k, EventKind::Departed { .. })),
                count(&|k| matches!(k, EventKind::Completed(_))),
            ],
            &widths,
        );
    }

    let outputs = system.agent_outputs();
    // Figure 4 greets at the top of every loop iteration: once per hop
    // (h1, h2, h4, h5) plus the extra iteration on h2 after the failed
    // hop to h3 — five in total, none on the dead host.
    assert_eq!(
        outputs
            .iter()
            .filter(|l| l.as_str() == "Hello world")
            .count(),
        5
    );
    assert_eq!(
        outputs
            .iter()
            .filter(|l| l.starts_with("Unable to reach"))
            .count(),
        1,
        "exactly one unreachable host"
    );
    println!("\nshape check passed: 5 greetings (4 hosts + 1 retry iteration), 1 failure branch,");
    println!("termination on empty HOSTS.");
}
