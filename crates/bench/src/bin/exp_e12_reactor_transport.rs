//! **E12 — the sharded reactor transport under pipelining and peer scale.**
//!
//! Three measurements of the nonblocking reactor that replaced the
//! blocking per-send connection pool:
//!
//! 1. **Pipelined acks vs stop-and-wait at WAN RTT.** The listener
//!    delays its acknowledgements by a simulated WAN round trip; the
//!    same frame burst is shipped with an ack window of 1 (classic
//!    stop-and-wait, one briefcase per RTT) and with the default window
//!    of 32 (cumulative acks cover a whole window per RTT). The speedup
//!    is the headline number for mobilized Webbots hopping across real
//!    networks instead of a LAN.
//!
//! 2. **Bounded backpressure.** A deliberately small outbound queue is
//!    overdriven; the transport must *refuse* enqueues at capacity
//!    (`QueueFull`, counted as `queue_drops`) rather than buffer without
//!    bound, and every accepted frame must still complete.
//!
//! 3. **Peer scale.** Hundreds to thousands of distinct peers (each its
//!    own connection, sharded by host hash) each receive a briefcase
//!    burst; per-frame completion latency is recorded (p50/p99) and the
//!    receiver's count must match the sender's — zero lost briefcases.
//!    The peer count is clamped to the process fd limit (two sockets
//!    per peer: the connector side and the accepted side live in this
//!    one process) so the run degrades before `EMFILE` instead of dying
//!    on it; the actual count is recorded alongside the requested one.
//!
//! With `--json` the results are emitted as a JSON object (the format
//! checked in as `BENCH_9.json`); `--smoke` shrinks the workload for
//! CI; `--check` exits non-zero if pipelining speeds up the WAN-RTT
//! burst by less than 3x, the peer sweep ran fewer than 256 peers or
//! lost a briefcase, backpressure never refused an enqueue, or no p99
//! was recorded.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tacoma_bench::{header, row};
use tacoma_briefcase::Briefcase;
use tacoma_firewall::Message;
use tacoma_security::Principal;
use tacoma_transport::{
    ListenerConfig, ReactorConfig, ReactorTransport, Transport, TransportError, TransportListener,
};

/// Timed repetitions for the gated speedup ratio; the median damps
/// scheduler noise on a small shared VM.
const REPS: usize = 3;

/// The CI gate: pipelined throughput over the delayed-ack link must be
/// at least this multiple of stop-and-wait.
const SPEEDUP_GATE: f64 = 3.0;

/// The CI gate: the peer sweep must reach at least this many distinct
/// peers even after the fd clamp.
const PEER_GATE: usize = 256;

/// File descriptors held back from the peer budget: shard wakeup pipes,
/// the listener socket, stdio, the journal-less daemon overhead.
const FD_HEADROOM: u64 = 64;

/// The briefcase every frame carries: a small meet/activation delivery,
/// the common currency of agent-to-agent traffic.
fn build_wire() -> Bytes {
    let mut bc = Briefcase::new();
    bc.append("CONTACT", b"activate probe".to_vec());
    bc.append("RESULTS", vec![7u8; 256]);
    let message = Message::deliver(
        "bench",
        Principal::local_system("bench"),
        None,
        "tacoma://sink/probe".parse().expect("valid uri"),
        bc,
    );
    Bytes::from(message.encode())
}

/// The soft fd limit from `/proc/self/limits`, or `None` off Linux.
fn fd_limit() -> Option<u64> {
    let text = fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// A loopback sink that counts every briefcase it receives.
struct Sink {
    listener: TransportListener,
    received: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    drain: Option<std::thread::JoinHandle<()>>,
}

impl Sink {
    fn start(ack_delay: Option<Duration>) -> Sink {
        let mut config = ListenerConfig::trusting("sink");
        config.shards = 4;
        config.ack_delay = ack_delay;
        let listener = TransportListener::bind("127.0.0.1:0", config).expect("bind loopback sink");
        let rx = listener.incoming().clone();
        let received = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (count, drain_stop) = (Arc::clone(&received), Arc::clone(&stop));
        let drain = std::thread::spawn(move || {
            while !drain_stop.load(Ordering::Relaxed) {
                if rx.recv_timeout(Duration::from_millis(50)).is_ok() {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        Sink {
            listener,
            received,
            stop,
            drain: Some(drain),
        }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.listener.local_addr().port())
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
    }
}

/// One measured drive of a reactor: enqueue `frames` sends round-robin
/// across `hosts` with the nowait path, yielding to the completion pump
/// whenever a bounded queue refuses (the backpressure protocol every
/// caller follows), then drain until every frame settles.
struct Drive {
    wall: Duration,
    frames_per_sec: f64,
    lost: usize,
    latencies: Vec<Duration>,
}

#[allow(clippy::cast_precision_loss)]
fn drive(
    transport: &ReactorTransport,
    hosts: &[String],
    frames_per_host: usize,
    wire: &Bytes,
) -> Drive {
    let total = hosts.len() * frames_per_host;
    let mut enqueued_at: Vec<Instant> = Vec::with_capacity(total);
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut lost = 0usize;
    let mut done = 0usize;
    let settle = |c: tacoma_transport::Completion,
                  enqueued_at: &[Instant],
                  latencies: &mut Vec<Duration>,
                  lost: &mut usize| {
        let idx = (c.token - 1) as usize;
        match c.result {
            Ok(()) => latencies.push(enqueued_at[idx].elapsed()),
            Err(_) => *lost += 1,
        }
    };

    let started = Instant::now();
    let mut token = 1u64;
    for _ in 0..frames_per_host {
        for host in hosts {
            loop {
                match transport.send_nowait("bench", host, 0, wire.clone(), token) {
                    Ok(()) => {
                        enqueued_at.push(Instant::now());
                        token += 1;
                        break;
                    }
                    Err(TransportError::QueueFull { .. }) => {
                        for c in transport.drain_completions() {
                            settle(c, &enqueued_at, &mut latencies, &mut lost);
                            done += 1;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(e) => panic!("enqueue failed: {e}"),
                }
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(180);
    while done < total && Instant::now() < deadline {
        let completions = transport.drain_completions();
        if completions.is_empty() {
            std::thread::sleep(Duration::from_micros(500));
        }
        for c in completions {
            settle(c, &enqueued_at, &mut latencies, &mut lost);
            done += 1;
        }
    }
    lost += total - done;
    let wall = started.elapsed();
    Drive {
        wall,
        frames_per_sec: total as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        lost,
        latencies,
    }
}

/// A reactor aimed at one sink, with the given window and queue bound.
fn reactor(
    sink: &Sink,
    hosts: &[String],
    ack_window: usize,
    queue_capacity: usize,
) -> ReactorTransport {
    let mut config = ReactorConfig::default();
    config.connect.local_host = "bench".to_owned();
    config.shards = 4;
    config.ack_window = ack_window;
    config.queue_capacity = queue_capacity;
    // A thousand-peer connect storm through the capped connector pool
    // can outlast the default per-frame budget on one core; the budget
    // is a tunable, not the thing under test.
    config.retry_budget = Duration::from_secs(60);
    let transport = ReactorTransport::new(config);
    let addr = sink.addr();
    for host in hosts {
        transport.add_peer(host.clone(), addr.clone());
    }
    transport
}

/// Median-of-[`REPS`] wall time for one windowed drive over a delayed-ack
/// link, fresh transport per rep so no rep inherits warm connections.
fn windowed_wall(sink: &Sink, frames: usize, ack_window: usize, wire: &Bytes) -> Drive {
    let hosts = vec!["wan-sink".to_owned()];
    let mut reps: Vec<Drive> = (0..REPS)
        .map(|_| {
            let transport = reactor(sink, &hosts, ack_window, 1024);
            let run = drive(&transport, &hosts, frames, wire);
            assert_eq!(run.lost, 0, "delayed-ack link must not lose frames");
            run
        })
        .collect();
    reps.sort_by_key(|r| r.wall);
    reps.into_iter().nth(REPS / 2).expect("at least one rep")
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_precision_loss,
        clippy::cast_sign_loss
    )]
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (wan_frames, rtt, requested_peers, frames_per_peer, bp_frames) = if smoke {
        (48, Duration::from_millis(10), 256, 2, 256)
    } else {
        (256, Duration::from_millis(15), 1024, 4, 512)
    };
    let wire = build_wire();

    // ---- 1. pipelined acks vs stop-and-wait over a WAN-RTT link. ----
    let wan_sink = Sink::start(Some(rtt));
    let stop_and_wait = windowed_wall(&wan_sink, wan_frames, 1, &wire);
    let pipelined = windowed_wall(&wan_sink, wan_frames, 32, &wire);
    drop(wan_sink);
    let speedup = pipelined.frames_per_sec / stop_and_wait.frames_per_sec.max(f64::MIN_POSITIVE);

    // ---- 2. bounded backpressure: overdrive a tiny queue. ----
    let bp_sink = Sink::start(Some(Duration::from_millis(5)));
    let bp_hosts = vec!["bp-sink".to_owned()];
    let bp_capacity = 64;
    let bp_transport = reactor(&bp_sink, &bp_hosts, 32, bp_capacity);
    let bp_run = drive(&bp_transport, &bp_hosts, bp_frames, &wire);
    let bp_stats = bp_transport.stats();
    drop(bp_transport);
    drop(bp_sink);

    // ---- 3. peer scale, clamped to the fd budget. ----
    let limit = fd_limit().unwrap_or(4096);
    #[allow(clippy::cast_possible_truncation)]
    let fd_budget = (limit.saturating_sub(FD_HEADROOM) / 2) as usize;
    let peers = requested_peers.min(fd_budget);
    if peers < requested_peers {
        eprintln!(
            "note: peer count clamped {requested_peers} -> {peers} by fd limit {limit} \
             (two sockets per peer in-process)"
        );
    }
    let scale_sink = Sink::start(None);
    let hosts: Vec<String> = (0..peers).map(|p| format!("peer-{p:05}")).collect();
    let scale_transport = reactor(&scale_sink, &hosts, 32, 1024);
    let mut scale = drive(&scale_transport, &hosts, frames_per_peer, &wire);
    let scale_stats = scale_transport.stats();
    let sent = peers * frames_per_peer;
    // Acks race the inward forward by design; give the sink a beat to
    // drain before comparing counts.
    let wait_until = Instant::now() + Duration::from_secs(5);
    while (scale_sink.received.load(Ordering::Relaxed) as usize) < sent
        && Instant::now() < wait_until
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let received = scale_sink.received.load(Ordering::Relaxed);
    drop(scale_transport);
    drop(scale_sink);
    scale.latencies.sort();
    let p50 = percentile_ms(&scale.latencies, 0.50);
    let p99 = percentile_ms(&scale.latencies, 0.99);
    let lost = scale.lost + sent.saturating_sub(received as usize);

    if json {
        println!("{{");
        println!("  \"bench\": \"reactor_transport\",");
        println!("  \"smoke\": {smoke},");
        println!("  \"wire_bytes\": {},", wire.len());
        println!("  \"pipelined_vs_stop_and_wait\": {{");
        println!("    \"rtt_ms\": {:.0},", rtt.as_secs_f64() * 1e3);
        println!("    \"frames\": {wan_frames},");
        println!(
            "    \"stop_and_wait\": {{ \"wall_ms\": {:.1}, \"frames_per_sec\": {:.0} }},",
            stop_and_wait.wall.as_secs_f64() * 1e3,
            stop_and_wait.frames_per_sec,
        );
        println!(
            "    \"pipelined\": {{ \"ack_window\": 32, \"wall_ms\": {:.1}, \"frames_per_sec\": {:.0} }},",
            pipelined.wall.as_secs_f64() * 1e3,
            pipelined.frames_per_sec,
        );
        println!("    \"speedup\": {speedup:.1}");
        println!("  }},");
        println!("  \"backpressure\": {{");
        println!("    \"queue_capacity\": {bp_capacity},");
        println!("    \"frames\": {bp_frames},");
        println!("    \"queue_drops\": {},", bp_stats.queue_drops);
        println!("    \"queue_high_water\": {},", bp_stats.queue_high_water);
        println!("    \"lost\": {}", bp_run.lost);
        println!("  }},");
        println!("  \"peer_scale\": {{");
        println!("    \"fd_limit\": {limit},");
        println!("    \"requested_peers\": {requested_peers},");
        println!("    \"peers\": {peers},");
        println!("    \"frames\": {sent},");
        println!("    \"received\": {received},");
        println!("    \"lost\": {lost},");
        println!("    \"wall_ms\": {:.1},", scale.wall.as_secs_f64() * 1e3);
        println!("    \"frames_per_sec\": {:.0},", scale.frames_per_sec);
        println!("    \"p50_ms\": {p50:.2},");
        println!("    \"p99_ms\": {p99:.2},");
        println!(
            "    \"queue_high_water\": {},",
            scale_stats.queue_high_water
        );
        println!("    \"reconnects\": {}", scale_stats.reconnects);
        println!("  }}");
        println!("}}");
    } else {
        println!(
            "E12: sharded reactor transport — {}-byte briefcase frames over loopback TCP\n",
            wire.len()
        );
        let widths = [26, 10, 12, 10, 10];
        header(&["run", "wall", "frames/s", "p50", "p99"], &widths);
        row(
            &[
                format!("stop-and-wait @{}ms RTT", rtt.as_millis()),
                format!("{:.0}ms", stop_and_wait.wall.as_secs_f64() * 1e3),
                format!("{:.0}", stop_and_wait.frames_per_sec),
                "-".to_owned(),
                "-".to_owned(),
            ],
            &widths,
        );
        row(
            &[
                format!("pipelined w32 @{}ms RTT", rtt.as_millis()),
                format!("{:.0}ms", pipelined.wall.as_secs_f64() * 1e3),
                format!("{:.0}", pipelined.frames_per_sec),
                "-".to_owned(),
                "-".to_owned(),
            ],
            &widths,
        );
        row(
            &[
                format!("{peers} peers x{frames_per_peer}"),
                format!("{:.0}ms", scale.wall.as_secs_f64() * 1e3),
                format!("{:.0}", scale.frames_per_sec),
                format!("{p50:.2}ms"),
                format!("{p99:.2}ms"),
            ],
            &widths,
        );
        println!("\npipelined / stop-and-wait speedup: {speedup:.1}x");
        println!(
            "backpressure: {} refusals at capacity {bp_capacity}, high water {}, {} lost",
            bp_stats.queue_drops, bp_stats.queue_high_water, bp_run.lost
        );
        println!(
            "peer scale: {received}/{sent} briefcases received, {lost} lost, fd limit {limit}",
        );
    }

    if check {
        let mut failed = false;
        if speedup < SPEEDUP_GATE {
            eprintln!(
                "CHECK FAILED: pipelined speedup {speedup:.1}x below the {SPEEDUP_GATE}x gate"
            );
            failed = true;
        }
        if peers < PEER_GATE {
            eprintln!("CHECK FAILED: peer sweep ran {peers} peers, below the {PEER_GATE} gate");
            failed = true;
        }
        if lost != 0 || bp_run.lost != 0 {
            eprintln!(
                "CHECK FAILED: lost briefcases (peer scale {lost}, backpressure {})",
                bp_run.lost
            );
            failed = true;
        }
        if bp_stats.queue_drops == 0 {
            eprintln!("CHECK FAILED: overdriven queue never refused an enqueue");
            failed = true;
        }
        if p99 <= 0.0 {
            eprintln!("CHECK FAILED: no p99 latency recorded");
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: speedup {speedup:.1}x, {peers} peers, {lost} lost, p99 {p99:.2}ms, \
             {} backpressure refusals",
            bp_stats.queue_drops
        );
    }
    ExitCode::SUCCESS
}
