//! **E3 — Figure 1, the architecture's mediation property.**
//!
//! "The firewall acts as a reference monitor and mediates all local
//! communication between agents, and communication to remote firewalls
//! and agents on remote machines."
//!
//! Drives same-host and cross-host traffic and shows that every exchange
//! appears in firewall statistics; measures the wall-clock mediation
//! overhead per message.

use std::time::Instant;

use tacoma_bench::{header, row};
use tacoma_core::{AgentSpec, SystemBuilder};

const MESSAGES: usize = 200;

fn main() {
    println!("E3: firewall mediation — every briefcase exchange passes the reference monitor\n");

    let mut system = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .host("beta")
        .unwrap()
        .trust_all()
        .build();

    // A sender that fires N local service calls and N remote ones.
    let source = format!(
        r#"
        fn main() {{
            let i = 0;
            while (i < {MESSAGES}) {{
                bc_set("CMD", "append");
                bc_set("ARGS", "local ping " + str(i));
                meet("ag_log");
                bc_set("ARGS", "remote ping " + str(i));
                meet("tacoma://beta/ag_log");
                i = i + 1;
            }}
            exit(0);
        }}
        "#
    );
    let started = Instant::now();
    system
        .launch("alpha", AgentSpec::script("pinger", source))
        .unwrap();
    system.run_until_quiet();
    let elapsed = started.elapsed();

    let alpha = system.host("alpha").unwrap().with_firewall(|fw| fw.stats());
    let beta = system.host("beta").unwrap().with_firewall(|fw| fw.stats());

    let widths = [10, 14, 14, 10, 10, 10];
    header(
        &[
            "firewall",
            "local deliv.",
            "fwd remote",
            "queued",
            "denied",
            "installed",
        ],
        &widths,
    );
    for (name, s) in [("alpha", alpha), ("beta", beta)] {
        row(
            &[
                name.to_owned(),
                s.delivered_local.to_string(),
                s.forwarded_remote.to_string(),
                s.queued.to_string(),
                s.denied.to_string(),
                s.agents_installed.to_string(),
            ],
            &widths,
        );
    }

    let mediated = alpha.total() + beta.total();
    println!();
    println!(
        "agent issued {} local + {} remote RPCs;",
        MESSAGES, MESSAGES
    );
    println!("firewalls mediated {mediated} events in {elapsed:?} wall time");
    println!(
        "mean mediation cost: {:.1} µs/event (host machine dependent)",
        elapsed.as_secs_f64() * 1e6 / mediated.max(1) as f64
    );
    assert!(
        alpha.delivered_local as usize >= MESSAGES,
        "local RPCs must be mediated"
    );
    assert!(
        beta.delivered_local as usize >= MESSAGES,
        "remote RPCs must be mediated by the remote firewall"
    );
}
