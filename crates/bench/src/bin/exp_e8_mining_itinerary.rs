//! **E8 — the §4 data-mining example.**
//!
//! An itinerant mining agent against the classic client-pull design,
//! swept over selectivity (how much the mining *condenses* the data).
//! The paper's argument in one table: the agent wins when it brings back
//! a reduced set; it loses when it ends up dragging the data along its
//! itinerary anyway.

use tacoma_bench::mining::{run_client_pull, run_mobile_agent, MiningParams};
use tacoma_bench::{fmt_bytes, fmt_duration, header, row};

fn main() {
    println!("E8: itinerant mining agent vs client pull");
    println!("    4 servers x 200 records x 4 KB, 100 Mbit LAN, selectivity sweep\n");

    let widths = [12, 13, 13, 13, 13, 9];
    header(
        &[
            "selectivity",
            "pull bytes",
            "agent bytes",
            "pull time",
            "agent time",
            "winner",
        ],
        &widths,
    );

    let mut crossed_over = false;
    let mut prev_agent_bytes = 0u64;
    for selectivity in [0.01, 0.05, 0.10, 0.25, 0.50, 0.90] {
        let params = MiningParams {
            selectivity,
            ..MiningParams::default()
        };
        let pull = run_client_pull(&params);
        let agent = run_mobile_agent(&params);
        assert_eq!(
            pull.matches, agent.matches,
            "designs must agree on the answer"
        );

        let winner = if agent.network_bytes < pull.network_bytes {
            "agent"
        } else {
            "pull"
        };
        if winner == "pull" {
            crossed_over = true;
        }
        row(
            &[
                format!("{:.0}%", selectivity * 100.0),
                fmt_bytes(pull.network_bytes),
                fmt_bytes(agent.network_bytes),
                fmt_duration(pull.elapsed),
                fmt_duration(agent.elapsed),
                winner.to_owned(),
            ],
            &widths,
        );

        // Shape: the agent's traffic grows with selectivity (it carries
        // more matches); the pull's traffic is selectivity-independent.
        assert!(
            agent.network_bytes >= prev_agent_bytes,
            "agent bytes must grow with selectivity"
        );
        prev_agent_bytes = agent.network_bytes;
    }

    println!();
    assert!(
        crossed_over,
        "high selectivity must hand the win to client pull"
    );
    println!("expected shape: the agent wins at low selectivity (data condensed at the source),");
    println!("and loses past the crossover where carried results approach the raw data volume.");
}
