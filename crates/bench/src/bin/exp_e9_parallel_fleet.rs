//! **E9 — the parallel tick scheduler on a Webbot fleet.**
//!
//! Runs the same `K`-pair mobilized-Webbot fleet under the sequential
//! scheduler and under the BSP tick scheduler, and reports both clocks:
//!
//! * **virtual makespan** — simulated time at quiescence. Under the tick
//!   scheduler the per-tick barrier advances the global clock to the
//!   *slowest* batch instead of the sum of all batches, so disjoint pairs
//!   overlap and the makespan collapses toward one scan's length.
//! * **wall clock** — real time to run the scheduler, reported as the
//!   minimum over several repetitions so the CI regression gate is not
//!   at the mercy of container noise. The scheduler clamps fan-out to
//!   the machine's parallelism, so on a single-core container tick-4
//!   legitimately costs the same wall time as tick-1 instead of paying
//!   for thread handoffs nobody can run.
//!
//! Also times the briefcase decode path both ways — `decode` (copies
//! every element out of the wire buffer) vs `decode_bytes` (elements are
//! zero-copy slices of one shared `Bytes`) — and the briefcase-migration
//! hot path both ways (legacy deep-clone-per-peer vs CoW clones over one
//! cached encoding; see `tacoma_bench::migrate`).
//!
//! Also times firewall admission of the same bytecode agent cold (full
//! decode + verify + flow analysis every time) vs warm (the shared
//! content-hash verified-script cache) — the per-hop cost an itinerant
//! agent pays at every firewall after the first.
//!
//! With `--json` the results are emitted as a JSON object (the format
//! checked in as `BENCH_6.json`); `--smoke` shrinks the workload for CI;
//! `--check` exits non-zero if tick-4 wall clock exceeds tick-1 by more
//! than 25%, the migration speedup falls below 5x, or the warm-cache
//! admission speedup falls below 5x (the CI gates).

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tacoma_bench::{fmt_duration, header, migrate, row};
use tacoma_briefcase::{folders, Briefcase};
use tacoma_firewall::{AdmissionPolicy, AdmissionVerdict};
use tacoma_security::Rights;
use tacoma_vm::code_types;
use tacoma_webbot::fleet::{run_fleet, FleetParams};

/// Iterations for the codec timing loop.
const CODEC_ITERS: u32 = 200;

/// Wall-clock repetitions per scheduler configuration (minimum is kept).
const WALL_REPS: usize = 3;

/// The CI gate: tick-4 wall clock may exceed tick-1 by at most this
/// factor.
const WALL_GATE: f64 = 1.25;

/// The CI gate on the migration microbench speedup.
const MIGRATE_GATE: f64 = 5.0;

/// The CI gate on the warm-cache admission speedup: a hop after the
/// first must be at least this much cheaper to admit than a cold
/// analysis.
const ADMISSION_GATE: f64 = 5.0;

struct Measurement {
    label: &'static str,
    threads: usize,
    wall: Duration,
    virtual_makespan: Duration,
    steps: usize,
}

/// Runs one scheduler configuration `WALL_REPS` times, keeping the
/// minimum wall clock. Virtual time and step counts are deterministic
/// per configuration, so only the wall clock varies between reps.
fn measure(label: &'static str, params: &FleetParams, threads: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..WALL_REPS {
        let started = Instant::now();
        let outcome = run_fleet(params, threads);
        let m = Measurement {
            label,
            threads,
            wall: started.elapsed(),
            virtual_makespan: outcome.virtual_makespan,
            steps: outcome.steps,
        };
        best = Some(match best {
            Some(prev) if prev.wall <= m.wall => prev,
            _ => m,
        });
    }
    best.expect("WALL_REPS >= 1")
}

/// Builds a briefcase about the size one fleet pair ships home and times
/// both decoders over it. Returns (decode, decode_bytes) total times.
fn time_codec(smoke: bool) -> (Duration, Duration, usize) {
    let mut bc = Briefcase::new();
    let folder_count = if smoke { 8 } else { 64 };
    for f in 0..folder_count {
        for e in 0..16 {
            bc.append(&format!("FOLDER-{f}"), vec![e as u8; 512]);
        }
    }
    let wire = bc.encode();
    let shared = bytes::Bytes::from(wire.clone());

    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        let decoded = Briefcase::decode(&wire).expect("valid wire");
        std::hint::black_box(decoded);
    }
    let copying = started.elapsed();

    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        let decoded = Briefcase::decode_bytes(&shared).expect("valid wire");
        std::hint::black_box(decoded);
    }
    let zero_copy = started.elapsed();
    (copying, zero_copy, wire.len())
}

struct MigrateResult {
    folders: usize,
    elements: usize,
    element_bytes: usize,
    fanout: usize,
    hops: usize,
    legacy: Duration,
    cow: Duration,
}

impl MigrateResult {
    fn speedup(&self) -> f64 {
        self.legacy.as_secs_f64() / self.cow.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Times the clone-heavy itinerary hop both ways (the acceptance case of
/// the CoW rebuild): every hop mutates one folder then fans the state out
/// to `fanout` peers.
fn time_migrate(smoke: bool) -> MigrateResult {
    let (folders, elements, element_bytes, fanout, hops) = if smoke {
        (12, 4, 512, 8, 20)
    } else {
        (24, 6, 2048, 8, 50)
    };
    let base = migrate::build_state(folders, elements, element_bytes);

    let mut bc = migrate::legacy_clone(&base);
    let started = Instant::now();
    for hop in 0..hops {
        migrate::hop_legacy(&mut bc, hop, fanout);
    }
    let legacy = started.elapsed();

    let mut bc = base.clone();
    let started = Instant::now();
    for hop in 0..hops {
        migrate::hop_cow(&mut bc, hop, fanout);
    }
    let cow = started.elapsed();

    MigrateResult {
        folders,
        elements,
        element_bytes,
        fanout,
        hops,
        legacy,
        cow,
    }
}

struct AdmissionResult {
    iters: u32,
    wire_bytes: usize,
    instructions: usize,
    cold: Duration,
    warm: Duration,
}

impl AdmissionResult {
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// A sizeable generated agent: `blocks` stanzas of folder traffic and a
/// travel branch, so decode + verify + flow analysis have real work.
fn admission_agent(blocks: usize) -> String {
    let mut src = String::from("fn main() {\n");
    for b in 0..blocks {
        let _ = write!(
            src,
            "    bc_append(\"RESULTS-{b}\", host_name());\n    \
             let n{b} = bc_len(\"RESULTS-{b}\");\n    \
             if (n{b} > 100) {{ bc_remove(\"RESULTS-{b}\", 0); }}\n    \
             if (n{b} < 0) {{ if (go(\"tacoma://h{b}/vm_script\")) {{ display(\"x\"); }} }}\n"
        );
    }
    src.push_str("    exit(0);\n}\n");
    src
}

/// Times firewall admission of one bytecode agent cold (cache disabled,
/// the full pipeline every iteration — what every hop used to pay) vs
/// warm (shared content-hash cache, primed by one miss).
fn time_admission(smoke: bool) -> AdmissionResult {
    let (blocks, iters) = if smoke { (12, 50) } else { (48, 200) };
    let source = admission_agent(blocks);
    let program = tacoma_taxscript::compile_source(&source).expect("generated agent compiles");
    let mut bc = Briefcase::new();
    bc.append(folders::CODE, program.encode());
    bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);

    let cold_policy = AdmissionPolicy {
        use_cache: false,
        ..AdmissionPolicy::default()
    };
    let warm_policy = AdmissionPolicy::default();
    // Prime the shared cache so the warm loop measures steady-state hits.
    let primed = warm_policy.check(&bc, Rights::ALL).expect("agent admits");
    assert!(matches!(primed, AdmissionVerdict::Verified { .. }));

    let started = Instant::now();
    for _ in 0..iters {
        let verdict = cold_policy.check(&bc, Rights::ALL).expect("agent admits");
        std::hint::black_box(verdict);
    }
    let cold = started.elapsed();

    let started = Instant::now();
    for _ in 0..iters {
        let verdict = warm_policy.check(&bc, Rights::ALL).expect("agent admits");
        std::hint::black_box(verdict);
    }
    let warm = started.elapsed();

    AdmissionResult {
        iters,
        wire_bytes: program.encode().len(),
        instructions: program.instruction_count(),
        cold,
        warm,
    }
}

#[allow(clippy::too_many_lines)] // one linear report: measure, print, gate
fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let params = if smoke {
        FleetParams {
            pages: 10,
            total_bytes: 100_000,
            ..FleetParams::default()
        }
    } else {
        FleetParams::default()
    };

    let runs = [
        measure("sequential", &params, 0),
        measure("tick, 1 worker", &params, 1),
        measure("tick, 4 workers", &params, 4),
    ];
    let (codec_copy, codec_zero, wire_len) = time_codec(smoke);
    let migration = time_migrate(smoke);
    let admission = time_admission(smoke);

    let seq = &runs[0];
    let tick1 = &runs[1];
    let tick4 = &runs[2];
    let makespan_speedup = seq.virtual_makespan.as_secs_f64()
        / tick4.virtual_makespan.as_secs_f64().max(f64::MIN_POSITIVE);
    let wall_speedup = tick1.wall.as_secs_f64() / tick4.wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let decode_speedup = codec_copy.as_secs_f64() / codec_zero.as_secs_f64().max(f64::MIN_POSITIVE);

    if json {
        println!("{{");
        println!("  \"bench\": \"parallel_fleet\",");
        println!("  \"pairs\": {},", params.plan.len());
        println!("  \"pages_per_server\": {},", params.pages);
        println!("  \"smoke\": {smoke},");
        println!("  \"wall_reps\": {WALL_REPS},");
        println!("  \"runs\": [");
        for (i, m) in runs.iter().enumerate() {
            let comma = if i + 1 < runs.len() { "," } else { "" };
            println!(
                "    {{ \"label\": \"{}\", \"threads\": {}, \"wall_ms\": {:.1}, \"virtual_makespan_ms\": {:.3}, \"steps\": {} }}{comma}",
                m.label,
                m.threads,
                m.wall.as_secs_f64() * 1e3,
                m.virtual_makespan.as_secs_f64() * 1e3,
                m.steps,
            );
        }
        println!("  ],");
        println!("  \"virtual_makespan_speedup\": {makespan_speedup:.2},");
        println!("  \"wall_clock_speedup\": {wall_speedup:.2},");
        println!("  \"codec\": {{");
        println!("    \"wire_bytes\": {wire_len},");
        println!("    \"iterations\": {CODEC_ITERS},");
        println!("    \"decode_ms\": {:.2},", codec_copy.as_secs_f64() * 1e3);
        println!(
            "    \"decode_bytes_ms\": {:.2},",
            codec_zero.as_secs_f64() * 1e3
        );
        println!("    \"zero_copy_speedup\": {decode_speedup:.2}");
        println!("  }},");
        println!("  \"briefcase_migrate\": {{");
        println!("    \"folders\": {},", migration.folders);
        println!("    \"elements_per_folder\": {},", migration.elements);
        println!("    \"element_bytes\": {},", migration.element_bytes);
        println!("    \"fanout\": {},", migration.fanout);
        println!("    \"hops\": {},", migration.hops);
        println!(
            "    \"legacy_ms\": {:.2},",
            migration.legacy.as_secs_f64() * 1e3
        );
        println!("    \"cow_ms\": {:.2},", migration.cow.as_secs_f64() * 1e3);
        println!("    \"speedup\": {:.2}", migration.speedup());
        println!("  }},");
        println!("  \"admission_cache\": {{");
        println!("    \"wire_bytes\": {},", admission.wire_bytes);
        println!("    \"instructions\": {},", admission.instructions);
        println!("    \"iterations\": {},", admission.iters);
        println!(
            "    \"cold_ms\": {:.2},",
            admission.cold.as_secs_f64() * 1e3
        );
        println!(
            "    \"warm_ms\": {:.2},",
            admission.warm.as_secs_f64() * 1e3
        );
        println!("    \"warm_speedup\": {:.2}", admission.speedup());
        println!("  }}");
        println!("}}");
    } else {
        println!(
            "E9: parallel tick scheduler vs sequential, {}-pair Webbot fleet",
            params.plan.len()
        );
        println!(
            "    {} pages / {} bytes per server, depth {} (wall = min of {WALL_REPS} reps)\n",
            params.pages, params.total_bytes, params.max_depth
        );
        let widths = [18, 10, 12, 18, 10];
        header(
            &["scheduler", "threads", "wall", "virtual makespan", "steps"],
            &widths,
        );
        for m in &runs {
            row(
                &[
                    m.label.to_owned(),
                    m.threads.to_string(),
                    fmt_duration(m.wall),
                    fmt_duration(m.virtual_makespan),
                    m.steps.to_string(),
                ],
                &widths,
            );
        }
        println!("\nvirtual makespan speedup (sequential / tick-4): {makespan_speedup:.2}x");
        println!("wall clock speedup (tick-1 / tick-4): {wall_speedup:.2}x");
        println!(
            "codec on a {wire_len}-byte briefcase x{CODEC_ITERS}: decode {} vs decode_bytes {} ({decode_speedup:.2}x)",
            fmt_duration(codec_copy),
            fmt_duration(codec_zero),
        );
        println!(
            "briefcase_migrate ({} folders x {} x {}B, fanout {}, {} hops): legacy {} vs cow {} ({:.2}x)",
            migration.folders,
            migration.elements,
            migration.element_bytes,
            migration.fanout,
            migration.hops,
            fmt_duration(migration.legacy),
            fmt_duration(migration.cow),
            migration.speedup(),
        );
        println!(
            "admission_cache ({}-byte agent, {} instructions, x{}): cold {} vs warm {} ({:.2}x)",
            admission.wire_bytes,
            admission.instructions,
            admission.iters,
            fmt_duration(admission.cold),
            fmt_duration(admission.warm),
            admission.speedup(),
        );
    }

    if check {
        let mut failed = false;
        if tick4.wall.as_secs_f64() > tick1.wall.as_secs_f64() * WALL_GATE {
            eprintln!(
                "CHECK FAILED: tick-4 wall {:.1}ms exceeds tick-1 wall {:.1}ms by more than {:.0}%",
                tick4.wall.as_secs_f64() * 1e3,
                tick1.wall.as_secs_f64() * 1e3,
                (WALL_GATE - 1.0) * 100.0,
            );
            failed = true;
        }
        if migration.speedup() < MIGRATE_GATE {
            eprintln!(
                "CHECK FAILED: briefcase_migrate speedup {:.2}x below the {MIGRATE_GATE}x gate",
                migration.speedup(),
            );
            failed = true;
        }
        if admission.speedup() < ADMISSION_GATE {
            eprintln!(
                "CHECK FAILED: admission_cache warm speedup {:.2}x below the {ADMISSION_GATE}x gate",
                admission.speedup(),
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: wall tick-4/tick-1 = {:.2}, briefcase_migrate = {:.2}x, admission_cache = {:.2}x",
            tick4.wall.as_secs_f64() / tick1.wall.as_secs_f64().max(f64::MIN_POSITIVE),
            migration.speedup(),
            admission.speedup(),
        );
    }
    ExitCode::SUCCESS
}
