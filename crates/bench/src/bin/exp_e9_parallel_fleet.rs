//! **E9 — the parallel tick scheduler on a Webbot fleet.**
//!
//! Runs the same `K`-pair mobilized-Webbot fleet under the sequential
//! scheduler and under the BSP tick scheduler, and reports both clocks:
//!
//! * **virtual makespan** — simulated time at quiescence. Under the tick
//!   scheduler the per-tick barrier advances the global clock to the
//!   *slowest* batch instead of the sum of all batches, so disjoint pairs
//!   overlap and the makespan collapses toward one scan's length.
//! * **wall clock** — real time to run the scheduler. On a single-core
//!   container the tick scheduler buys no wall time (there is only one
//!   CPU to share); the honest number is printed anyway.
//!
//! Also times the briefcase decode path both ways — `decode` (copies
//! every element out of the wire buffer) vs `decode_bytes` (elements are
//! zero-copy slices of one shared `Bytes`) — on a fleet-sized briefcase.
//!
//! With `--json` the results are emitted as a JSON object (the format
//! checked in as `BENCH_4.json`); `--smoke` shrinks the workload for CI.

use std::env;
use std::time::{Duration, Instant};

use tacoma_bench::{fmt_duration, header, row};
use tacoma_briefcase::Briefcase;
use tacoma_webbot::fleet::{run_fleet, FleetParams};

/// Iterations for the codec timing loop.
const CODEC_ITERS: u32 = 200;

struct Measurement {
    label: &'static str,
    threads: usize,
    wall: Duration,
    virtual_makespan: Duration,
    steps: usize,
}

fn measure(label: &'static str, params: &FleetParams, threads: usize) -> Measurement {
    let started = Instant::now();
    let outcome = run_fleet(params, threads);
    Measurement {
        label,
        threads,
        wall: started.elapsed(),
        virtual_makespan: outcome.virtual_makespan,
        steps: outcome.steps,
    }
}

/// Builds a briefcase about the size one fleet pair ships home and times
/// both decoders over it. Returns (decode, decode_bytes) total times.
fn time_codec(smoke: bool) -> (Duration, Duration, usize) {
    let mut bc = Briefcase::new();
    let folder_count = if smoke { 8 } else { 64 };
    for f in 0..folder_count {
        for e in 0..16 {
            bc.append(&format!("FOLDER-{f}"), vec![e as u8; 512]);
        }
    }
    let wire = bc.encode();
    let shared = bytes::Bytes::from(wire.clone());

    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        let decoded = Briefcase::decode(&wire).expect("valid wire");
        std::hint::black_box(decoded);
    }
    let copying = started.elapsed();

    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        let decoded = Briefcase::decode_bytes(&shared).expect("valid wire");
        std::hint::black_box(decoded);
    }
    let zero_copy = started.elapsed();
    (copying, zero_copy, wire.len())
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");

    let params = if smoke {
        FleetParams {
            pages: 10,
            total_bytes: 100_000,
            ..FleetParams::default()
        }
    } else {
        FleetParams::default()
    };

    let runs = [
        measure("sequential", &params, 0),
        measure("tick, 1 worker", &params, 1),
        measure("tick, 4 workers", &params, 4),
    ];
    let (codec_copy, codec_zero, wire_len) = time_codec(smoke);

    let seq = &runs[0];
    let par = &runs[2];
    let makespan_speedup = seq.virtual_makespan.as_secs_f64()
        / par.virtual_makespan.as_secs_f64().max(f64::MIN_POSITIVE);
    let decode_speedup = codec_copy.as_secs_f64() / codec_zero.as_secs_f64().max(f64::MIN_POSITIVE);

    if json {
        println!("{{");
        println!("  \"bench\": \"parallel_fleet\",");
        println!("  \"pairs\": {},", params.pairs);
        println!("  \"pages_per_server\": {},", params.pages);
        println!("  \"smoke\": {smoke},");
        println!("  \"runs\": [");
        for (i, m) in runs.iter().enumerate() {
            let comma = if i + 1 < runs.len() { "," } else { "" };
            println!(
                "    {{ \"label\": \"{}\", \"threads\": {}, \"wall_ms\": {:.1}, \"virtual_makespan_ms\": {:.3}, \"steps\": {} }}{comma}",
                m.label,
                m.threads,
                m.wall.as_secs_f64() * 1e3,
                m.virtual_makespan.as_secs_f64() * 1e3,
                m.steps,
            );
        }
        println!("  ],");
        println!("  \"virtual_makespan_speedup\": {makespan_speedup:.2},");
        println!("  \"codec\": {{");
        println!("    \"wire_bytes\": {wire_len},");
        println!("    \"iterations\": {CODEC_ITERS},");
        println!("    \"decode_ms\": {:.2},", codec_copy.as_secs_f64() * 1e3);
        println!(
            "    \"decode_bytes_ms\": {:.2},",
            codec_zero.as_secs_f64() * 1e3
        );
        println!("    \"zero_copy_speedup\": {decode_speedup:.2}");
        println!("  }}");
        println!("}}");
        return;
    }

    println!(
        "E9: parallel tick scheduler vs sequential, {}-pair Webbot fleet",
        params.pairs
    );
    println!(
        "    {} pages / {} bytes per server, depth {}\n",
        params.pages, params.total_bytes, params.max_depth
    );
    let widths = [18, 10, 12, 18, 10];
    header(
        &["scheduler", "threads", "wall", "virtual makespan", "steps"],
        &widths,
    );
    for m in &runs {
        row(
            &[
                m.label.to_owned(),
                m.threads.to_string(),
                fmt_duration(m.wall),
                fmt_duration(m.virtual_makespan),
                m.steps.to_string(),
            ],
            &widths,
        );
    }
    println!("\nvirtual makespan speedup (sequential / tick-4): {makespan_speedup:.2}x");
    println!(
        "codec on a {wire_len}-byte briefcase x{CODEC_ITERS}: decode {} vs decode_bytes {} ({decode_speedup:.2}x)",
        fmt_duration(codec_copy),
        fmt_duration(codec_zero),
    );
}
