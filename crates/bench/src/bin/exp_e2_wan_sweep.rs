//! **E2 — the paper's §5 conjecture.**
//!
//! "If the client and server is separated by a wide area network and the
//! volume of data much greater, it is conceivable that the mobile Webbot
//! would be even faster than its stationary counterpart."
//!
//! Sweeps link bandwidth/latency and site volume; prints the speedup
//! surface. Expected shape: the mobile advantage grows monotonically as
//! bandwidth drops and volume grows.

use std::time::Duration;

use tacoma_bench::{fmt_duration, header, row};
use tacoma_core::LinkSpec;
use tacoma_webbot::experiment::{run_mobile, run_stationary, speedup, CaseStudyParams};

fn main() {
    println!("E2: WAN sweep — scan-time speedup of the mobile Webbot over the stationary one\n");

    let links: [(&str, LinkSpec); 4] = [
        ("100Mbit LAN 0.15ms", LinkSpec::lan_100mbit()),
        ("10Mbit LAN 0.8ms", LinkSpec::lan_10mbit()),
        (
            "2Mbit WAN 25ms",
            LinkSpec::wan(2_000_000, Duration::from_millis(25)),
        ),
        (
            "512kbit WAN 75ms",
            LinkSpec::wan(512_000, Duration::from_millis(75)),
        ),
    ];
    let volumes: [(&str, u64); 3] = [
        ("3MB", 3_000_000),
        ("12MB", 12_000_000),
        ("30MB", 30_000_000),
    ];

    let widths = [20, 14, 14, 14, 10];
    header(
        &["link", "volume", "stationary", "mobile", "speedup"],
        &widths,
    );

    let mut prior_speedup_per_volume = vec![f64::MIN; volumes.len()];
    for (link_name, link) in links {
        for (vi, (vol_name, volume)) in volumes.iter().enumerate() {
            let params = CaseStudyParams::paper()
                .with_link(link)
                .with_volume(*volume);
            let stationary = run_stationary(&params);
            let mobile = run_mobile(&params);
            let s = speedup(stationary.scan_time, mobile.scan_time);
            row(
                &[
                    link_name.to_owned(),
                    (*vol_name).to_owned(),
                    fmt_duration(stationary.scan_time),
                    fmt_duration(mobile.scan_time),
                    format!("{:.1}%", 100.0 * s),
                ],
                &widths,
            );
            // Shape check: slower links never shrink the advantage.
            assert!(
                s >= prior_speedup_per_volume[vi] - 0.02,
                "speedup regressed on a slower link: {s} after {}",
                prior_speedup_per_volume[vi]
            );
            prior_speedup_per_volume[vi] = s;
        }
        println!();
    }
    println!("expected shape: speedup grows as bandwidth drops and volume grows;");
    println!("on the WAN rows the mobile agent is no longer ~16% but several times faster.");
}
