//! **E4 — Figure 2, the agent-URI grammar.**
//!
//! Parses the paper's own examples and a corpus covering every production
//! of the EBNF, then demonstrates the §3.2 matching semantics.

use tacoma_bench::{header, row};
use tacoma_uri::{AgentAddress, AgentUri, Instance};

fn main() {
    println!("E4: the Figure-2 agent-URI grammar\n");

    let corpus: &[(&str, bool)] = &[
        // The figure's own examples.
        ("tacoma://cl2.cs.uit.no:27017//vm_c:933821661", true),
        ("tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron", true),
        ("tacomaproject/:933821661", true),
        // Each production exercised.
        ("ag_fs", true),
        (":deadbeef", true),
        ("webbot:42", true),
        ("tacoma://h1/ag_exec", true),
        ("tacoma://h1:1234/p/a:1", true),
        // Malformed forms.
        ("", false),
        ("tacoma://h1", false),
        ("tacoma://h1/", false),
        ("tacoma://h1:999999/x", false),
        ("name:xyz", false),
        ("a/b/c/d", false),
        ("bad name", false),
    ];

    let widths = [48, 10, 26];
    header(&["input", "parses?", "parsed parts"], &widths);
    let mut all_ok = true;
    for (input, expected) in corpus {
        let parsed = input.parse::<AgentUri>();
        let ok = parsed.is_ok() == *expected;
        all_ok &= ok;
        let parts = match &parsed {
            Ok(uri) => format!(
                "host={} name={} inst={}",
                uri.host().unwrap_or("-"),
                uri.name().unwrap_or("-"),
                uri.instance()
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "-".into())
            ),
            Err(e) => format!("({e})"),
        };
        row(
            &[
                format!("{input:?}"),
                format!(
                    "{}{}",
                    if parsed.is_ok() { "yes" } else { "no" },
                    if ok { "" } else { " !!" }
                ),
                parts,
            ],
            &widths,
        );
    }
    assert!(all_ok, "corpus expectations violated");

    println!("\nmatching semantics (§3.2): registered agent alice/webbot:2a");
    let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(0x2a));
    let cases = [
        ("alice/webbot:2a", "exact match"),
        ("alice/webbot", "name only — any instance"),
        ("alice/:2a", "instance only — any name"),
        (
            "webbot",
            "no principal — sender must own it or be the system",
        ),
    ];
    let widths = [24, 18, 44];
    header(&["target", "match (as alice)?", "rule"], &widths);
    for (target, rule) in cases {
        let uri: AgentUri = target.parse().unwrap();
        let outcome = agent.matches(&uri, "system@h1", "alice");
        row(
            &[
                target.to_owned(),
                format!("{:?}", outcome.is_match()),
                rule.to_owned(),
            ],
            &widths,
        );
        assert!(outcome.is_match());
    }
    let uri: AgentUri = "webbot".parse().unwrap();
    let denied = agent.matches(&uri, "system@h1", "mallory");
    println!(
        "\nas mallory, bare \"webbot\" resolves: {:?} (expected PrincipalDenied)",
        denied
    );
    assert!(!denied.is_match());
}
