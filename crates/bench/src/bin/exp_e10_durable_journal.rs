//! **E10 — durability tax of the journal on the park/ship pipeline.**
//!
//! Runs the same park → deliver → ship cycle a journaling `taxd` performs
//! for every hop — decode the arriving message, park it in the pending
//! queue, drain it, then ship a hop over a real loopback TCP connection
//! and wait for the ack — with no journal (the in-memory baseline) and
//! with a durable journal at several fsync-batch settings.
//!
//! The pipeline runs on a small fleet of sender threads sharing one
//! journal, the shape of a real daemon (listener connection threads plus
//! the scheduler all appending to the same log). Write-ahead records for
//! a burst of `fsync_batch` cycles are journaled through one
//! [`tacoma_journal::Journal::with_group`] group commit, and — because
//! syncs are leader/follower — concurrent bursts from different threads
//! share fsyncs instead of queueing behind each other. At batch 1 every
//! write-ahead record pays for its own durability before the cycle can
//! proceed: the worst case group commit exists to avoid.
//!
//! Also reports the raw write-ahead amortization curve: microseconds per
//! durable `hop-begin` record as the group-commit burst grows.
//!
//! With `--json` the results are emitted as a JSON object (the format
//! checked in as `BENCH_7.json`); `--smoke` shrinks the workload for CI;
//! `--check` exits non-zero if the best journaled throughput at
//! fsync-batch >= 8 falls below half the in-memory baseline, or if group
//! commit stops amortizing (batch-32 write-ahead latency not below
//! batch-1).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;
use tacoma_bench::{fmt_duration, header, row};
use tacoma_briefcase::Briefcase;
use tacoma_firewall::{Message, PendingQueue};
use tacoma_journal::{Journal, JournalConfig, OpenHop};
use tacoma_security::Principal;
use tacoma_simnet::SimTime;
use tacoma_transport::{ListenerConfig, TcpConfig, TcpTransport, Transport, TransportListener};

/// Sender threads sharing the journal — the daemon's listener/scheduler
/// concurrency, and what lets group commit amortize fsyncs across hops.
const THREADS: usize = 4;

/// Group-commit burst sizes swept by both the pipeline and the latency
/// microbench. The CI gate reads the entries at or above 8.
const BATCHES: [usize; 3] = [1, 8, 32];

/// The CI gate: the best journaled throughput at fsync-batch >= 8 must be
/// at least this fraction of the in-memory baseline.
const THROUGHPUT_GATE: f64 = 0.5;

/// A unique scratch journal directory.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tacoma_e10_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The message every cycle ships: an agent transfer carrying a
/// survey-sized briefcase (a few KB of folders, the shape a mobilized
/// Webbot accumulates per site).
fn build_transfer_wire(smoke: bool) -> Bytes {
    let mut bc = Briefcase::new();
    let folders = if smoke { 3 } else { 5 };
    for f in 0..folders {
        for e in 0..8u8 {
            bc.append(&format!("RESULTS-{f}"), vec![e; 64]);
        }
    }
    let message = Message::transfer(
        "bench",
        Principal::local_system("bench"),
        "tacoma://sink/vm_script".parse().expect("valid uri"),
        bc,
        false,
    );
    Bytes::from(message.encode())
}

/// The message every cycle parks: a small meet/activation delivery — what
/// the firewall actually holds for an absent agent — not the multi-KB
/// transfer, which never sits in the pending queue.
fn build_park_wire() -> Bytes {
    let mut bc = Briefcase::new();
    bc.append("CONTACT", b"activate probe".to_vec());
    let message = Message::deliver(
        "bench",
        Principal::local_system("bench"),
        None,
        "tacoma://sink/probe".parse().expect("valid uri"),
        bc,
    );
    Bytes::from(message.encode())
}

/// A loopback sink: accepts connections, acks briefcase frames, and
/// discards the payloads on a drain thread.
struct Sink {
    listener: TransportListener,
    stop: Arc<AtomicBool>,
    drain: Option<std::thread::JoinHandle<()>>,
}

impl Sink {
    fn start() -> Sink {
        let listener = TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("sink"))
            .expect("bind loopback sink");
        let rx = listener.incoming().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let drain_stop = Arc::clone(&stop);
        let drain = std::thread::spawn(move || {
            while !drain_stop.load(Ordering::Relaxed) {
                let _ = rx.recv_timeout(Duration::from_millis(50));
            }
        });
        Sink {
            listener,
            stop,
            drain: Some(drain),
        }
    }

    fn port(&self) -> u16 {
        self.listener.local_addr().port()
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
    }
}

struct PipelineRun {
    label: String,
    fsync_batch: usize,
    wall: Duration,
    ops_per_sec: f64,
    fsyncs: u64,
}

/// One sender thread's share of the pipeline: `cycles` park/deliver/ship
/// cycles in bursts of `burst`. With a journal, each burst journals its
/// write-ahead parks in one group commit, then its deliveries and hop
/// begins in a second, then ships each hop over the wire and journals
/// the (backstop-batched) commit.
#[allow(clippy::too_many_arguments)]
fn sender_thread(
    label: &str,
    thread: usize,
    cycles: usize,
    burst: usize,
    park_wire: &Bytes,
    wire: &Bytes,
    port: u16,
    journal: Option<&Journal>,
    start: &Barrier,
) {
    let transport = TcpTransport::new(TcpConfig::default());
    transport.add_peer("sink", format!("127.0.0.1:{port}"));
    // Open the connection pool outside the timed region.
    transport
        .send("bench", "sink", port, wire)
        .expect("loopback warmup");
    let mut queue = PendingQueue::new();
    let now = SimTime::from_nanos(0);
    let drain_at = SimTime::from_nanos(u64::MAX);
    let timeout = Duration::from_secs(30);
    start.wait();

    let mut cycle = 0usize;
    let mut shipped: Vec<String> = Vec::new();
    // Stagger each thread's first burst so burst-end sync points spread
    // out instead of convoying: released by one barrier with identical
    // burst sizes, every thread would otherwise reach its group commit at
    // the same instant and the whole fleet would sit in the same fsync
    // I/O wait with no runnable thread left to ship hops.
    let mut next = burst + thread * burst / THREADS;
    while cycle < cycles {
        let chunk = next.min(cycles - cycle);
        next = burst;

        // Park: decode each arriving activation and queue it, then drain
        // the burst back out of the queue.
        for _ in 0..chunk {
            let message = Message::decode_bytes(park_wire).expect("valid wire");
            queue.enqueue(message, now, timeout);
        }
        let expired = queue.expire(drain_at);
        assert_eq!(expired.count, chunk, "drain must empty the burst");

        // Journal the burst in ONE group commit: the previous burst's hop
        // commits (completion records need no sync of their own — they
        // ride along), then this burst's write-ahead parks, deliveries,
        // and outbound hop begins. One blocking sync per burst, shared
        // with whatever the other sender threads have appended.
        if let Some(j) = journal {
            let commits = std::mem::take(&mut shipped);
            j.with_group(|group| {
                for key in &commits {
                    group.hop_committed(key)?;
                }
                for _ in 0..chunk {
                    let key = group.mail_parked(timeout, park_wire)?;
                    group.mail_delivered(key)?;
                }
                for i in 0..chunk {
                    group.hop_begin(
                        &format!("{label}-t{thread}-{:08x}", cycle + i),
                        None,
                        false,
                        "sink",
                        wire,
                    )?;
                }
                Ok(())
            })
            .expect("journal burst");
        }

        // Ship: each begun hop crosses the real loopback wire; its commit
        // record is journaled with the next burst's group.
        for i in 0..chunk {
            transport
                .send("bench", "sink", port, wire)
                .expect("loopback send");
            if journal.is_some() {
                shipped.push(format!("{label}-t{thread}-{:08x}", cycle + i));
            }
        }
        cycle += chunk;
    }
    // Commit the final burst's hops.
    if let Some(j) = journal {
        j.with_group(|group| {
            for key in &shipped {
                group.hop_committed(key)?;
            }
            Ok(())
        })
        .expect("journal final commits");
    }
}

/// Timed repetitions per configuration; the median is reported. On a
/// small shared VM a single run is hostage to scheduler noise in both
/// directions — the median damps outlier-slow and outlier-fast reps
/// alike, which matters because the gate is a ratio of two such walls.
const REPS: usize = 3;

/// Runs `cycles` total cycles across [`THREADS`] sender threads, each
/// with its own pending queue and loopback connection pool, sharing the
/// journal (when present) exactly as a daemon's threads share its log.
/// Repeats [`REPS`] times and keeps the median run by wall clock.
fn run_pipeline(
    label: &str,
    cycles: usize,
    burst: usize,
    park_wire: &Bytes,
    wire: &Bytes,
    port: u16,
    journal: Option<&Journal>,
) -> PipelineRun {
    let mut reps: Vec<PipelineRun> = (0..REPS)
        .map(|_| run_pipeline_once(label, cycles, burst, park_wire, wire, port, journal))
        .collect();
    reps.sort_by(|a, b| a.wall.cmp(&b.wall));
    reps.into_iter().nth(REPS / 2).expect("at least one rep")
}

/// One timed run of the fleet pipeline.
#[allow(clippy::cast_precision_loss, clippy::too_many_arguments)]
fn run_pipeline_once(
    label: &str,
    cycles: usize,
    burst: usize,
    park_wire: &Bytes,
    wire: &Bytes,
    port: u16,
    journal: Option<&Journal>,
) -> PipelineRun {
    let fsyncs_before = journal.map_or(0, |j| j.stats().fsyncs);
    let per_thread = cycles / THREADS;
    let start = Barrier::new(THREADS + 1);

    let wall = std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let start = &start;
            scope.spawn(move || {
                sender_thread(
                    label, thread, per_thread, burst, park_wire, wire, port, journal, start,
                );
            });
        }
        start.wait();
        Instant::now()
    })
    .elapsed();
    let ran = per_thread * THREADS;

    PipelineRun {
        label: label.to_owned(),
        fsync_batch: burst,
        wall,
        ops_per_sec: ran as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        fsyncs: journal.map_or(0, |j| j.stats().fsyncs - fsyncs_before),
    }
}

/// Amortized write-ahead latency: µs per durable `hop-begin` when bursts
/// of `batch` records share one group-commit fsync (single-threaded, so
/// the curve isolates amortization from cross-thread fsync sharing).
#[allow(clippy::cast_precision_loss)]
fn write_ahead_latency(records: usize, batch: usize, wire: &Bytes) -> f64 {
    let dir = scratch_dir(&format!("latency_{batch}"));
    let (journal, _) = Journal::open(&dir, JournalConfig::default()).expect("open scratch journal");
    let started = Instant::now();
    let mut written = 0usize;
    while written < records {
        let chunk = batch.min(records - written);
        let hops: Vec<OpenHop> = (0..chunk)
            .map(|i| OpenHop {
                key: format!("lat-{:08x}", written + i),
                parent: None,
                inbound: false,
                to: "sink".to_owned(),
                wire: wire.clone(),
            })
            .collect();
        journal.hop_begin_batch(&hops).expect("journal hop begin");
        written += chunk;
    }
    let wall = started.elapsed();
    drop(journal);
    let _ = fs::remove_dir_all(&dir);
    wall.as_secs_f64() * 1e6 / records as f64
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (cycles, latency_records) = if smoke { (384, 96) } else { (1920, 512) };
    let wire = build_transfer_wire(smoke);
    let park_wire = build_park_wire();
    let sink = Sink::start();
    let port = sink.port();

    // The in-memory baseline runs the same fleet with the same burst
    // chunking as the gated batch-8 journal run — only the journal
    // appends and fsyncs differ between the two rows the gate compares.
    let mut runs = vec![run_pipeline(
        "in-memory",
        cycles,
        8,
        &park_wire,
        &wire,
        port,
        None,
    )];
    let mut journal_dirs = Vec::new();
    for batch in BATCHES {
        let dir = scratch_dir(&format!("pipeline_{batch}"));
        let config = JournalConfig {
            fsync_batch: batch,
            ..JournalConfig::default()
        };
        let (journal, _) = Journal::open(&dir, config).expect("open bench journal");
        runs.push(run_pipeline(
            &format!("journal, batch {batch}"),
            cycles,
            batch,
            &park_wire,
            &wire,
            port,
            Some(&journal),
        ));
        journal_dirs.push(dir);
    }
    for dir in journal_dirs {
        let _ = fs::remove_dir_all(&dir);
    }

    let latencies: Vec<(usize, f64)> = BATCHES
        .iter()
        .map(|&batch| {
            let best = (0..REPS)
                .map(|_| write_ahead_latency(latency_records, batch, &wire))
                .fold(f64::INFINITY, f64::min);
            (batch, best)
        })
        .collect();

    let inmem = runs[0].ops_per_sec;
    let batch8 = runs
        .iter()
        .find(|r| r.fsync_batch == 8 && r.label.starts_with("journal"))
        .expect("batch-8 run");
    let relative = batch8.ops_per_sec / inmem.max(f64::MIN_POSITIVE);
    // The gate reads the best journaled run at fsync-batch >= 8: the
    // acceptance target is that *some* batching level at or above 8 holds
    // the durability tax under 2x, not that every level does.
    let gated = runs
        .iter()
        .filter(|r| r.label.starts_with("journal") && r.fsync_batch >= 8)
        .map(|r| r.ops_per_sec / inmem.max(f64::MIN_POSITIVE))
        .fold(0.0_f64, f64::max);

    if json {
        println!("{{");
        println!("  \"bench\": \"durable_journal\",");
        println!("  \"cycles\": {cycles},");
        println!("  \"threads\": {THREADS},");
        println!("  \"wire_bytes\": {},", wire.len());
        println!("  \"smoke\": {smoke},");
        println!("  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let comma = if i + 1 < runs.len() { "," } else { "" };
            println!(
                "    {{ \"label\": \"{}\", \"fsync_batch\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.0}, \"fsyncs\": {} }}{comma}",
                r.label,
                r.fsync_batch,
                r.wall.as_secs_f64() * 1e3,
                r.ops_per_sec,
                r.fsyncs,
            );
        }
        println!("  ],");
        println!("  \"journaled_batch8_vs_inmem\": {relative:.2},");
        println!("  \"journaled_best_batch_ge8_vs_inmem\": {gated:.2},");
        println!("  \"write_ahead_latency_us\": [");
        for (i, (batch, us)) in latencies.iter().enumerate() {
            let comma = if i + 1 < latencies.len() { "," } else { "" };
            println!("    {{ \"batch\": {batch}, \"us_per_record\": {us:.1} }}{comma}");
        }
        println!("  ]");
        println!("}}");
    } else {
        println!(
            "E10: durable journal vs in-memory park/ship, {cycles} cycles on {THREADS} threads over loopback TCP"
        );
        println!(
            "    {}-byte transfer message per cycle; journaled runs group-commit per batch\n",
            wire.len()
        );
        let widths = [18, 12, 10, 12, 8];
        header(
            &["pipeline", "fsync batch", "wall", "cycles/s", "fsyncs"],
            &widths,
        );
        for r in &runs {
            row(
                &[
                    r.label.clone(),
                    if r.label.starts_with("journal") {
                        r.fsync_batch.to_string()
                    } else {
                        "-".to_owned()
                    },
                    fmt_duration(r.wall),
                    format!("{:.0}", r.ops_per_sec),
                    r.fsyncs.to_string(),
                ],
                &widths,
            );
        }
        println!("\njournaled (batch 8) / in-memory throughput: {relative:.2}x");
        println!("journaled (best batch >= 8) / in-memory throughput: {gated:.2}x");
        print!("write-ahead latency:");
        for (batch, us) in &latencies {
            print!(" batch {batch} = {us:.1}us/record;");
        }
        println!();
    }

    if check {
        let mut failed = false;
        if gated < THROUGHPUT_GATE {
            eprintln!(
                "CHECK FAILED: journaled throughput at fsync-batch >= 8 is {gated:.2}x of in-memory, below the {THROUGHPUT_GATE}x gate",
            );
            failed = true;
        }
        let lat1 = latencies.iter().find(|(b, _)| *b == 1).expect("batch 1").1;
        let lat32 = latencies
            .iter()
            .find(|(b, _)| *b == 32)
            .expect("batch 32")
            .1;
        if lat32 >= lat1 {
            eprintln!(
                "CHECK FAILED: group commit not amortizing (batch-32 {lat32:.1}us/record >= batch-1 {lat1:.1}us/record)",
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: journaled best batch >= 8 = {gated:.2}x in-memory, write-ahead {lat1:.1} -> {lat32:.1} us/record",
        );
    }
    ExitCode::SUCCESS
}
