//! **E1 — the paper's §5 result.**
//!
//! "In a test, the Webbot scanned 917 html pages containing 3 MBytes on
//! our web-server. […] executing a Webbot scan for invalid links on our
//! CS department server locally is 16 % faster than doing it over a
//! 100MBit network."
//!
//! Regenerates that comparison: the same Webbot run stationary (pulling
//! every page over the 100 Mbit LAN) and mobile (relocated to the server
//! by mwWebbot, scanning over loopback).

use tacoma_bench::{fmt_bytes, fmt_duration, header, row};
use tacoma_webbot::experiment::{run_mobile, run_stationary, speedup, CaseStudyParams};

fn main() {
    println!("E1: Webbot scan, local (mobile agent) vs remote (stationary), paper configuration");
    println!("    917 HTML pages, 3 MB site, depth 4, 100 Mbit LAN\n");

    let params = CaseStudyParams::paper();
    let stationary = run_stationary(&params);
    let mobile = run_mobile(&params);

    let widths = [24, 12, 12, 14, 12];
    header(
        &[
            "configuration",
            "pages",
            "scan time",
            "total journey",
            "LAN bytes",
        ],
        &widths,
    );
    for (name, out) in [
        ("stationary (remote)", &stationary),
        ("mobile (local scan)", &mobile),
    ] {
        row(
            &[
                name.to_owned(),
                out.report.pages_scanned.to_string(),
                fmt_duration(out.scan_time),
                fmt_duration(out.total_time),
                fmt_bytes(out.link_bytes),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "local scan is {:.1}% faster than the remote scan   (paper: 16%)",
        100.0 * speedup(stationary.scan_time, mobile.scan_time)
    );
    println!(
        "whole mobile journey is {:.1}% faster than the stationary run",
        100.0 * speedup(stationary.total_time, mobile.total_time)
    );
    println!(
        "bandwidth saved on the client-server link: {} -> {} ({:.1}x less)",
        fmt_bytes(stationary.link_bytes),
        fmt_bytes(mobile.link_bytes),
        stationary.link_bytes as f64 / mobile.link_bytes.max(1) as f64
    );
    println!(
        "\nfindings (identical either way): {} dead links among {} links checked",
        mobile.report.invalid.len(),
        mobile.report.links_checked
    );
}
