//! **E5 — Figure 3, the `vm_c` execution pipeline.**
//!
//! Runs an agent carrying source through the seven-step compile pipeline,
//! prints the steps, and compares its latency against the same agent
//! pre-compiled for `vm_bin` — the cost the pipeline buys its
//! language-independence with.

use std::time::Instant;

use tacoma_bench::{header, row};
use tacoma_core::{AgentSpec, EventKind, SystemBuilder};
use tacoma_taxscript::compile_source;

const SOURCE: &str = r#"
    fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    fn main() {
        display("fib(18) = " + str(fib(18)));
        exit(0);
    }
"#;

fn main() {
    println!("E5: the Figure-3 vm_c pipeline\n");

    // Run through vm_c and print the numbered steps from the trace.
    let mut system = SystemBuilder::new()
        .host("alpha")
        .unwrap()
        .trust_all()
        .build();
    system
        .launch("alpha", AgentSpec::script("csource", SOURCE).on_vm("vm_c"))
        .unwrap();
    system.run_until_quiet();

    let alpha = system.host("alpha").unwrap();
    let trace = alpha
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::ExecutionTrace(lines) => Some(lines.clone()),
            _ => None,
        })
        .expect("vm_c leaves a trace");
    for line in &trace {
        println!("  {line}");
    }
    assert!(
        trace.iter().any(|l| l.starts_with("7:")),
        "all seven steps present"
    );
    println!("\nagent output: {:?}\n", system.agent_outputs());

    // Latency comparison over repeated runs (wall clock).
    const RUNS: usize = 30;
    let timed = |vm: &str, spec_for: &dyn Fn() -> AgentSpec| {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..RUNS {
            let mut system = SystemBuilder::new()
                .host("alpha")
                .unwrap()
                .trust_all()
                .build();
            let started = Instant::now();
            system.launch("alpha", spec_for().on_vm(vm)).unwrap();
            system.run_until_quiet();
            total += started.elapsed();
        }
        total / RUNS as u32
    };

    let via_vm_c = timed("vm_c", &|| AgentSpec::script("src", SOURCE));
    let program = compile_source(SOURCE).unwrap();
    let via_vm_bin = timed("vm_bin", &|| AgentSpec::bytecode("bin", program.clone()));
    let via_vm_script = timed("vm_script", &|| AgentSpec::script("scr", SOURCE));

    let widths = [34, 16];
    header(&["path", "mean latency"], &widths);
    row(
        &[
            "vm_c (compile at destination)".into(),
            format!("{via_vm_c:?}"),
        ],
        &widths,
    );
    row(
        &[
            "vm_script (interpret source)".into(),
            format!("{via_vm_script:?}"),
        ],
        &widths,
    );
    row(
        &[
            "vm_bin (pre-compiled binary)".into(),
            format!("{via_vm_bin:?}"),
        ],
        &widths,
    );
    println!(
        "\nexpected shape: vm_bin <= vm_script ~ vm_c; the compile step is the pipeline's cost,"
    );
    println!("paid once — the briefcase then carries the binary to later hops.");
}
