//! **E7 — Figure 5, the wrapped Webbot stack.**
//!
//! `rwWebbot(mwWebbot(Webbot))`: the monitoring wrapper reports every
//! move to the home log while the mobility wrapper runs the robot at the
//! server and performs the second validation step on the rejected
//! external URIs — the full case-study stack, with its observable
//! artefacts printed.

use tacoma_bench::{fmt_bytes, header, row};
use tacoma_core::{folders, Briefcase, Principal};
use tacoma_webbot::experiment::{build_system, CaseStudyParams, CLIENT, SERVER};
use tacoma_webbot::mobile::{mw_webbot_spec, REPORT_DRAWER};
use tacoma_webbot::{WebbotConfig, WebbotReport};

fn main() {
    println!("E7: the Figure-5 wrapper stack on the paper site (externals checked)\n");

    let params = CaseStudyParams::paper().with_external_checks();
    let mut system = build_system(&params);

    let config = WebbotConfig::scan_site(SERVER);
    let monitor = format!("tacoma://{CLIENT}/ag_log");
    let spec = mw_webbot_spec(SERVER, CLIENT, &config, true, Some(&monitor));
    system.launch(CLIENT, spec).unwrap();
    system.run_until_quiet();

    // The rwWebbot layer: what the monitoring tool saw.
    let principal = Principal::local_system(CLIENT);
    let mut read = Briefcase::new();
    read.set_single(folders::COMMAND, "read");
    let log = system
        .call_service(CLIENT, "ag_log", &principal, read)
        .unwrap();
    println!("monitoring log at {CLIENT} (rwWebbot reports):");
    let mut hops = 0;
    if let Some(lines) = log.folder("LINES") {
        for line in lines {
            println!("  {}", line.as_str().unwrap_or("?"));
            hops += 1;
        }
    }
    assert_eq!(hops, 2, "outbound and homebound hops reported");

    // The mwWebbot layer: the combined report that came home.
    let mut fetch = Briefcase::new();
    fetch.set_single(folders::COMMAND, "fetch");
    fetch.append(folders::ARGS, REPORT_DRAWER);
    let reply = system
        .call_service(CLIENT, "ag_cabinet", &principal, fetch)
        .unwrap();
    let parked = Briefcase::decode(reply.element("CABINET-DATA", 0).unwrap().data()).unwrap();
    let report = WebbotReport::read_from(&parked);

    println!("\ncombined report: {}", report.summary());
    let internal: Vec<_> = report
        .invalid
        .iter()
        .filter(|i| i.url.starts_with(&format!("http://{SERVER}/")))
        .collect();
    let external: Vec<_> = report
        .invalid
        .iter()
        .filter(|i| !i.url.starts_with(&format!("http://{SERVER}/")))
        .collect();

    let widths = [34, 10];
    header(&["finding", "count"], &widths);
    row(
        &["pages scanned".into(), report.pages_scanned.to_string()],
        &widths,
    );
    row(
        &["invalid internal links".into(), internal.len().to_string()],
        &widths,
    );
    row(
        &[
            "rejected (external) URIs".into(),
            report.prefix_rejected().count().to_string(),
        ],
        &widths,
    );
    row(
        &["invalid external links".into(), external.len().to_string()],
        &widths,
    );
    row(
        &[
            "bytes scanned at the server".into(),
            fmt_bytes(report.bytes_fetched),
        ],
        &widths,
    );

    println!("\nsample findings:");
    for issue in internal.iter().take(3) {
        println!("  [{}] {} -> {}", issue.status, issue.referrer, issue.url);
    }
    for issue in external.iter().take(3) {
        println!(
            "  [{}] {} -> {} (external)",
            issue.status, issue.referrer, issue.url
        );
    }

    assert!(
        !internal.is_empty(),
        "the generated site plants dead internal links"
    );
    assert!(
        !external.is_empty(),
        "some external links point at missing pages"
    );
    assert_eq!(report.pages_scanned, 917);
    println!("\nshape check passed: both steps of §5 produced findings; only the report crossed the LAN.");
}
