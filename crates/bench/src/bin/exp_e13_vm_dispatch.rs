//! **E13 — the TaxScript compile tier: fused dispatch and warm launches.**
//!
//! Two measurements of the execution tier that replaced the per-op
//! interpreter:
//!
//! 1. **Dispatch throughput.** The same program runs under the legacy
//!    per-instruction interpreter (`Vm::run_legacy`) and the fused
//!    superinstruction dispatcher (`Vm::run`); throughput is reported
//!    in wire-instructions/sec, counted exactly via the fuel the run
//!    consumed (both tiers charge one fuel per wire instruction).
//!    Two workloads bracket the design space: *loop-heavy* (counter
//!    loops and local arithmetic — the fusion sweet spot) and
//!    *builtin-heavy* (dominated by briefcase builtin calls, where
//!    dispatch is a smaller slice of each instruction).
//!
//! 2. **Launch throughput, cold vs warm.** The same bytecode briefcase
//!    is launched through `vm_script` with every shared cache cleared
//!    before each iteration (cold: decode + verify + lower + allocate
//!    per hop) and with the caches primed (warm: content-hash hit on
//!    the verified-script cache, pooled scratch from the `VmPool`).
//!    This is the per-hop cost a mobile agent actually pays.
//!
//! With `--json` the results are emitted as the `BENCH_10.json` format;
//! `--smoke` shrinks the workload for CI; `--check` exits non-zero if
//! the fused tier is less than 2x the legacy tier on the loop-heavy
//! workload or warm launches are less than 5x cold launches.

use std::env;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tacoma_bench::{header, row};
use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::TrustStore;
use tacoma_taxscript::analysis::AnalysisCache;
use tacoma_taxscript::{compile_source, NullHooks, Program, Vm, DEFAULT_FUEL};
use tacoma_vm::{
    code_types, ExecContext, NativeRegistry, ProgramCache, VirtualMachine, VmPool, VmScript,
};

/// Timed repetitions; the best rep damps scheduler noise.
const REPS: usize = 3;

/// The CI gate: fused over legacy on the loop-heavy workload.
const DISPATCH_GATE: f64 = 2.0;

/// The CI gate: warm over cold launches.
const LAUNCH_GATE: f64 = 5.0;

/// Counter loops over local arithmetic: every iteration is a fused
/// loop header (`Load+Const+Lt+JumpIfFalse`) plus fused counter bumps
/// (`Load+Const+Add+Store`) — the workload the superinstruction pass
/// was built for.
fn loop_heavy(iters: u64) -> Program {
    compile_source(&format!(
        "fn main() {{
            let i = 0;
            let acc = 0;
            while (i < {iters}) {{
                acc = acc + 3;
                acc = acc + i;
                i = i + 1;
            }}
            exit(0);
        }}"
    ))
    .expect("loop-heavy source compiles")
}

/// Briefcase-builtin calls dominate: dispatch overhead is a thin slice
/// of each instruction, so the fused tier's edge here bounds the
/// *worst-case* speedup an agent should expect.
fn builtin_heavy(iters: u64) -> Program {
    compile_source(&format!(
        "fn main() {{
            let i = 0;
            while (i < {iters}) {{
                bc_set(\"K\", i);
                bc_append(\"LOG\", \"x\");
                bc_clear(\"LOG\");
                i = i + 1;
            }}
            exit(0);
        }}"
    ))
    .expect("builtin-heavy source compiles")
}

/// One tier's throughput on `program`: best-of-[`REPS`]
/// wire-instructions/sec, with the instruction count taken from the
/// fuel the run consumed.
#[allow(clippy::cast_precision_loss)]
fn dispatch_ops_per_sec(program: &Program, legacy: bool) -> (f64, u64) {
    program.prepare();
    let mut best = f64::MIN;
    let mut executed = 0u64;
    for _ in 0..REPS {
        let mut bc = Briefcase::new();
        let mut vm = Vm::new(program, NullHooks::default()).with_fuel(DEFAULT_FUEL);
        let started = Instant::now();
        let outcome = if legacy {
            vm.run_legacy(&mut bc)
        } else {
            vm.run(&mut bc)
        };
        let wall = started.elapsed();
        outcome.expect("bench program terminates cleanly");
        executed = DEFAULT_FUEL - vm.fuel_remaining();
        best = best.max(executed as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE));
    }
    (best, executed)
}

/// Launches/sec for the bytecode briefcase through `vm_script`.
/// `cold` clears every shared cache before each launch, charging the
/// full decode + verify + lower + allocate pipeline per hop.
#[allow(clippy::cast_precision_loss)]
fn launches_per_sec(wire: &[u8], launches: usize, cold: bool) -> (f64, Duration) {
    let trust = TrustStore::new();
    let natives = NativeRegistry::new();
    let ctx = ExecContext::new(&trust, &natives);
    let vm = VmScript::new();
    // Prime the caches for the warm variant so iteration one is warm too.
    if !cold {
        let mut bc = briefcase_with(wire);
        let mut hooks = NullHooks::default();
        vm.execute(&mut bc, &mut hooks, &ctx)
            .expect("warm-up launch succeeds");
    }
    let started = Instant::now();
    for _ in 0..launches {
        if cold {
            AnalysisCache::shared().clear();
            ProgramCache::shared().clear();
            VmPool::shared().clear();
        }
        let mut bc = briefcase_with(wire);
        let mut hooks = NullHooks::default();
        vm.execute(&mut bc, &mut hooks, &ctx)
            .expect("bench launch succeeds");
    }
    let wall = started.elapsed();
    (
        launches as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        wall,
    )
}

fn briefcase_with(wire: &[u8]) -> Briefcase {
    let mut bc = Briefcase::new();
    bc.append(folders::CODE, wire.to_vec());
    bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
    bc
}

#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (loop_iters, builtin_iters, launches) = if smoke {
        (200_000u64, 20_000u64, 300usize)
    } else {
        (2_000_000, 200_000, 2_000)
    };

    // ---- 1. dispatch throughput, legacy vs fused. ----
    let loops = loop_heavy(loop_iters);
    let builtins = builtin_heavy(builtin_iters);
    let (loop_legacy, loop_ops) = dispatch_ops_per_sec(&loops, true);
    let (loop_fused, _) = dispatch_ops_per_sec(&loops, false);
    let (builtin_legacy, builtin_ops) = dispatch_ops_per_sec(&builtins, true);
    let (builtin_fused, _) = dispatch_ops_per_sec(&builtins, false);
    let loop_speedup = loop_fused / loop_legacy.max(f64::MIN_POSITIVE);
    let builtin_speedup = builtin_fused / builtin_legacy.max(f64::MIN_POSITIVE);

    // ---- 2. launch throughput, cold vs warm. ----
    // A realistic itinerant agent: it carries its whole program to
    // every host (a dozen task routines the itinerary dispatches among)
    // but executes only a small slice per hop — so the per-hop cost is
    // dominated by decode + verify + lower, exactly what the caches
    // elide.
    let mut source = String::new();
    for t in 0..12 {
        source.push_str(&format!(
            "fn task{t}(x) {{
                let acc = x;
                let i = 0;
                while (i < 10) {{
                    acc = acc + i * {t};
                    bc_append(\"T{t}\", str(acc));
                    i = i + 1;
                }}
                return acc;
            }}\n"
        ));
    }
    source.push_str(
        "fn main() {
            let step = bc_get(\"STEP\", 0);
            if (step == 3) { task3(7); }
            bc_append(\"RESULTS\", host_name());
            exit(0);
        }\n",
    );
    let agent = compile_source(&source).expect("agent source compiles");
    let wire = agent.encode();
    let cold_launches = launches / 10;
    let (cold_rate, cold_wall) = launches_per_sec(&wire, cold_launches, true);
    let (warm_rate, warm_wall) = launches_per_sec(&wire, launches, false);
    let launch_speedup = warm_rate / cold_rate.max(f64::MIN_POSITIVE);
    let pool = VmPool::shared().stats();

    if json {
        println!("{{");
        println!("  \"bench\": \"vm_dispatch\",");
        println!("  \"smoke\": {smoke},");
        println!("  \"dispatch\": {{");
        println!("    \"loop_heavy\": {{");
        println!("      \"wire_ops\": {loop_ops},");
        println!("      \"legacy_ops_per_sec\": {loop_legacy:.0},");
        println!("      \"fused_ops_per_sec\": {loop_fused:.0},");
        println!("      \"speedup\": {loop_speedup:.2}");
        println!("    }},");
        println!("    \"builtin_heavy\": {{");
        println!("      \"wire_ops\": {builtin_ops},");
        println!("      \"legacy_ops_per_sec\": {builtin_legacy:.0},");
        println!("      \"fused_ops_per_sec\": {builtin_fused:.0},");
        println!("      \"speedup\": {builtin_speedup:.2}");
        println!("    }}");
        println!("  }},");
        println!("  \"launch\": {{");
        println!("    \"agent_wire_bytes\": {},", wire.len());
        println!("    \"cold\": {{ \"launches\": {cold_launches}, \"wall_ms\": {:.1}, \"launches_per_sec\": {cold_rate:.0} }},",
            cold_wall.as_secs_f64() * 1e3);
        println!("    \"warm\": {{ \"launches\": {launches}, \"wall_ms\": {:.1}, \"launches_per_sec\": {warm_rate:.0} }},",
            warm_wall.as_secs_f64() * 1e3);
        println!("    \"speedup\": {launch_speedup:.1},");
        println!(
            "    \"vm_pool\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }}",
            pool.hits, pool.misses, pool.evictions
        );
        println!("  }}");
        println!("}}");
    } else {
        println!("E13: TaxScript compile tier — fused dispatch and warm launches\n");
        let widths = [20, 14, 14, 14, 9];
        header(
            &[
                "workload",
                "wire ops",
                "legacy op/s",
                "fused op/s",
                "speedup",
            ],
            &widths,
        );
        row(
            &[
                "loop-heavy".to_owned(),
                loop_ops.to_string(),
                format!("{loop_legacy:.0}"),
                format!("{loop_fused:.0}"),
                format!("{loop_speedup:.2}x"),
            ],
            &widths,
        );
        row(
            &[
                "builtin-heavy".to_owned(),
                builtin_ops.to_string(),
                format!("{builtin_legacy:.0}"),
                format!("{builtin_fused:.0}"),
                format!("{builtin_speedup:.2}x"),
            ],
            &widths,
        );
        println!(
            "\nlaunches: cold {cold_rate:.0}/s ({cold_launches} runs), \
             warm {warm_rate:.0}/s ({launches} runs), speedup {launch_speedup:.1}x"
        );
        println!(
            "vm pool: {} hits, {} misses, {} evictions",
            pool.hits, pool.misses, pool.evictions
        );
    }

    if check {
        let mut failed = false;
        if loop_speedup < DISPATCH_GATE {
            eprintln!(
                "CHECK FAILED: loop-heavy fused speedup {loop_speedup:.2}x below the \
                 {DISPATCH_GATE}x gate"
            );
            failed = true;
        }
        if launch_speedup < LAUNCH_GATE {
            eprintln!(
                "CHECK FAILED: warm launch speedup {launch_speedup:.1}x below the \
                 {LAUNCH_GATE}x gate"
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: loop-heavy {loop_speedup:.2}x, builtin-heavy {builtin_speedup:.2}x, \
             warm launches {launch_speedup:.1}x"
        );
    }
    ExitCode::SUCCESS
}
