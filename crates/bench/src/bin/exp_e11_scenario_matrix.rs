//! **E11 — hostile-network scenarios and the itinerary planner.**
//!
//! Three measurements over generated scenarios (`tacoma-scenario`):
//!
//! * **Determinism** — a churning, partitioning scenario replayed against
//!   a live system via the step-hook event track, with a multi-hop tour
//!   running through it (report fan-out to two replicas via the §4 group
//!   wrapper). The full event trace must be identical between 1-worker
//!   and 4-worker schedulers, and the tour's hop into a crashed host must
//!   be accounted as *unreachable* (churn), not random loss.
//! * **Planner** — the same tour over a heterogeneous topology, visit
//!   order naive (request order, the paper's behaviour) vs planned
//!   (nearest-neighbor + 2-opt over the link matrix). Both predicted and
//!   real virtual makespans are reported per topology size; the planned
//!   tour must never be slower than the naive one.
//! * **Tier gap** — the §5 local-vs-remote comparison swept across link
//!   tiers (100 Mbit LAN → 56k modem). The paper measured 16% on its LAN
//!   and conjectured more on worse links; the local advantage must widen
//!   monotonically as links slow.
//!
//! With `--json` results are emitted as the `BENCH_8.json` object;
//! `--smoke` shrinks the workloads for CI; `--check` exits non-zero if a
//! gate fails. Wall clocks are the median of [`WALL_REPS`] repetitions;
//! virtual quantities are deterministic per configuration.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use tacoma_core::{HostEvent, HostId};
use tacoma_scenario::{
    build_system, generate, install_track, plan, predicted_makespan, LinkTier, Scenario,
    ScenarioSpec,
};
use tacoma_webbot::experiment::{run_mobile, run_stationary, CaseStudyParams};
use tacoma_webbot::fleet::{install_fleet_sites, FleetParams, FleetPlan};
use tacoma_webbot::mobile;
use tacoma_webbot::tour::{fetch_tour, tour_spec};

/// Wall-clock repetitions per timed configuration (median is kept).
const WALL_REPS: usize = 3;

/// Planning payload: what a tour agent actually weighs on the wire (the
/// Webbot bundle it carries plus its own wrapper binary).
fn tour_payload_bytes() -> u64 {
    (mobile::webbot_bundle().encode().len() + mobile::MW_BINARY_SIZE) as u64
}

/// Picks `k` tour stops spread across the host rank order (so the tour
/// crosses every link tier), avoiding `home`.
fn spread_stops(scenario: &Scenario, home: &str, k: usize) -> Vec<String> {
    let candidates: Vec<&String> = scenario.hosts.iter().filter(|h| *h != home).collect();
    let k = k.min(candidates.len());
    (0..k)
        .map(|i| candidates[i * (candidates.len() - 1) / k.max(1)].clone())
        .collect()
}

struct TourRun {
    makespan_ms: i64,
    visited: usize,
    unreachable: usize,
    track_applied: usize,
    net_unreachable: u64,
    trace: Vec<(String, HostEvent)>,
    wall_ms: f64,
}

/// Deploys sites + webbot programs over a scenario system, runs one tour
/// from `home` through `order`, and collects the parked outcome.
fn run_tour(
    scenario: &Scenario,
    threads: usize,
    home: &str,
    order: &[String],
    replicas: &[String],
    pages: usize,
    total_bytes: u64,
) -> TourRun {
    let started = Instant::now();
    let mut system = build_system(scenario, threads);
    let track = install_track(&mut system, scenario);

    let params = FleetParams {
        plan: FleetPlan::from_pairs(order.iter().map(|stop| (home.to_owned(), stop.clone()))),
        pages,
        total_bytes,
        seed: scenario.seed,
        ..FleetParams::default()
    };
    install_fleet_sites(&system, &params);
    let mut program_hosts: Vec<String> = params.plan.hosts();
    for replica in replicas {
        if !program_hosts.contains(replica) {
            program_hosts.push(replica.clone());
        }
    }
    for name in &program_hosts {
        mobile::install_programs(&system.host(name).expect("scenario host"));
    }

    system
        .launch(home, tour_spec(home, order, replicas))
        .expect("launch tour");
    let outcome = system.run_until_quiet();
    assert!(outcome.quiesced(), "tour system did not quiesce");

    let (_, stamps) = fetch_tour(&mut system, home, home).expect("tour reported home");
    TourRun {
        makespan_ms: stamps.makespan_ms(),
        visited: stamps.visited.len(),
        unreachable: stamps.unreachable.len(),
        track_applied: track.applied(),
        net_unreachable: system.network().stats().total_unreachable(),
        trace: system.events(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN wall clocks"));
    xs[xs.len() / 2]
}

// ---------------------------------------------------------------- sections

struct DeterminismResult {
    hosts: usize,
    events: usize,
    identical: bool,
    track_applied: usize,
    unreachable_hops: usize,
    net_unreachable: u64,
}

/// A generated churn/partition scenario with one stop forced down for the
/// whole run, toured identically under 1- and 4-worker schedulers.
fn run_determinism(smoke: bool) -> DeterminismResult {
    let hosts = if smoke { 24 } else { 120 };
    let mut scenario = generate(&ScenarioSpec::new(811, hosts));
    // Force one mid-ranked host down from t=0 so the tour's hop into it
    // is *churn* unreachability, not random loss.
    let dead = scenario.hosts[hosts / 2].clone();
    scenario.events.insert(
        0,
        tacoma_scenario::ScenarioEvent {
            at_ms: 0,
            kind: tacoma_scenario::EventKind::HostDown { host: dead.clone() },
        },
    );

    let home = scenario.hosts[0].clone();
    let mut order = spread_stops(&scenario, &home, 5);
    order.push(dead);
    let replicas = vec![scenario.hosts[1].clone(), scenario.hosts[2].clone()];
    let (pages, bytes) = if smoke { (8, 40_000) } else { (20, 120_000) };

    let one = run_tour(&scenario, 1, &home, &order, &replicas, pages, bytes);
    let four = run_tour(&scenario, 4, &home, &order, &replicas, pages, bytes);

    DeterminismResult {
        hosts,
        events: scenario.events.len(),
        identical: one.trace == four.trace,
        track_applied: one.track_applied,
        unreachable_hops: one.unreachable,
        net_unreachable: one.net_unreachable,
    }
}

struct PlannerResult {
    hosts: usize,
    stops: usize,
    naive_predicted_ms: f64,
    planned_predicted_ms: f64,
    naive_real_ms: i64,
    planned_real_ms: i64,
    naive_wall_ms: f64,
    planned_wall_ms: f64,
    visited: usize,
}

/// Naive vs planned tour over one quiet heterogeneous topology (no churn,
/// no loss: the comparison isolates the link matrix).
fn run_planner(seed: u64, hosts: usize, stops: usize, smoke: bool) -> PlannerResult {
    let mut spec = ScenarioSpec::new(seed, hosts);
    spec.churn = 0;
    spec.partitions = 0;
    spec.degradations = 0;
    let mut scenario = generate(&spec);
    for link in &mut scenario.links {
        link.loss = 0.0;
    }

    let home = scenario.hosts[0].clone();
    let naive: Vec<String> = spread_stops(&scenario, &home, stops);
    let topo = scenario.topology();
    let home_id = HostId::new(home.clone()).expect("valid host");
    let stop_ids: Vec<HostId> = naive
        .iter()
        .map(|s| HostId::new(s.clone()).expect("valid host"))
        .collect();
    let payload = tour_payload_bytes();

    let naive_predicted = predicted_makespan(&topo, &home_id, &stop_ids, payload);
    let itinerary = plan(&topo, &home_id, &stop_ids, payload);
    let planned: Vec<String> = itinerary
        .order
        .iter()
        .map(|h| h.as_str().to_owned())
        .collect();

    let (pages, bytes) = if smoke { (8, 40_000) } else { (20, 120_000) };
    let mut naive_runs = Vec::new();
    let mut planned_runs = Vec::new();
    for _ in 0..WALL_REPS {
        naive_runs.push(run_tour(&scenario, 4, &home, &naive, &[], pages, bytes));
        planned_runs.push(run_tour(&scenario, 4, &home, &planned, &[], pages, bytes));
    }

    PlannerResult {
        hosts,
        stops: naive.len(),
        naive_predicted_ms: naive_predicted.as_secs_f64() * 1e3,
        planned_predicted_ms: itinerary.predicted.as_secs_f64() * 1e3,
        naive_real_ms: naive_runs[0].makespan_ms,
        planned_real_ms: planned_runs[0].makespan_ms,
        naive_wall_ms: median(naive_runs.iter().map(|r| r.wall_ms).collect()),
        planned_wall_ms: median(planned_runs.iter().map(|r| r.wall_ms).collect()),
        visited: planned_runs[0].visited,
    }
}

struct TierGap {
    tier: LinkTier,
    slowdown: f64,
    local_scan_ms: f64,
    remote_scan_ms: f64,
    advantage: f64,
}

/// The §5 comparison per link tier: the same scan run at the server vs
/// pulled across a link of the given tier.
fn run_tier_gap(smoke: bool) -> Vec<TierGap> {
    let (pages, total_bytes) = if smoke {
        (60, 200_000)
    } else {
        (400, 1_500_000)
    };
    LinkTier::ALL
        .into_iter()
        .map(|tier| {
            let params = CaseStudyParams {
                pages,
                total_bytes,
                seed: 811,
                ..CaseStudyParams::default()
            }
            .with_link(tier.spec());
            let local = run_mobile(&params);
            let remote = run_stationary(&params);
            let local_s = local.scan_time.as_secs_f64();
            let remote_s = remote.scan_time.as_secs_f64();
            TierGap {
                tier,
                slowdown: tier.slowdown(),
                local_scan_ms: local_s * 1e3,
                remote_scan_ms: remote_s * 1e3,
                advantage: (remote_s - local_s) / remote_s.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

// ------------------------------------------------------------------- main

#[allow(clippy::too_many_lines)] // one linear report: measure, print, gate
fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let determinism = run_determinism(smoke);
    let planner_sizes: &[usize] = if smoke { &[24] } else { &[100, 300] };
    let planner: Vec<PlannerResult> = planner_sizes
        .iter()
        .map(|&hosts| run_planner(811, hosts, if smoke { 5 } else { 8 }, smoke))
        .collect();
    let tiers = run_tier_gap(smoke);

    if json {
        println!("{{");
        println!("  \"bench\": \"scenario_matrix\",");
        println!("  \"smoke\": {smoke},");
        println!("  \"wall_reps\": {WALL_REPS},");
        println!("  \"determinism\": {{");
        println!("    \"hosts\": {},", determinism.hosts);
        println!("    \"events\": {},", determinism.events);
        println!("    \"track_applied\": {},", determinism.track_applied);
        println!("    \"trace_identical_1v4\": {},", determinism.identical);
        println!(
            "    \"unreachable_hops\": {},",
            determinism.unreachable_hops
        );
        println!("    \"net_unreachable\": {}", determinism.net_unreachable);
        println!("  }},");
        println!("  \"planner\": [");
        for (i, p) in planner.iter().enumerate() {
            let comma = if i + 1 < planner.len() { "," } else { "" };
            println!(
                "    {{ \"hosts\": {}, \"stops\": {}, \"visited\": {}, \
                 \"naive_predicted_ms\": {:.3}, \"planned_predicted_ms\": {:.3}, \
                 \"naive_real_ms\": {}, \"planned_real_ms\": {}, \
                 \"naive_wall_ms\": {:.1}, \"planned_wall_ms\": {:.1} }}{comma}",
                p.hosts,
                p.stops,
                p.visited,
                p.naive_predicted_ms,
                p.planned_predicted_ms,
                p.naive_real_ms,
                p.planned_real_ms,
                p.naive_wall_ms,
                p.planned_wall_ms,
            );
        }
        println!("  ],");
        println!("  \"tier_gap\": [");
        for (i, t) in tiers.iter().enumerate() {
            let comma = if i + 1 < tiers.len() { "," } else { "" };
            println!(
                "    {{ \"tier\": \"{}\", \"slowdown\": {:.1}, \"local_scan_ms\": {:.3}, \
                 \"remote_scan_ms\": {:.3}, \"local_advantage\": {:.4} }}{comma}",
                t.tier, t.slowdown, t.local_scan_ms, t.remote_scan_ms, t.advantage,
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        println!("E11: hostile-network scenario matrix");
        println!(
            "\ndeterminism: {} hosts, {} scheduled events, track applied {}, \
             1-vs-4-worker traces identical: {}",
            determinism.hosts, determinism.events, determinism.track_applied, determinism.identical,
        );
        println!(
            "             tour skipped {} crashed stop(s); network counted {} unreachable sends",
            determinism.unreachable_hops, determinism.net_unreachable,
        );
        println!("\nplanner (naive request order vs NN+2-opt):");
        for p in &planner {
            println!(
                "  {} hosts, {} stops: predicted {:.1} -> {:.1} ms, real {} -> {} ms (visited {})",
                p.hosts,
                p.stops,
                p.naive_predicted_ms,
                p.planned_predicted_ms,
                p.naive_real_ms,
                p.planned_real_ms,
                p.visited,
            );
        }
        println!("\ntier gap (the paper's local-vs-remote, per link tier):");
        for t in &tiers {
            println!(
                "  {:>6} (x{:<8.1}): local {:.1} ms, remote {:.1} ms, advantage {:.1}%",
                t.tier.name(),
                t.slowdown,
                t.local_scan_ms,
                t.remote_scan_ms,
                t.advantage * 100.0,
            );
        }
    }

    if check {
        let mut failed = false;
        if !determinism.identical {
            eprintln!("CHECK FAILED: scenario run traces differ between 1 and 4 workers");
            failed = true;
        }
        if determinism.net_unreachable == 0 || determinism.unreachable_hops == 0 {
            eprintln!("CHECK FAILED: crashed-stop hop was not accounted as unreachable");
            failed = true;
        }
        for p in &planner {
            if p.planned_predicted_ms > p.naive_predicted_ms {
                eprintln!(
                    "CHECK FAILED: {} hosts: planned prediction {:.1} ms worse than naive {:.1} ms",
                    p.hosts, p.planned_predicted_ms, p.naive_predicted_ms,
                );
                failed = true;
            }
            if p.planned_real_ms > p.naive_real_ms {
                eprintln!(
                    "CHECK FAILED: {} hosts: planned tour {} ms slower than naive {} ms",
                    p.hosts, p.planned_real_ms, p.naive_real_ms,
                );
                failed = true;
            }
        }
        for pair in tiers.windows(2) {
            if pair[1].advantage < pair[0].advantage {
                eprintln!(
                    "CHECK FAILED: local advantage shrank from {} ({:.4}) to {} ({:.4})",
                    pair[0].tier, pair[0].advantage, pair[1].tier, pair[1].advantage,
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check ok: traces identical, planner <= naive on {} size(s), advantage monotone over {} tiers",
            planner.len(),
            tiers.len(),
        );
    }
    ExitCode::SUCCESS
}
