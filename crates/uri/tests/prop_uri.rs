//! Property-based tests for the agent-URI grammar.

use proptest::prelude::*;
use tacoma_uri::{AgentAddress, AgentId, AgentUri, HostPort, Instance};

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_-]{0,15}"
}

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){0,3}"
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    any::<u64>().prop_map(Instance::from_u64)
}

fn arb_id() -> impl Strategy<Value = AgentId> {
    prop_oneof![
        arb_name().prop_map(|n| AgentId::named(n).unwrap()),
        arb_instance().prop_map(AgentId::instance_only),
        (arb_name(), arb_instance()).prop_map(|(n, i)| AgentId::exact(n, i).unwrap()),
    ]
}

fn arb_uri() -> impl Strategy<Value = AgentUri> {
    (
        prop::option::of((arb_host(), prop::option::of(any::<u16>()))),
        prop::option::of("[a-z][a-z0-9@.]{0,12}"),
        arb_id(),
    )
        .prop_map(|(loc, principal, id)| {
            let location = loc.map(|(h, p)| match p {
                Some(p) => HostPort::with_port(h, p).unwrap(),
                None => HostPort::new(h).unwrap(),
            });
            AgentUri::from_parts(location, principal, id)
        })
}

proptest! {
    /// Display → parse is the identity on every constructible URI.
    #[test]
    fn display_parse_roundtrip(uri in arb_uri()) {
        let text = uri.to_string();
        let back: AgentUri = text.parse().unwrap();
        prop_assert_eq!(uri, back);
    }

    /// The parser is total: arbitrary ASCII input never panics.
    #[test]
    fn parser_total(s in "\\PC{0,60}") {
        let _ = s.parse::<AgentUri>();
    }

    /// An address always matches a URI derived from itself, and matching is
    /// monotone: dropping parts from the target never turns a match into a
    /// mismatch (for the same-principal case).
    #[test]
    fn self_match_and_monotonicity(
        principal in "[a-z]{1,8}",
        name in arb_name(),
        inst in arb_instance(),
    ) {
        let addr = AgentAddress::new(principal.clone(), name.clone(), inst.clone());
        let exact = addr.to_uri();
        prop_assert!(addr.matches(&exact, "system", "someone").is_match());

        // Drop the instance: still matches.
        let name_only = AgentUri::from_parts(None, Some(principal.clone()), AgentId::named(name).unwrap());
        prop_assert!(addr.matches(&name_only, "system", "someone").is_match());

        // Drop the name: still matches.
        let inst_only = AgentUri::from_parts(None, Some(principal), AgentId::instance_only(inst));
        prop_assert!(addr.matches(&inst_only, "system", "someone").is_match());
    }

    /// Instances compare by value, not by textual form.
    #[test]
    fn instance_value_equality(v in any::<u64>()) {
        let canonical = Instance::from_u64(v);
        let padded: Instance = format!("000{v:X}").parse().unwrap();
        prop_assert_eq!(canonical, padded);
    }
}
