use std::fmt;

/// Errors from parsing an agent URI against the Figure-2 grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseUriError {
    /// The input was empty.
    Empty,
    /// The `tacoma://` remote part was present but the host was empty or
    /// contained an invalid character.
    BadHost {
        /// The offending host text.
        host: String,
    },
    /// The port was present but not a decimal `u16`.
    BadPort {
        /// The offending port text.
        port: String,
    },
    /// A name contained a character outside `alphanum` (we also accept `_`
    /// and `-`, which the paper's own examples such as `vm_c` use).
    BadName {
        /// The offending name text.
        name: String,
    },
    /// An instance contained a non-hexadecimal character or was empty.
    BadInstance {
        /// The offending instance text.
        instance: String,
    },
    /// A principal segment contained an invalid character.
    BadPrincipal {
        /// The offending principal text.
        principal: String,
    },
    /// The agent id was absent: neither a name nor an instance was given.
    MissingAgentId,
    /// More path segments appeared than `[principal/]agentid` allows.
    TooManySegments {
        /// Number of `/`-separated segments found in the agent path.
        found: usize,
    },
}

impl fmt::Display for ParseUriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUriError::Empty => write!(f, "empty agent URI"),
            ParseUriError::BadHost { host } => write!(f, "invalid host {host:?}"),
            ParseUriError::BadPort { port } => write!(f, "invalid port {port:?}"),
            ParseUriError::BadName { name } => write!(f, "invalid agent name {name:?}"),
            ParseUriError::BadInstance { instance } => {
                write!(f, "invalid instance {instance:?} (expected hex digits)")
            }
            ParseUriError::BadPrincipal { principal } => {
                write!(f, "invalid principal {principal:?}")
            }
            ParseUriError::MissingAgentId => {
                write!(f, "agent id missing: need a name, an instance, or both")
            }
            ParseUriError::TooManySegments { found } => {
                write!(
                    f,
                    "agent path has {found} segments, at most principal/agentid allowed"
                )
            }
        }
    }
}

impl std::error::Error for ParseUriError {}
