//! Recursive-descent parser for the Figure-2 agent-URI grammar.

use crate::uri::{validate_name, validate_principal};
use crate::{AgentId, AgentUri, HostPort, Instance, ParseUriError, SCHEME};

pub(crate) fn parse_agent_uri(input: &str) -> Result<AgentUri, ParseUriError> {
    if input.is_empty() {
        return Err(ParseUriError::Empty);
    }

    // Optional remote part: `tacoma://hostport/`.
    let (location, path) = match input.strip_prefix(SCHEME) {
        Some(rest) => {
            let slash = rest.find('/').ok_or_else(|| ParseUriError::BadHost {
                // `tacoma://host` without the closing slash leaves no agent
                // path at all; report the host text for context.
                host: rest.to_owned(),
            })?;
            let (hostport, after) = rest.split_at(slash);
            let location = parse_hostport(hostport)?;
            (Some(location), &after[1..])
        }
        None => (None, input),
    };

    // Agent path: `[principal/] agentid`.
    let segments: Vec<&str> = path.split('/').collect();
    let (principal, id_text) = match segments.as_slice() {
        [id] => (None, *id),
        [principal, id] => {
            // The paper writes `tacoma://host//vm_c:...` — an empty
            // principal segment means "principal omitted".
            if principal.is_empty() {
                (None, *id)
            } else {
                validate_principal(principal)?;
                (Some((*principal).to_owned()), *id)
            }
        }
        parts => return Err(ParseUriError::TooManySegments { found: parts.len() }),
    };

    let id = parse_agent_id(id_text)?;
    Ok(AgentUri::from_parts(location, principal, id))
}

fn parse_hostport(text: &str) -> Result<HostPort, ParseUriError> {
    match text.split_once(':') {
        Some((host, port)) => {
            let port: u16 = port.parse().map_err(|_| ParseUriError::BadPort {
                port: port.to_owned(),
            })?;
            HostPort::with_port(host, port)
        }
        None => HostPort::new(text),
    }
}

fn parse_agent_id(text: &str) -> Result<AgentId, ParseUriError> {
    if text.is_empty() {
        return Err(ParseUriError::MissingAgentId);
    }
    match text.split_once(':') {
        Some(("", instance)) => Ok(AgentId::instance_only(instance.parse::<Instance>()?)),
        Some((name, instance)) => AgentId::exact(name, instance.parse::<Instance>()?),
        None => {
            validate_name(text)?;
            AgentId::named(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_full_form() {
        let uri = parse_agent_uri("tacoma://cl2.cs.uit.no:27017//vm_c:933821661").unwrap();
        assert_eq!(uri.host(), Some("cl2.cs.uit.no"));
        assert_eq!(uri.port(), Some(27017));
        assert_eq!(uri.principal(), None);
        assert_eq!(uri.name(), Some("vm_c"));
        assert_eq!(uri.instance().unwrap().as_str(), "933821661");
    }

    #[test]
    fn paper_example_2_principal_no_instance() {
        let uri = parse_agent_uri("tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron").unwrap();
        assert_eq!(uri.host(), Some("cl2.cs.uit.no"));
        assert_eq!(uri.port(), None);
        assert_eq!(uri.principal(), Some("tacoma@cl2.cs.uit.no"));
        assert_eq!(uri.name(), Some("ag_cron"));
        assert_eq!(uri.instance(), None);
    }

    #[test]
    fn paper_example_3_local_instance_only() {
        let uri = parse_agent_uri("tacomaproject/:933821661").unwrap();
        assert!(uri.is_local());
        assert_eq!(uri.principal(), Some("tacomaproject"));
        assert_eq!(uri.name(), None);
        assert_eq!(uri.instance().unwrap().as_str(), "933821661");
    }

    #[test]
    fn bare_name_is_local_service_address() {
        let uri = parse_agent_uri("ag_fs").unwrap();
        assert!(uri.is_local());
        assert_eq!(uri.principal(), None);
        assert_eq!(uri.name(), Some("ag_fs"));
        assert_eq!(uri.instance(), None);
    }

    #[test]
    fn bare_instance_is_accepted() {
        let uri = parse_agent_uri(":deadbeef").unwrap();
        assert_eq!(uri.name(), None);
        assert_eq!(uri.instance().unwrap().as_u64(), Some(0xdead_beef));
    }

    #[test]
    fn name_and_instance() {
        let uri = parse_agent_uri("webbot:42").unwrap();
        assert_eq!(uri.name(), Some("webbot"));
        assert_eq!(uri.instance().unwrap().as_u64(), Some(0x42));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse_agent_uri(""), Err(ParseUriError::Empty));
    }

    #[test]
    fn remote_without_path_rejected() {
        assert!(matches!(
            parse_agent_uri("tacoma://host.only"),
            Err(ParseUriError::BadHost { .. })
        ));
    }

    #[test]
    fn remote_with_empty_id_rejected() {
        assert_eq!(
            parse_agent_uri("tacoma://h1/"),
            Err(ParseUriError::MissingAgentId)
        );
        assert_eq!(
            parse_agent_uri("tacoma://h1//"),
            Err(ParseUriError::MissingAgentId)
        );
    }

    #[test]
    fn bad_port_rejected() {
        assert!(matches!(
            parse_agent_uri("tacoma://h1:99999/ag_fs"),
            Err(ParseUriError::BadPort { .. })
        ));
        assert!(matches!(
            parse_agent_uri("tacoma://h1:abc/ag_fs"),
            Err(ParseUriError::BadPort { .. })
        ));
    }

    #[test]
    fn too_many_segments_rejected() {
        assert_eq!(
            parse_agent_uri("a/b/c/d"),
            Err(ParseUriError::TooManySegments { found: 4 })
        );
    }

    #[test]
    fn colon_with_bad_hex_rejected() {
        assert!(matches!(
            parse_agent_uri("name:zz"),
            Err(ParseUriError::BadInstance { .. })
        ));
        assert!(matches!(
            parse_agent_uri("name:"),
            Err(ParseUriError::BadInstance { .. })
        ));
    }

    #[test]
    fn principal_with_at_sign_accepted_in_local_form() {
        let uri = parse_agent_uri("tacoma@h1/ag_cc").unwrap();
        assert_eq!(uri.principal(), Some("tacoma@h1"));
        assert_eq!(uri.name(), Some("ag_cc"));
    }
}
