use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ParseUriError;

/// An agent instance number: a non-empty hexadecimal string (Figure 2:
/// `instance ::= hex [instance]`).
///
/// Instances distinguish entities sharing a name; `spawn()` "creates a new
/// agent with a different instance number" (§3.1). Stored in normalized
/// form (lowercase, leading zeros stripped) so that `0x00FF` and `ff`
/// compare equal.
///
/// ```
/// use tacoma_uri::Instance;
///
/// let i: Instance = "933821661".parse().unwrap();
/// assert_eq!(i.to_string(), "933821661");
/// assert_eq!("00FF".parse::<Instance>().unwrap(), "ff".parse().unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Instance(String);

impl Instance {
    /// Builds an instance from an integer value.
    pub fn from_u64(value: u64) -> Self {
        Instance(format!("{value:x}"))
    }

    /// The normalized hexadecimal text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The numeric value, if it fits in a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        u64::from_str_radix(&self.0, 16).ok()
    }
}

impl std::str::FromStr for Instance {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseUriError::BadInstance {
                instance: s.to_owned(),
            });
        }
        let normalized = s.trim_start_matches('0').to_ascii_lowercase();
        if normalized.is_empty() {
            // All-zero instances normalize to "0".
            return Ok(Instance("0".to_owned()));
        }
        Ok(Instance(normalized))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Instance({})", self.0)
    }
}

impl From<u64> for Instance {
    fn from(value: u64) -> Self {
        Instance::from_u64(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_normalization() {
        let a: Instance = "00FF".parse().unwrap();
        let b: Instance = "ff".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.as_u64(), Some(255));
    }

    #[test]
    fn zero_normalizes_to_single_zero() {
        let z: Instance = "0000".parse().unwrap();
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.as_u64(), Some(0));
    }

    #[test]
    fn from_u64_roundtrips() {
        let i = Instance::from_u64(0x933821661);
        assert_eq!(i.as_u64(), Some(0x933821661));
    }

    #[test]
    fn empty_and_nonhex_rejected() {
        assert!("".parse::<Instance>().is_err());
        assert!("xyz".parse::<Instance>().is_err());
        assert!("12 34".parse::<Instance>().is_err());
    }

    #[test]
    fn huge_instances_allowed_without_numeric_value() {
        let big = "f".repeat(40);
        let i: Instance = big.parse().unwrap();
        assert_eq!(i.as_u64(), None);
        assert_eq!(i.as_str().len(), 40);
    }
}
