//! Partial-name matching, as performed by the firewall (§3.2):
//!
//! > "The firewall also provides basic matching functionality if the full
//! > name of the receiver is unknown. […] Furthermore, if the principal is
//! > left out, only two principals are considered as valid; the local
//! > system, or the principal of the mobile agent. The last part can be
//! > given as either a name, an instance number or both."

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AgentUri, Instance};

/// The complete, concrete identity of a *registered* agent: unlike an
/// [`AgentUri`] (which is a pattern), an address always carries principal,
/// name, and instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgentAddress {
    principal: String,
    name: String,
    instance: Instance,
}

impl AgentAddress {
    /// Creates the address of a registered agent.
    pub fn new(principal: impl Into<String>, name: impl Into<String>, instance: Instance) -> Self {
        AgentAddress {
            principal: principal.into(),
            name: name.into(),
            instance,
        }
    }

    /// The principal on whose behalf the agent runs.
    pub fn principal(&self) -> &str {
        &self.principal
    }

    /// The agent's symbolic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's instance number.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Matches a target URI against this address, under the §3.2 rules.
    ///
    /// `local_system` is the local system principal; `sender` is the
    /// principal of the agent attempting the communication. These are
    /// consulted only when the target omits its principal.
    pub fn matches(&self, target: &AgentUri, local_system: &str, sender: &str) -> MatchOutcome {
        match target.principal() {
            Some(p) => {
                if p != self.principal {
                    return MatchOutcome::PrincipalMismatch;
                }
            }
            None => {
                // Principal omitted: valid only if the receiver belongs to
                // the local system or to the sender itself.
                if self.principal != local_system && self.principal != sender {
                    return MatchOutcome::PrincipalDenied;
                }
            }
        }
        if let Some(name) = target.name() {
            if name != self.name {
                return MatchOutcome::NameMismatch;
            }
        }
        if let Some(instance) = target.instance() {
            if instance != &self.instance {
                return MatchOutcome::InstanceMismatch;
            }
        }
        MatchOutcome::Match
    }

    /// Converts this concrete address into an exact URI (no location).
    pub fn to_uri(&self) -> AgentUri {
        AgentUri::from_parts(
            None,
            Some(self.principal.clone()),
            crate::AgentId::exact(&self.name, self.instance.clone())
                .expect("registered names are validated at registration"),
        )
    }
}

impl fmt::Display for AgentAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}:{}", self.principal, self.name, self.instance)
    }
}

/// The result of matching a target URI against a registered agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchOutcome {
    /// All present parts of the target agree with the address.
    Match,
    /// The target named a different principal.
    PrincipalMismatch,
    /// The target omitted the principal, and the receiver belongs to
    /// neither the local system nor the sender.
    PrincipalDenied,
    /// The target's name differs.
    NameMismatch,
    /// The target's instance differs.
    InstanceMismatch,
}

impl MatchOutcome {
    /// Whether the outcome is a successful match.
    pub fn is_match(self) -> bool {
        self == MatchOutcome::Match
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> AgentAddress {
        AgentAddress::new("alice@h1", "webbot", Instance::from_u64(0x42))
    }

    #[test]
    fn name_only_matches_any_instance() {
        let target: AgentUri = "alice@h1/webbot".parse().unwrap();
        assert!(addr().matches(&target, "system", "bob").is_match());
    }

    #[test]
    fn instance_only_matches_any_name() {
        let target: AgentUri = "alice@h1/:42".parse().unwrap();
        assert!(addr().matches(&target, "system", "bob").is_match());
    }

    #[test]
    fn exact_id_must_agree_on_both() {
        let ok: AgentUri = "alice@h1/webbot:42".parse().unwrap();
        assert!(addr().matches(&ok, "system", "bob").is_match());
        let wrong_inst: AgentUri = "alice@h1/webbot:43".parse().unwrap();
        assert_eq!(
            addr().matches(&wrong_inst, "system", "bob"),
            MatchOutcome::InstanceMismatch
        );
        let wrong_name: AgentUri = "alice@h1/other:42".parse().unwrap();
        assert_eq!(
            addr().matches(&wrong_name, "system", "bob"),
            MatchOutcome::NameMismatch
        );
    }

    #[test]
    fn omitted_principal_allows_local_system() {
        let sys = AgentAddress::new("system", "ag_fs", Instance::from_u64(1));
        let target: AgentUri = "ag_fs".parse().unwrap();
        assert!(sys.matches(&target, "system", "alice@h1").is_match());
    }

    #[test]
    fn omitted_principal_allows_senders_own_agents() {
        let target: AgentUri = "webbot".parse().unwrap();
        assert!(addr().matches(&target, "system", "alice@h1").is_match());
    }

    #[test]
    fn omitted_principal_denies_third_parties() {
        let target: AgentUri = "webbot".parse().unwrap();
        assert_eq!(
            addr().matches(&target, "system", "mallory@h9"),
            MatchOutcome::PrincipalDenied
        );
    }

    #[test]
    fn explicit_principal_mismatch_detected() {
        let target: AgentUri = "bob@h1/webbot".parse().unwrap();
        assert_eq!(
            addr().matches(&target, "system", "bob@h1"),
            MatchOutcome::PrincipalMismatch
        );
    }

    #[test]
    fn to_uri_is_exact_and_matches_self() {
        let a = addr();
        let uri = a.to_uri();
        assert!(uri.id().is_exact());
        assert!(a.matches(&uri, "system", "anyone").is_match());
    }

    #[test]
    fn instance_comparison_uses_normalized_hex() {
        let a = AgentAddress::new("p", "n", "00ff".parse().unwrap());
        let target: AgentUri = "p/n:FF".parse().unwrap();
        assert!(a.matches(&target, "system", "x").is_match());
    }
}
