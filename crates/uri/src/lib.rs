//! Agent URIs: the shorthand EBNF notation of TAX 2.0, Figure 2.
//!
//! ```text
//! tacomauri ::= [tacoma://hostport/] agpath
//! hostport  ::= host [":" port]
//! agpath    ::= [principal "/"] agentid
//! agentid   ::= name ":" instance | name | ":" instance
//! name      ::= alphanum [name]
//! instance  ::= hex [instance]
//! ```
//!
//! An agent is addressed by *host, port, principal, name, and instance*
//! (§3.2), every part optional except that at least a name or an instance
//! must be present:
//!
//! * If the remote part (`tacoma://host[:port]/`) is left out, the firewall
//!   assumes a **local** target.
//! * If the principal is left out, only two principals are considered
//!   valid: the local system, or the principal of the sending agent.
//! * Supplying only a name addresses "a broader class of agents like
//!   service agents"; supplying the instance pins a specific entity.
//!
//! The paper's own examples all parse:
//!
//! ```
//! use tacoma_uri::AgentUri;
//!
//! # fn main() -> Result<(), tacoma_uri::ParseUriError> {
//! let a: AgentUri = "tacoma://cl2.cs.uit.no:27017//vm_c:933821661".parse()?;
//! assert_eq!(a.host().unwrap(), "cl2.cs.uit.no");
//! assert_eq!(a.port(), Some(27017));
//! assert_eq!(a.name(), Some("vm_c"));
//!
//! let b: AgentUri = "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron".parse()?;
//! assert_eq!(b.principal().unwrap(), "tacoma@cl2.cs.uit.no");
//! assert_eq!(b.instance(), None);
//!
//! let c: AgentUri = "tacomaproject/:933821661".parse()?;
//! assert!(c.is_local());
//! assert_eq!(c.principal().unwrap(), "tacomaproject");
//! assert_eq!(c.name(), None);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod instance;
mod matcher;
mod parse;
mod uri;

pub use error::ParseUriError;
pub use instance::Instance;
pub use matcher::{AgentAddress, MatchOutcome};
pub use uri::{AgentId, AgentUri, HostPort};

/// The default firewall port assumed when an agent URI names a host without
/// a port (the paper's examples use 27017).
pub const DEFAULT_PORT: u16 = 27017;

/// The URI scheme prefix.
pub const SCHEME: &str = "tacoma://";
