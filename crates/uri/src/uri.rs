use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{parse, Instance, ParseUriError, DEFAULT_PORT, SCHEME};

/// The `hostport` production of Figure 2: a host name with an optional
/// firewall port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostPort {
    host: String,
    port: Option<u16>,
}

impl HostPort {
    /// Creates a host with no explicit port.
    ///
    /// # Errors
    ///
    /// [`ParseUriError::BadHost`] if `host` is empty or contains characters
    /// outside `[A-Za-z0-9.-]`.
    pub fn new(host: impl Into<String>) -> Result<Self, ParseUriError> {
        let host = host.into();
        if host.is_empty()
            || !host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        {
            return Err(ParseUriError::BadHost { host });
        }
        Ok(HostPort { host, port: None })
    }

    /// Creates a host with an explicit port.
    ///
    /// # Errors
    ///
    /// As [`HostPort::new`].
    pub fn with_port(host: impl Into<String>, port: u16) -> Result<Self, ParseUriError> {
        let mut hp = HostPort::new(host)?;
        hp.port = Some(port);
        Ok(hp)
    }

    /// The host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if one was given.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The port to actually connect to: the explicit port, or
    /// [`DEFAULT_PORT`].
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or(DEFAULT_PORT)
    }
}

impl fmt::Display for HostPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            Some(p) => write!(f, "{}:{p}", self.host),
            None => f.write_str(&self.host),
        }
    }
}

/// The `agentid` production of Figure 2: a name, an instance, or both.
///
/// At least one of the two is always present — this invariant is enforced
/// by the constructors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgentId {
    name: Option<String>,
    instance: Option<Instance>,
}

impl AgentId {
    /// An id addressing a whole class of agents by name — "useful if one
    /// wishes to establish communication with a broader class of agents
    /// like service agents" (§3.2).
    ///
    /// # Errors
    ///
    /// [`ParseUriError::BadName`] on invalid name characters.
    pub fn named(name: impl Into<String>) -> Result<Self, ParseUriError> {
        let name = name.into();
        validate_name(&name)?;
        Ok(AgentId {
            name: Some(name),
            instance: None,
        })
    }

    /// An id addressing a specific instance regardless of name.
    pub fn instance_only(instance: Instance) -> Self {
        AgentId {
            name: None,
            instance: Some(instance),
        }
    }

    /// An id addressing a specific named instance — "the instance number
    /// may be used if one wishes to make sure one continues to communicate
    /// with the same entity" (§3.2).
    ///
    /// # Errors
    ///
    /// [`ParseUriError::BadName`] on invalid name characters.
    pub fn exact(name: impl Into<String>, instance: Instance) -> Result<Self, ParseUriError> {
        let name = name.into();
        validate_name(&name)?;
        Ok(AgentId {
            name: Some(name),
            instance: Some(instance),
        })
    }

    /// The name part, if present.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The instance part, if present.
    pub fn instance(&self) -> Option<&Instance> {
        self.instance.as_ref()
    }

    /// Whether this id pins both name and instance.
    pub fn is_exact(&self) -> bool {
        self.name.is_some() && self.instance.is_some()
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.instance) {
            (Some(n), Some(i)) => write!(f, "{n}:{i}"),
            (Some(n), None) => f.write_str(n),
            (None, Some(i)) => write!(f, ":{i}"),
            (None, None) => unreachable!("AgentId invariant: name or instance present"),
        }
    }
}

pub(crate) fn validate_name(name: &str) -> Result<(), ParseUriError> {
    // Figure 2 says `alphanum`; the paper's own examples (`vm_c`,
    // `ag_cron`) include underscores, so `_` and `-` are accepted too.
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(ParseUriError::BadName {
            name: name.to_owned(),
        });
    }
    Ok(())
}

pub(crate) fn validate_principal(principal: &str) -> Result<(), ParseUriError> {
    // Principals look like `tacoma@cl2.cs.uit.no` or a bare project name.
    if principal.is_empty()
        || !principal
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'@'))
    {
        return Err(ParseUriError::BadPrincipal {
            principal: principal.to_owned(),
        });
    }
    Ok(())
}

/// A full agent URI (Figure 2): optional location, optional principal, and
/// an agent id.
///
/// `AgentUri` is an address *pattern*, not necessarily a unique key: a URI
/// with only a name matches every instance carrying that name (see
/// [`crate::AgentAddress`] for the matcher).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgentUri {
    location: Option<HostPort>,
    principal: Option<String>,
    id: AgentId,
}

impl AgentUri {
    /// A local URI (no remote part) addressing agents by name.
    ///
    /// # Errors
    ///
    /// [`ParseUriError::BadName`] on invalid name characters.
    pub fn local(name: impl Into<String>) -> Result<Self, ParseUriError> {
        Ok(AgentUri {
            location: None,
            principal: None,
            id: AgentId::named(name)?,
        })
    }

    /// A URI from parts.
    pub fn from_parts(location: Option<HostPort>, principal: Option<String>, id: AgentId) -> Self {
        AgentUri {
            location,
            principal,
            id,
        }
    }

    /// Returns this URI relocated to the given host (used when a local
    /// name must be advertised remotely).
    pub fn at(mut self, location: HostPort) -> Self {
        self.location = Some(location);
        self
    }

    /// Returns this URI with the principal set.
    ///
    /// # Errors
    ///
    /// [`ParseUriError::BadPrincipal`] on invalid principal characters.
    pub fn owned_by(mut self, principal: impl Into<String>) -> Result<Self, ParseUriError> {
        let principal = principal.into();
        validate_principal(&principal)?;
        self.principal = Some(principal);
        Ok(self)
    }

    /// Returns this URI with the instance pinned.
    pub fn with_instance(mut self, instance: Instance) -> Self {
        self.id.instance = Some(instance);
        self
    }

    /// The location part, if the URI is remote.
    pub fn location(&self) -> Option<&HostPort> {
        self.location.as_ref()
    }

    /// The host name, if the URI is remote.
    pub fn host(&self) -> Option<&str> {
        self.location.as_ref().map(HostPort::host)
    }

    /// The explicit port, if one was given.
    pub fn port(&self) -> Option<u16> {
        self.location.as_ref().and_then(HostPort::port)
    }

    /// Whether the remote part is absent — "the firewall will assume a
    /// local target" (§3.2).
    pub fn is_local(&self) -> bool {
        self.location.is_none()
    }

    /// The principal, if given.
    pub fn principal(&self) -> Option<&str> {
        self.principal.as_deref()
    }

    /// The agent id (name and/or instance).
    pub fn id(&self) -> &AgentId {
        &self.id
    }

    /// The name part of the agent id, if present.
    pub fn name(&self) -> Option<&str> {
        self.id.name()
    }

    /// The instance part of the agent id, if present.
    pub fn instance(&self) -> Option<&Instance> {
        self.id.instance()
    }
}

impl FromStr for AgentUri {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse::parse_agent_uri(s)
    }
}

// Display is the exact inverse of the parser.
impl fmt::Display for AgentUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(loc) = &self.location {
            write!(f, "{SCHEME}{loc}/")?;
        }
        if let Some(p) = &self.principal {
            write!(f, "{p}/")?;
        }
        write!(f, "{}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_all_shapes() {
        for text in [
            "tacoma://cl2.cs.uit.no:27017/proj/vm_c:933821661",
            "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron",
            "tacomaproject/:933821661",
            "ag_fs",
            ":beef",
            "tacoma://h1/ag_exec",
        ] {
            let uri: AgentUri = text.parse().unwrap();
            assert_eq!(uri.to_string(), text, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn effective_port_defaults() {
        let hp = HostPort::new("h1").unwrap();
        assert_eq!(hp.effective_port(), DEFAULT_PORT);
        let hp = HostPort::with_port("h1", 9).unwrap();
        assert_eq!(hp.effective_port(), 9);
    }

    #[test]
    fn builders_compose() {
        let uri = AgentUri::local("ag_fs")
            .unwrap()
            .owned_by("sys@h1")
            .unwrap()
            .at(HostPort::with_port("h1", 27017).unwrap())
            .with_instance(Instance::from_u64(7));
        assert_eq!(uri.to_string(), "tacoma://h1:27017/sys@h1/ag_fs:7");
        assert!(!uri.is_local());
        assert!(uri.id().is_exact());
    }

    #[test]
    fn empty_host_rejected() {
        assert!(HostPort::new("").is_err());
        assert!(HostPort::new("bad host").is_err());
    }

    #[test]
    fn bad_names_rejected() {
        assert!(AgentId::named("").is_err());
        assert!(AgentId::named("has space").is_err());
        assert!(AgentId::named("vm_c").is_ok());
        assert!(AgentId::named("ag-exec2").is_ok());
    }
}
