//! The acceptance scenario for undeliverable mail over real TCP: a
//! Deliver message whose destination daemon is down is *parked* in the
//! pending queue (never silently dropped), survives failed redelivery
//! sweeps with its original deadline, and goes out the moment the peer
//! comes back.

use tacoma_briefcase::Briefcase;
use tacoma_firewall::{Decision, Firewall, Message};
use tacoma_security::{Policy, Principal, TrustStore};
use tacoma_simnet::SimTime;
use tacoma_transport::{BackoffPolicy, ListenerConfig, TcpConfig, TcpTransport, TransportListener};

fn firewall() -> Firewall {
    Firewall::new("alpha", 4711, Policy::trusting(), TrustStore::new())
}

fn transport() -> TcpTransport {
    let mut config = TcpConfig {
        backoff: BackoffPolicy::fast(),
        ..TcpConfig::default()
    };
    config.connect.local_host = "alpha".to_owned();
    TcpTransport::new(config)
}

fn mail_to_beta() -> Message {
    let mut bc = Briefcase::new();
    bc.set_single("NOTE", "do not lose me");
    Message::deliver(
        "alpha",
        Principal::new("alice").unwrap(),
        None,
        "tacoma://beta/worker".parse().unwrap(),
        bc,
    )
}

#[test]
fn down_peer_parks_then_requeue_delivers_when_it_returns() {
    let mut fw = firewall();
    let transport = transport();
    let now = SimTime::ZERO;

    // Phase 1: beta is down (a port nothing listens on).
    let dead_port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    transport.add_peer("beta", format!("127.0.0.1:{dead_port}"));

    let decision = fw
        .dispatch_outbound(mail_to_beta(), now, &transport)
        .unwrap();
    assert!(matches!(decision, Decision::Queued), "got {decision:?}");
    assert_eq!(fw.pending_len(), 1, "the message is parked, not dropped");
    let stats = fw.stats();
    assert_eq!(stats.queued, 1);
    assert_eq!(stats.retry_timeouts, 1);
    assert_eq!(stats.frames_sent, 0);

    // Phase 2: a sweep while beta is still down re-parks the message.
    let (delivered, reparked) = fw.redeliver_remote_pending(now, &transport);
    assert_eq!((delivered, reparked), (0, 1));
    assert_eq!(fw.pending_len(), 1);

    // Phase 3: beta comes back; the next sweep drains the queue.
    let listener =
        TransportListener::bind("127.0.0.1:0", ListenerConfig::trusting("beta")).unwrap();
    transport.add_peer("beta", listener.local_addr().to_string());

    let (delivered, reparked) = fw.redeliver_remote_pending(now, &transport);
    assert_eq!((delivered, reparked), (1, 0));
    assert_eq!(fw.pending_len(), 0);
    assert_eq!(fw.stats().frames_sent, 1);

    // The bytes that arrived at beta decode back to the parked message.
    let inbound = listener
        .incoming()
        .recv_timeout(std::time::Duration::from_secs(5))
        .unwrap();
    assert_eq!(inbound.from_host, "alpha");
    let message = Message::decode(&inbound.payload).unwrap();
    assert_eq!(
        message.briefcase.single_str("NOTE").unwrap(),
        "do not lose me"
    );
}

#[test]
fn parked_mail_still_honours_its_deadline_across_sweeps() {
    let mut fw = firewall();
    let transport = transport();
    let dead_port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    transport.add_peer("beta", format!("127.0.0.1:{dead_port}"));

    let start = SimTime::ZERO;
    fw.dispatch_outbound(mail_to_beta(), start, &transport)
        .unwrap();

    // Sweeps while down re-park but never extend the deadline.
    let mid = start + std::time::Duration::from_secs(10);
    let (_, reparked) = fw.redeliver_remote_pending(mid, &transport);
    assert_eq!(reparked, 1);

    // Past the original 30 s queue timeout the message expires instead of
    // being retried forever.
    let late = start + std::time::Duration::from_secs(40);
    let (delivered, reparked) = fw.redeliver_remote_pending(late, &transport);
    assert_eq!((delivered, reparked), (0, 0), "expired mail is not retried");
    assert_eq!(fw.expire_pending(late), 1);
    assert_eq!(fw.pending_len(), 0);
    assert_eq!(fw.stats().expired, 1);
}
