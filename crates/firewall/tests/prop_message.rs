//! Property tests for the inter-firewall wire format.

use proptest::prelude::*;
use tacoma_briefcase::{Briefcase, Folder};
use tacoma_firewall::{Message, MessageKind};
use tacoma_security::Principal;
use tacoma_uri::{AgentAddress, Instance};

fn arb_briefcase() -> impl Strategy<Value = Briefcase> {
    prop::collection::btree_map(
        "[A-Za-z0-9:-]{1,16}",
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..4),
        0..5,
    )
    .prop_map(|map| {
        map.into_iter()
            .map(|(name, elements)| {
                let mut f = Folder::new(name);
                f.extend(elements);
                f
            })
            .collect()
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        prop_oneof![
            Just(MessageKind::Deliver),
            Just(MessageKind::AgentTransfer { spawned: false }),
            Just(MessageKind::AgentTransfer { spawned: true }),
        ],
        "[a-z][a-z0-9.]{0,12}",
        "[a-z][a-z0-9@.]{0,12}",
        prop::option::of(("[a-z][a-z0-9]{0,8}", "[a-z][a-z0-9_]{0,8}", any::<u64>())),
        "[a-z][a-z0-9_]{0,10}",
        arb_briefcase(),
        prop::option::of("[a-f0-9]{16}"),
        prop::option::of("[a-f0-9]{16}"),
    )
        .prop_map(
            |(kind, from_host, principal, agent, to_name, briefcase, hop, hop_parent)| {
                let from_agent =
                    agent.map(|(p, n, i)| AgentAddress::new(p, n, Instance::from_u64(i)));
                Message {
                    kind,
                    from_host,
                    from_principal: Principal::new(principal).expect("generated principal valid"),
                    from_agent,
                    to: tacoma_uri::AgentUri::local(to_name).expect("generated name valid"),
                    briefcase,
                    hop,
                    hop_parent,
                }
            },
        )
}

proptest! {
    /// encode → decode is the identity on every constructible message.
    #[test]
    fn roundtrip(message in arb_message()) {
        let wire = message.encode();
        prop_assert_eq!(wire.len(), message.encoded_len());
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(message, back);
    }

    /// The decoder is total on arbitrary bytes.
    #[test]
    fn decode_total(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Message::decode(&bytes);
    }

    /// Flipping one byte of a valid frame never panics, and either fails
    /// to decode or decodes to *some* well-formed message.
    #[test]
    fn corruption_contained(message in arb_message(), idx in any::<prop::sample::Index>(), xor in 1u8..) {
        let mut wire = message.encode();
        let i = idx.index(wire.len());
        wire[i] ^= xor;
        let _ = Message::decode(&wire);
    }
}
