//! End-to-end admission: a signed agent arrives at the firewall carrying
//! TaxScript bytecode; the firewall verifies the code and compares its
//! capability manifest against the sending principal's ACL grant.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_firewall::{AdmissionPolicy, Decision, Firewall, FirewallError, Message};
use tacoma_security::{Keyring, Policy, Principal, Rights, TrustStore};
use tacoma_simnet::SimTime;
use tacoma_taxscript::compile_source;
use tacoma_vm::code_types;

/// A firewall whose policy grants `alice` exactly `rights`, with alice's
/// signing key trusted.
fn firewall_granting(rights: Rights) -> (Firewall, Keyring) {
    let alice = Principal::new("alice").unwrap();
    let keys = Keyring::generate(&alice, 9);
    let mut policy = Policy::new();
    policy.grant(alice, rights);
    let mut fw = Firewall::new("h1", 27017, policy, TrustStore::new());
    fw.add_vm("vm_script");
    fw.trust_mut().trust(keys.public());
    (fw, keys)
}

/// A signed transfer from `alice` carrying `src` compiled to bytecode.
fn signed_transfer(keys: &Keyring, src: &str) -> Message {
    let code = compile_source(src).unwrap().encode();
    let mut bc = Briefcase::new();
    bc.set_single(folders::AGENT_NAME, "courier");
    bc.set_single(folders::PRINCIPAL, "alice");
    bc.append(folders::CODE, code.clone());
    bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
    bc.set_single(folders::SIGNATURE, keys.sign(&code).digest().to_hex());
    Message::transfer(
        "h2",
        Principal::new("alice").unwrap(),
        "tacoma://h1/vm_script".parse().unwrap(),
        bc,
        false,
    )
}

const MOBILE_AGENT: &str = r#"
    fn main() {
        while (1) {
            let e = bc_remove("HOSTS", 0);
            if (e == nil) { exit(0); }
            if (go(e)) { display("unreachable: " + e); }
        }
    }
"#;

const STATIONARY_AGENT: &str = r#"
    fn main() { bc_append("RESULTS", host_name()); exit(0); }
"#;

#[test]
fn agent_within_grant_installs_and_counts_as_verified() {
    let (mut fw, keys) = firewall_granting(Rights::EXECUTE.with(Rights::SEND_REMOTE));
    let d = fw
        .route_inbound(signed_transfer(&keys, MOBILE_AGENT), SimTime::ZERO)
        .unwrap();
    assert!(matches!(d, Decision::InstallAgent { .. }));
    assert_eq!(fw.stats().code_verified, 1);
    assert_eq!(fw.stats().code_rejected, 0);
    assert_eq!(fw.stats().agents_installed, 1);
}

#[test]
fn capabilities_exceeding_grant_are_rejected_and_counted() {
    // alice may execute here but not send onward — a go()-capable agent
    // exceeds her grant even though its signature is perfectly valid.
    let (mut fw, keys) = firewall_granting(Rights::EXECUTE);
    let err = fw
        .route_inbound(signed_transfer(&keys, MOBILE_AGENT), SimTime::ZERO)
        .unwrap_err();
    assert!(
        matches!(err, FirewallError::CodeRejected(_)),
        "expected CodeRejected, got {err:?}"
    );
    let stats = fw.stats();
    assert_eq!(stats.code_rejected, 1, "rejection must be visible in stats");
    assert_eq!(stats.denied, 1);
    assert_eq!(stats.code_verified, 0);
    assert_eq!(stats.agents_installed, 0, "agent must not land");
}

#[test]
fn stationary_agent_passes_under_minimal_grant() {
    let (mut fw, keys) = firewall_granting(Rights::EXECUTE);
    let d = fw
        .route_inbound(signed_transfer(&keys, STATIONARY_AGENT), SimTime::ZERO)
        .unwrap();
    assert!(matches!(d, Decision::InstallAgent { .. }));
    assert_eq!(fw.stats().code_verified, 1);
}

#[test]
fn unverifiable_bytecode_is_rejected_even_with_full_rights() {
    let (mut fw, keys) = firewall_granting(Rights::ALL);
    // Hand-tamper the bytecode after compiling, then re-sign it so the
    // signature check passes. A jump to code_len survives decode
    // (Program::validate tolerates it) — only the verifier catches it.
    let mut program = compile_source(STATIONARY_AGENT).unwrap();
    let main = program.main_index();
    let end = program.functions()[main].code.len() as u32;
    program.functions_mut()[main].code[0] = tacoma_taxscript::Op::Jump(end);
    let code = program.encode();
    assert!(
        tacoma_taxscript::Program::decode(&code).is_ok(),
        "tamper must survive decode"
    );

    let mut bc = Briefcase::new();
    bc.set_single(folders::AGENT_NAME, "courier");
    bc.set_single(folders::PRINCIPAL, "alice");
    bc.append(folders::CODE, code.clone());
    bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
    bc.set_single(folders::SIGNATURE, keys.sign(&code).digest().to_hex());
    let m = Message::transfer(
        "h2",
        Principal::new("alice").unwrap(),
        "tacoma://h1/vm_script".parse().unwrap(),
        bc,
        false,
    );

    let err = fw.route_inbound(m, SimTime::ZERO).unwrap_err();
    assert!(matches!(err, FirewallError::CodeRejected(_)), "{err:?}");
    assert_eq!(fw.stats().code_rejected, 1);
}

#[test]
fn disabled_admission_restores_old_behaviour() {
    let (mut fw, keys) = firewall_granting(Rights::EXECUTE);
    fw.set_admission(AdmissionPolicy::disabled());
    let d = fw
        .route_inbound(signed_transfer(&keys, MOBILE_AGENT), SimTime::ZERO)
        .unwrap();
    assert!(matches!(d, Decision::InstallAgent { .. }));
    assert_eq!(fw.stats().code_verified, 0);
}
