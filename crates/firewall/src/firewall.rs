//! The firewall proper: policy decisions for every mediated message.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tacoma_briefcase::{folders, Briefcase};
use tacoma_journal::{Journal, OpenHop};
use tacoma_security::Digest;
use tacoma_security::{Policy, Principal, Rights, SecurityError, Signature, TrustStore};
use tacoma_simnet::SimTime;
use tacoma_uri::{AgentAddress, AgentUri, Instance};

use crate::registry::AgentStatus;
use crate::{
    AdmissionPolicy, AdmissionVerdict, FirewallError, FirewallStats, Message, MessageKind,
    PendingQueue, Registry, DEFAULT_QUEUE_TIMEOUT,
};

/// The reserved agent name that addresses the firewall itself ("all this
/// is achieved by addressing messages directly to the firewall", §3.2).
pub const FIREWALL_AGENT_NAME: &str = "firewall";

/// What the kernel must do with a routed message.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Hand the message to a local VM for a specific agent.
    DeliverLocal {
        /// VM executing the receiver.
        vm: String,
        /// The receiver's concrete address.
        agent: AgentAddress,
        /// The message.
        message: Message,
    },
    /// Ship the message to the firewall at `host:port`.
    ForwardRemote {
        /// Destination host name.
        host: String,
        /// Destination firewall port.
        port: u16,
        /// The message.
        message: Message,
    },
    /// The message was handed to the transport and acknowledged; nothing
    /// more to do. Only [`Firewall::dispatch_outbound`] produces this.
    Forwarded {
        /// Destination host name.
        host: String,
        /// Encoded size that went over the wire.
        bytes: usize,
    },
    /// The receiver is absent or not ready; the message was queued with a
    /// timeout.
    Queued,
    /// Install an arriving agent on a VM (the landing half of `go`/`spawn`).
    InstallAgent {
        /// VM chosen by the target URI's name part.
        vm: String,
        /// The address allocated to the new arrival.
        address: AgentAddress,
        /// The agent's briefcase (code + state).
        briefcase: Briefcase,
        /// Whether this was a `spawn`.
        spawned: bool,
        /// The hop dedup key the transfer travelled under, if the sender
        /// journals migrations; the kernel commits it to the journal when
        /// the installed task finishes.
        hop: Option<String>,
    },
    /// The firewall handled an admin operation itself; deliver `reply` to
    /// the requester, and apply `control` to a VM if present.
    Admin {
        /// The reply briefcase (status, listings, …).
        reply: Briefcase,
        /// A control action for the kernel to apply, if the command
        /// demanded one.
        control: Option<ControlAction>,
    },
}

/// A control action the firewall orders a VM to carry out. "Agents with
/// sufficient privileges need support for operations such as listing
/// running agents, determining their run time, and killing or stopping
/// agents" (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlAction {
    /// The VM running the target agent.
    pub vm: String,
    /// The target agent.
    pub agent: AgentAddress,
    /// What to do.
    pub kind: ControlKind,
}

/// The kinds of admin control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Terminate the agent.
    Kill,
    /// Suspend the agent (it stops receiving messages; they queue).
    Stop,
    /// Resume a stopped agent.
    Resume,
}

/// A message handed to a nonblocking transport whose completion has not
/// come back yet: everything needed to finish the bookkeeping (on ack) or
/// to park the message (on failure) when [`Firewall::pump_transport`]
/// drains the completion. Only plain deliveries ride this path, so a
/// ticket never carries a hop key.
#[derive(Debug)]
struct ShipTicket {
    message: Message,
    bytes: usize,
}

/// The per-host firewall.
#[derive(Debug)]
pub struct Firewall {
    host: String,
    port: u16,
    local_system: Principal,
    policy: Policy,
    trust: TrustStore,
    registry: Registry,
    pending: PendingQueue,
    vms: BTreeSet<String>,
    admission: AdmissionPolicy,
    stats: FirewallStats,
    queue_timeout: Duration,
    next_instance: u64,
    journal: Option<Arc<Journal>>,
    inflight: HashMap<u64, ShipTicket>,
    next_ship_token: u64,
}

impl Firewall {
    /// A firewall for `host`, listening on `port`, with the given policy
    /// and trust store.
    pub fn new(host: impl Into<String>, port: u16, policy: Policy, trust: TrustStore) -> Self {
        let host = host.into();
        Firewall {
            local_system: Principal::local_system(&host),
            host,
            port,
            policy,
            trust,
            registry: Registry::new(),
            pending: PendingQueue::new(),
            vms: BTreeSet::new(),
            admission: AdmissionPolicy::default(),
            stats: FirewallStats::default(),
            queue_timeout: DEFAULT_QUEUE_TIMEOUT,
            next_instance: 1,
            journal: None,
            inflight: HashMap::new(),
            next_ship_token: 1,
        }
    }

    /// Attaches a durable journal: from here on, parked mail and
    /// migrations are journaled write-ahead, and delivery/completion
    /// records follow fsync-batched.
    pub fn set_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The host this firewall guards.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The firewall's port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The local system principal (`system@<host>`).
    pub fn local_system(&self) -> &Principal {
        &self.local_system
    }

    /// Mediation counters. The shared analysis cache's eviction count is
    /// absorbed as a gauge so one stats line tells the whole story.
    pub fn stats(&self) -> FirewallStats {
        let mut stats = self.stats;
        stats.analysis_cache_evictions = tacoma_taxscript::analysis::AnalysisCache::shared()
            .stats()
            .evictions;
        stats.absorb_vm(
            &tacoma_vm::ProgramCache::shared().stats(),
            &tacoma_vm::VmPool::shared().stats(),
        );
        if let Some(journal) = &self.journal {
            stats.absorb_journal(&journal.stats());
        }
        stats
    }

    /// The agent registry (read-only view).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trust store, for installing keys.
    pub fn trust_mut(&mut self) -> &mut TrustStore {
        &mut self.trust
    }

    /// Read access to the trust store (e.g. to clone it into a VM
    /// execution context).
    pub fn trust(&self) -> &TrustStore {
        &self.trust
    }

    /// Overrides the pending-queue timeout.
    pub fn set_queue_timeout(&mut self, timeout: Duration) {
        self.queue_timeout = timeout;
    }

    /// The code-admission policy in force.
    pub fn admission(&self) -> &AdmissionPolicy {
        &self.admission
    }

    /// Replaces the code-admission policy (e.g.
    /// [`AdmissionPolicy::disabled`] for a fully trusting deployment).
    pub fn set_admission(&mut self, policy: AdmissionPolicy) {
        self.admission = policy;
    }

    /// Declares a virtual machine; each VM thread announces itself here so
    /// agent transfers can target it by name.
    pub fn add_vm(&mut self, name: impl Into<String>) {
        self.vms.insert(name.into());
    }

    /// The declared VM names.
    pub fn vms(&self) -> impl Iterator<Item = &str> {
        self.vms.iter().map(String::as_str)
    }

    /// Allocates a fresh instance number (monotonic per firewall).
    pub fn allocate_instance(&mut self) -> Instance {
        let i = self.next_instance;
        self.next_instance += 1;
        // Mix the host name in so instances allocated by different hosts
        // differ, like timestamps did in the original (933821661).
        let mixed = i
            .wrapping_mul(0x100)
            .wrapping_add(self.host.len() as u64 & 0xff);
        Instance::from_u64(mixed)
    }

    /// Registers an agent on behalf of a VM; returns any queued messages
    /// that were waiting for it (now deliverable).
    pub fn register_agent(
        &mut self,
        address: &AgentAddress,
        vm: impl Into<String>,
        now: SimTime,
    ) -> Vec<Message> {
        let vm = vm.into();
        self.registry.register(address.clone(), vm, now);
        let (mail, expired) = self
            .pending
            .take_matching(address, self.local_system.as_str(), now);
        self.stats.expired += expired.count as u64;
        self.stats.delivered_local += mail.len() as u64;
        if let Some(journal) = &self.journal {
            // Delivery records are fsync-batched; losing one to an I/O
            // error only risks a deduplicated redelivery after a crash,
            // so failures are not surfaced to the (unrelated) caller.
            for key in expired
                .journal_keys
                .iter()
                .chain(mail.iter().filter_map(|m| m.journal_key.as_ref()))
            {
                let _ = journal.mail_delivered(*key);
            }
        }
        mail.into_iter().map(|m| m.message).collect()
    }

    /// Unregisters an agent (it finished, moved away, or was killed).
    pub fn unregister_agent(&mut self, address: &AgentAddress) -> bool {
        self.registry.unregister(address)
    }

    /// Drops expired queued messages; to be called periodically.
    pub fn expire_pending(&mut self, now: SimTime) -> usize {
        let expired = self.pending.expire(now);
        self.stats.expired += expired.count as u64;
        if let Some(journal) = &self.journal {
            // An expired park is as terminal as a delivery: replay must
            // not resurrect mail whose timeout already fired.
            for key in &expired.journal_keys {
                let _ = journal.mail_delivered(*key);
            }
        }
        expired.count
    }

    /// Number of messages currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The rights `principal` holds on this host, given whether it has
    /// been authenticated.
    pub fn rights_of(&self, principal: &Principal, authenticated: bool) -> Rights {
        self.policy.rights_for(principal, authenticated)
    }

    /// Whether the sending *host* is trusted ("the presence of an
    /// authenticated and trusted sender", §3.2): its system principal has
    /// a key in our trust store.
    pub fn is_sender_trusted(&self, from_host: &str) -> bool {
        self.trust.is_trusted(&Principal::local_system(from_host))
    }

    /// First-level authentication of an arriving agent: the briefcase must
    /// carry `PRINCIPAL` and `SIG` folders, and the signature must verify
    /// over the `CODE` element with that principal's trusted key.
    ///
    /// # Errors
    ///
    /// [`SecurityError`] describing the failure (unknown principal, bad
    /// signature, missing folders map to `BadSignature`).
    pub fn authenticate_transfer(&self, briefcase: &Briefcase) -> Result<Principal, SecurityError> {
        let principal_name =
            briefcase
                .single_str(folders::PRINCIPAL)
                .map_err(|_| SecurityError::BadPrincipal {
                    name: "<missing>".into(),
                })?;
        let principal = Principal::new(principal_name)?;
        let sig_hex =
            briefcase
                .single_str(folders::SIGNATURE)
                .map_err(|_| SecurityError::BadSignature {
                    principal: principal.to_string(),
                })?;
        let digest = Digest::from_hex(sig_hex).map_err(|_| SecurityError::BadSignature {
            principal: principal.to_string(),
        })?;
        let code =
            briefcase
                .element(folders::CODE, 0)
                .map_err(|_| SecurityError::BadSignature {
                    principal: principal.to_string(),
                })?;
        self.trust
            .verify(&principal, code.data(), &Signature::from_digest(digest))?;
        Ok(principal)
    }

    /// Routes a message sent by a *local* agent or tool.
    ///
    /// # Errors
    ///
    /// [`FirewallError::Denied`] if the sender lacks the send right for
    /// the destination's scope; admin errors for firewall-addressed
    /// messages.
    pub fn route_outbound(
        &mut self,
        message: Message,
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        let rights = self.rights_of(&message.from_principal, true);
        let is_remote = message.to.host().is_some_and(|h| h != self.host);
        if is_remote {
            if let Err(e) = rights.require(Rights::SEND_REMOTE, &message.from_principal) {
                self.stats.denied += 1;
                return Err(e.into());
            }
            let host = message.to.host().expect("checked is_remote").to_owned();
            let port = message
                .to
                .location()
                .expect("checked is_remote")
                .effective_port();
            self.stats.forwarded_remote += 1;
            return Ok(Decision::ForwardRemote {
                host,
                port,
                message,
            });
        }
        if let MessageKind::AgentTransfer { spawned } = message.kind {
            // A local `go`/`spawn`: the agent hops to another VM on this
            // host (Figure 3's intra-host moves).
            return self.install(message, spawned, now);
        }
        if let Err(e) = rights.require(Rights::SEND_LOCAL, &message.from_principal) {
            self.stats.denied += 1;
            return Err(e.into());
        }
        self.resolve_local(message, rights, now)
    }

    /// Routes an outbound message *and* carries out any remote forward on
    /// `transport`, so callers never see [`Decision::ForwardRemote`].
    ///
    /// Undeliverable messages are never silently lost: a failed `Deliver`
    /// is parked in the pending queue with the usual timeout (a later
    /// [`Firewall::redeliver_remote_pending`] sweep retries it); a failed
    /// agent transfer is reported to the caller so the agent's
    /// unreachable branch can run.
    ///
    /// # Errors
    ///
    /// Everything [`Firewall::route_outbound`] raises, plus
    /// [`FirewallError::Transport`] when an agent transfer exhausts the
    /// transport's retry budget.
    pub fn dispatch_outbound(
        &mut self,
        message: Message,
        now: SimTime,
        transport: &dyn tacoma_transport::Transport,
    ) -> Result<Decision, FirewallError> {
        match self.route_outbound(message, now)? {
            Decision::ForwardRemote {
                host,
                port,
                message,
            } => self.ship(message, &host, port, now, transport),
            other => Ok(other),
        }
    }

    /// Hands one already-routed message to the transport, parking or
    /// reporting failures per message kind (the second half of
    /// [`Firewall::dispatch_outbound`], exposed for callers that routed
    /// separately).
    ///
    /// # Errors
    ///
    /// [`FirewallError::Transport`] when an agent transfer exhausts the
    /// transport's retry budget; failed `Deliver` messages are parked
    /// instead.
    pub fn ship(
        &mut self,
        message: Message,
        host: &str,
        port: u16,
        now: SimTime,
        transport: &dyn tacoma_transport::Transport,
    ) -> Result<Decision, FirewallError> {
        // `encoded_len` is O(folders) arithmetic, so the frame buffer is
        // sized exactly once; the payload bytes inside come from the
        // briefcase's encode-once cache, not a fresh serialization. The
        // buffer is adopted into a shared `Bytes` so the journal record,
        // the transport queue, and any park all reference the same heap
        // allocation.
        let mut buf = Vec::with_capacity(message.encoded_len());
        message.encode_into(&mut buf);
        let wire = Bytes::from(buf);
        // Write-ahead: a migration must be durable *before* the first
        // transmission attempt, so a crash between send and ack resumes
        // the hop instead of losing the agent. The journaled wire is the
        // ready-to-send frame (payload bytes from the encode-once cache),
        // so this is one buffer append, not a re-encode.
        let hop_key = match (&self.journal, &message.kind, &message.hop) {
            (Some(journal), MessageKind::AgentTransfer { .. }, Some(key)) => {
                journal.hop_begin(key, message.hop_parent.as_deref(), false, host, &wire)?;
                Some(key.clone())
            }
            _ => None,
        };
        // Fast path: plain deliveries on a nonblocking transport enter its
        // bounded per-peer queue and complete later; the send is reported
        // `Forwarded` optimistically and [`Firewall::pump_transport`]
        // settles the books when the cumulative ack (or the retry-budget
        // failure) comes back. Agent transfers stay on the blocking path
        // deliberately: a failed `go`/`spawn` must surface to the waiting
        // agent, and the hop-commit journal record must be written in
        // execution order (before the task that sent it is marked
        // finished), which only a synchronous ack guarantees. A blocking
        // send still rides the reactor's pipelined window — it just waits
        // for its own completion.
        if transport.supports_nowait() && matches!(message.kind, MessageKind::Deliver) {
            let token = self.next_ship_token;
            self.next_ship_token += 1;
            if transport
                .send_nowait(&self.host, host, port, wire.clone(), token)
                .is_ok()
            {
                let bytes = wire.len();
                self.inflight.insert(token, ShipTicket { message, bytes });
                return Ok(Decision::Forwarded {
                    host: host.to_owned(),
                    bytes,
                });
            }
            // Backpressure: the peer's queue is full (or the transport
            // refused the fast path). Fall through to the blocking send,
            // which waits for queue space inside its retry budget instead
            // of dropping the frame.
        }
        match transport.send(&self.host, host, port, &wire[..]) {
            Ok(()) => {
                if let (Some(journal), Some(key)) = (&self.journal, &hop_key) {
                    // The receiver acked: it now owns the hop. Batched —
                    // losing this record only re-ships a frame the
                    // receiver's dedup set will suppress.
                    let _ = journal.hop_committed(key);
                }
                self.stats.frames_sent += 1;
                self.stats.bytes_sent += wire.len() as u64;
                Ok(Decision::Forwarded {
                    host: host.to_owned(),
                    bytes: wire.len(),
                })
            }
            Err(e) => {
                self.stats.retry_timeouts += 1;
                match message.kind {
                    // A lost `go`/`spawn` must surface: the sending agent
                    // is waiting to learn whether it moved — and since it
                    // learns the hop failed, replay must not retry it.
                    MessageKind::AgentTransfer { .. } => {
                        if let (Some(journal), Some(key)) = (&self.journal, &hop_key) {
                            let _ = journal.hop_aborted(key);
                        }
                        Err(FirewallError::Transport(e))
                    }
                    // A plain delivery is parked with a timeout, exactly
                    // like mail for a not-yet-arrived local agent.
                    MessageKind::Deliver => {
                        let key = self.journal_park(&message, Some(&wire));
                        self.pending
                            .enqueue_keyed(message, now, self.queue_timeout, key);
                        self.stats.queued += 1;
                        Ok(Decision::Queued)
                    }
                }
            }
        }
    }

    /// Drains the nonblocking transport's completion queue and settles
    /// each in-flight ship: an acked frame is counted; a failed frame
    /// (retry budget exhausted, peer gone) is parked in the pending queue
    /// so the redelivery sweep retries it — the optimistic `Forwarded`
    /// already returned, so nothing can be surfaced to the sender, and
    /// nothing may be lost.
    ///
    /// Returns the number of completions settled. Call this from the
    /// daemon loop whenever the transport may have made progress.
    pub fn pump_transport(
        &mut self,
        now: SimTime,
        transport: &dyn tacoma_transport::Transport,
    ) -> usize {
        let completions = transport.drain_completions();
        let mut settled = 0;
        for completion in completions {
            let Some(ticket) = self.inflight.remove(&completion.token) else {
                continue; // Not ours (or already settled).
            };
            settled += 1;
            match completion.result {
                Ok(()) => {
                    self.stats.frames_sent += 1;
                    self.stats.bytes_sent += ticket.bytes as u64;
                }
                Err(_) => {
                    self.stats.retry_timeouts += 1;
                    let key = self.journal_park(&ticket.message, None);
                    self.pending
                        .enqueue_keyed(ticket.message, now, self.queue_timeout, key);
                    self.stats.queued += 1;
                }
            }
        }
        settled
    }

    /// Frames handed to a nonblocking transport whose completion has not
    /// been pumped yet. Daemons drain this to zero (or a deadline) before
    /// reporting final stats.
    pub fn transport_inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Journals a `MailParked` record for a message about to enter the
    /// pending queue, reusing an already-encoded frame when the caller
    /// has one. Returns the journal key, or `None` when there is no
    /// journal or the append failed (the park then simply loses
    /// durability, not the message).
    fn journal_park(&self, message: &Message, wire: Option<&Bytes>) -> Option<u64> {
        let journal = self.journal.as_ref()?;
        let bytes = match wire {
            Some(w) => w.clone(),
            None => Bytes::from(message.encode()),
        };
        journal.mail_parked(self.queue_timeout, &bytes).ok()
    }

    /// Retries every parked remote-bound message on `transport`,
    /// preserving each message's original deadline. Returns
    /// `(delivered, still_parked)`.
    pub fn redeliver_remote_pending(
        &mut self,
        now: SimTime,
        transport: &dyn tacoma_transport::Transport,
    ) -> (usize, usize) {
        let parked = self.pending.take_remote(&self.host, now);
        let mut delivered = 0;
        let mut reparked = 0;
        let mut wire = Vec::new();
        for entry in parked {
            let message = entry.message;
            let (host, port) = match (message.to.host(), message.to.location()) {
                (Some(h), Some(loc)) => (h.to_owned(), loc.effective_port()),
                _ => continue, // Cannot happen: take_remote selected on host.
            };
            // One buffer across the sweep; the payload bytes are reused
            // from each message's encode-once cache, populated the first
            // time the message was shipped.
            wire.clear();
            wire.reserve(message.encoded_len());
            message.encode_into(&mut wire);
            if transport.send(&self.host, &host, port, &wire).is_ok() {
                self.stats.frames_sent += 1;
                self.stats.bytes_sent += wire.len() as u64;
                if let (Some(journal), Some(key)) = (&self.journal, entry.journal_key) {
                    let _ = journal.mail_delivered(key);
                }
                delivered += 1;
            } else {
                self.stats.retry_timeouts += 1;
                // Re-park under the same journal key: the original
                // MailParked record still covers the message.
                self.pending
                    .enqueue_until_keyed(message, entry.deadline, entry.journal_key);
                reparked += 1;
            }
        }
        (delivered, reparked)
    }

    /// Re-parks a message recovered from the journal at boot, *without*
    /// writing a new record (the replayed `MailParked` already covers
    /// it). The deadline is recomputed from the journal's relative
    /// timeout against the current clock — absolute deadlines from the
    /// previous boot's clock would be meaningless here.
    pub fn replay_park(
        &mut self,
        message: Message,
        now: SimTime,
        timeout: Duration,
        journal_key: u64,
    ) {
        self.pending
            .enqueue_keyed(message, now, timeout, Some(journal_key));
        self.stats.queued += 1;
        self.stats.journal_reparked += 1;
    }

    /// Re-ships an open outbound hop recovered from the journal at boot:
    /// the journaled frame goes out verbatim (the receiver's dedup set
    /// suppresses it if the original send actually arrived). On success
    /// the hop is committed; on failure it stays open so a later restart
    /// retries — unlike a live send, there is no agent waiting to hear
    /// about the failure, so aborting would lose the agent.
    ///
    /// # Errors
    ///
    /// [`FirewallError::Transport`] when the send fails (hop left open),
    /// [`FirewallError::BadWire`] if the journaled frame does not decode.
    pub fn replay_ship_hop(
        &mut self,
        hop: &OpenHop,
        transport: &dyn tacoma_transport::Transport,
    ) -> Result<(), FirewallError> {
        let message = Message::decode_bytes(&hop.wire)?;
        let (host, port) = match (message.to.host(), message.to.location()) {
            (Some(h), Some(loc)) => (h.to_owned(), loc.effective_port()),
            _ => {
                return Err(FirewallError::BadWire {
                    detail: format!("journaled hop {} has no remote target", hop.key),
                })
            }
        };
        match transport.send(&self.host, &host, port, &hop.wire) {
            Ok(()) => {
                self.stats.frames_sent += 1;
                self.stats.bytes_sent += hop.wire.len() as u64;
                self.stats.journal_resumed += 1;
                if let Some(journal) = &self.journal {
                    let _ = journal.hop_committed(&hop.key);
                }
                Ok(())
            }
            Err(e) => {
                self.stats.retry_timeouts += 1;
                Err(FirewallError::Transport(e))
            }
        }
    }

    /// Decodes wire bytes from a peer firewall and routes the message,
    /// counting received traffic.
    ///
    /// # Errors
    ///
    /// [`FirewallError::BadWire`] on a malformed payload, plus everything
    /// [`Firewall::route_inbound`] raises.
    pub fn route_inbound_wire(
        &mut self,
        payload: &[u8],
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        self.stats.frames_received += 1;
        self.stats.bytes_received += payload.len() as u64;
        let message = Message::decode(payload)?;
        self.route_inbound(message, now)
    }

    /// Zero-copy variant of [`Firewall::route_inbound_wire`]: the decoded
    /// message's briefcase elements are slices of `payload`'s shared
    /// allocation, so inbound page bodies and agent binaries are routed to
    /// their VM without a byte ever being copied off the receive buffer.
    ///
    /// # Errors
    ///
    /// Exactly as [`Firewall::route_inbound_wire`].
    pub fn route_inbound_wire_bytes(
        &mut self,
        payload: &bytes::Bytes,
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        self.stats.frames_received += 1;
        self.stats.bytes_received += payload.len() as u64;
        let message = Message::decode_bytes(payload)?;
        self.route_inbound(message, now)
    }

    /// Mutable access to the mediation counters, for absorbing transport
    /// gauges before reporting.
    pub fn stats_mut(&mut self) -> &mut FirewallStats {
        &mut self.stats
    }

    /// Routes a message that arrived from the network.
    ///
    /// # Errors
    ///
    /// Authentication and authorization failures; [`FirewallError::BadWire`]
    /// never occurs here (decode happens in the transport layer).
    pub fn route_inbound(
        &mut self,
        message: Message,
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        match message.kind {
            MessageKind::AgentTransfer { spawned } => self.install(message, spawned, now),
            MessageKind::Deliver => {
                let authenticated = self.is_sender_trusted(&message.from_host);
                let rights = self.rights_of(&message.from_principal, authenticated);
                if let Err(e) = rights.require(Rights::SEND_LOCAL, &message.from_principal) {
                    self.stats.denied += 1;
                    return Err(e.into());
                }
                self.resolve_local(message, rights, now)
            }
        }
    }

    fn install(
        &mut self,
        message: Message,
        spawned: bool,
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        // First-level authentication of the agent core.
        let principal = match self.authenticate_transfer(&message.briefcase) {
            Ok(p) => p,
            // A local hop (agent moving between this host's own VMs) is
            // already authenticated: the agent is running here.
            Err(_) if message.from_host == self.host => message.from_principal.clone(),
            Err(e) => {
                // An unsigned agent may still land if policy grants
                // unauthenticated principals EXECUTE (the single-domain
                // "trusting" deployment of §2).
                let claimed = message.from_principal.clone();
                let rights = self.rights_of(&claimed, false);
                if rights.contains(Rights::EXECUTE) {
                    claimed
                } else {
                    self.stats.denied += 1;
                    return Err(e.into());
                }
            }
        };
        let rights = self.rights_of(&principal, true);
        if let Err(e) = rights.require(Rights::EXECUTE, &principal) {
            self.stats.denied += 1;
            return Err(e.into());
        }

        // Second-level check: the code itself. Bytecode is verified and
        // its capability manifest compared against the principal's grant
        // before any VM sees it.
        match self.admission.check(&message.briefcase, rights) {
            Ok(AdmissionVerdict::Verified { cache_hit, .. }) => {
                self.stats.code_verified += 1;
                if cache_hit {
                    self.stats.analysis_cache_hits += 1;
                } else {
                    self.stats.analysis_cache_misses += 1;
                }
            }
            Ok(AdmissionVerdict::Skipped) => {}
            Err(e) => {
                self.stats.code_rejected += 1;
                self.stats.denied += 1;
                return Err(FirewallError::CodeRejected(e));
            }
        }

        // The target URI's name part picks the VM (Figure 4's agent moves
        // "to the VM specified by the URI").
        let vm = message
            .to
            .name()
            .ok_or(FirewallError::MissingAgentName)?
            .to_owned();
        if !self.vms.contains(&vm) {
            self.stats.denied += 1;
            return Err(FirewallError::NoSuchVm { vm });
        }

        let agent_name = message
            .briefcase
            .single_str(folders::AGENT_NAME)
            .map_err(|_| FirewallError::MissingAgentName)?
            .to_owned();
        // `spawn` pre-allocates the instance at the origin so it can be
        // "reported back to the calling agent" (§3.1) synchronously; the
        // briefcase carries it in SYS:INSTANCE.
        let instance = message
            .briefcase
            .single_str("SYS:INSTANCE")
            .ok()
            .and_then(|s| s.parse::<Instance>().ok())
            .unwrap_or_else(|| self.allocate_instance());
        let address = AgentAddress::new(principal.as_str(), agent_name, instance);
        self.stats.agents_installed += 1;
        let _ = now;
        Ok(Decision::InstallAgent {
            vm,
            address,
            briefcase: message.briefcase,
            spawned,
            hop: message.hop,
        })
    }

    fn resolve_local(
        &mut self,
        message: Message,
        rights: Rights,
        now: SimTime,
    ) -> Result<Decision, FirewallError> {
        // Messages addressed to the firewall itself: admin operations.
        if message.to.name() == Some(FIREWALL_AGENT_NAME) {
            return self.admin(&message, rights);
        }

        let sender = message.from_principal.as_str().to_owned();
        let found = self
            .registry
            .matches(&message.to, self.local_system.as_str(), &sender)
            .next()
            .map(|r| (r.vm.clone(), r.address.clone(), r.status));

        match found {
            Some((vm, agent, AgentStatus::Running)) => {
                self.stats.delivered_local += 1;
                Ok(Decision::DeliverLocal { vm, agent, message })
            }
            // "…queued with a timeout value if the receiving agent is not
            // ready to receive, or has not yet arrived at the site."
            Some((_, _, AgentStatus::Stopped)) | None => {
                let key = self.journal_park(&message, None);
                self.pending
                    .enqueue_keyed(message, now, self.queue_timeout, key);
                self.stats.queued += 1;
                Ok(Decision::Queued)
            }
        }
    }

    fn admin(&mut self, message: &Message, rights: Rights) -> Result<Decision, FirewallError> {
        if let Err(e) = rights.require(Rights::ADMIN, &message.from_principal) {
            self.stats.denied += 1;
            return Err(e.into());
        }
        let command = message
            .briefcase
            .single_str(folders::COMMAND)
            .map_err(|e| FirewallError::BadWire {
                detail: e.to_string(),
            })?
            .to_owned();
        self.stats.admin_ops += 1;

        let mut reply = Briefcase::new();
        match command.as_str() {
            "list" => {
                reply.set_single(folders::STATUS, "ok");
                for reg in self.registry.iter() {
                    let status = match reg.status {
                        AgentStatus::Running => "running",
                        AgentStatus::Stopped => "stopped",
                    };
                    reply.append(
                        "AGENTS",
                        format!(
                            "{} vm={} status={} since={}",
                            reg.address, reg.vm, status, reg.registered_at
                        ),
                    );
                }
                Ok(Decision::Admin {
                    reply,
                    control: None,
                })
            }
            "stats" => {
                reply.set_single(folders::STATUS, "ok");
                reply.set_single("STATS", self.stats.to_string());
                Ok(Decision::Admin {
                    reply,
                    control: None,
                })
            }
            "runtime" => {
                let target = self.admin_target(message)?;
                let reg = self
                    .registry
                    .get(&target)
                    .expect("admin_target checked presence");
                reply.set_single(folders::STATUS, "ok");
                let now: SimTime =
                    message
                        .briefcase
                        .single_i64("NOW-NS")
                        .map_or(
                            reg.registered_at,
                            |ns| SimTime::from_nanos(ns.max(0) as u64),
                        );
                let runtime = now.saturating_since(reg.registered_at);
                reply.set_single("RUNTIME-MS", runtime.as_millis() as i64);
                Ok(Decision::Admin {
                    reply,
                    control: None,
                })
            }
            "kill" | "stop" | "resume" => {
                let target = self.admin_target(message)?;
                let kind = match command.as_str() {
                    "kill" => ControlKind::Kill,
                    "stop" => ControlKind::Stop,
                    _ => ControlKind::Resume,
                };
                let vm = {
                    let reg = self
                        .registry
                        .get_mut(&target)
                        .expect("admin_target checked presence");
                    match kind {
                        ControlKind::Stop => reg.status = AgentStatus::Stopped,
                        ControlKind::Resume => reg.status = AgentStatus::Running,
                        ControlKind::Kill => {}
                    }
                    reg.vm.clone()
                };
                if kind == ControlKind::Kill {
                    self.registry.unregister(&target);
                }
                reply.set_single(folders::STATUS, "ok");
                Ok(Decision::Admin {
                    reply,
                    control: Some(ControlAction {
                        vm,
                        agent: target,
                        kind,
                    }),
                })
            }
            other => {
                reply.set_single(folders::STATUS, format!("error: unknown command {other}"));
                Err(FirewallError::UnknownCommand {
                    command: other.to_owned(),
                })
            }
        }
    }

    /// Resolves the admin command's target (first `ARGS` element, an agent
    /// URI) to a uniquely registered agent.
    fn admin_target(&self, message: &Message) -> Result<AgentAddress, FirewallError> {
        let text =
            message
                .briefcase
                .single_str(folders::ARGS)
                .map_err(|e| FirewallError::BadWire {
                    detail: e.to_string(),
                })?;
        let target: AgentUri =
            text.parse()
                .map_err(|e: tacoma_uri::ParseUriError| FirewallError::BadWire {
                    detail: e.to_string(),
                })?;
        match self.registry.unique_match(
            &target,
            self.local_system.as_str(),
            message.from_principal.as_str(),
        ) {
            Ok(Some(reg)) => Ok(reg.address.clone()),
            Ok(None) => Err(FirewallError::UnknownAgent { target }),
            Err(matches) => Err(FirewallError::Ambiguous { target, matches }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fw() -> Firewall {
        let mut fw = Firewall::new("h1", 27017, Policy::new(), TrustStore::new());
        fw.add_vm("vm_script");
        fw
    }

    fn msg(from: &str, to: &str) -> Message {
        Message::deliver(
            "h1",
            Principal::new(from).unwrap(),
            None,
            to.parse().unwrap(),
            Briefcase::new(),
        )
    }

    fn register(fw: &mut Firewall, principal: &str, name: &str, inst: u64) -> AgentAddress {
        let addr = AgentAddress::new(principal, name, Instance::from_u64(inst));
        fw.register_agent(&addr, "vm_script", SimTime::ZERO);
        addr
    }

    #[test]
    fn local_delivery_to_running_agent() {
        let mut fw = fw();
        let addr = register(&mut fw, "alice", "webbot", 1);
        let d = fw
            .route_outbound(msg("alice", "alice/webbot:1"), SimTime::ZERO)
            .unwrap();
        assert!(matches!(d, Decision::DeliverLocal { agent, .. } if agent == addr));
        assert_eq!(fw.stats().delivered_local, 1);
    }

    #[test]
    fn absent_receiver_queues_then_flushes_on_registration() {
        let mut fw = fw();
        let d = fw
            .route_outbound(msg("alice", "alice/webbot"), SimTime::ZERO)
            .unwrap();
        assert_eq!(d, Decision::Queued);
        assert_eq!(fw.pending_len(), 1);

        let mail = fw.register_agent(
            &AgentAddress::new("alice", "webbot", Instance::from_u64(5)),
            "vm_script",
            SimTime::from_nanos(1000),
        );
        assert_eq!(mail.len(), 1);
        assert_eq!(fw.pending_len(), 0);
    }

    #[test]
    fn remote_target_forwards_with_effective_port() {
        let mut fw = fw();
        let d = fw
            .route_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO)
            .unwrap();
        assert!(matches!(d, Decision::ForwardRemote { ref host, port: 27017, .. } if host == "h2"));
    }

    #[test]
    fn own_host_in_target_is_local() {
        let mut fw = fw();
        register(&mut fw, "alice", "webbot", 1);
        let d = fw
            .route_outbound(msg("alice", "tacoma://h1/alice/webbot"), SimTime::ZERO)
            .unwrap();
        assert!(matches!(d, Decision::DeliverLocal { .. }));
    }

    #[test]
    fn stopped_agent_queues_mail() {
        let mut fw = fw();
        let addr = register(&mut fw, "alice", "webbot", 1);
        fw.registry.get_mut(&addr).unwrap().status = AgentStatus::Stopped;
        let d = fw
            .route_outbound(msg("alice", "alice/webbot"), SimTime::ZERO)
            .unwrap();
        assert_eq!(d, Decision::Queued);
    }

    #[test]
    fn unauthenticated_remote_sender_is_denied() {
        let mut fw = fw();
        register(&mut fw, "alice", "webbot", 1);
        let mut m = msg("mallory@evil", "alice/webbot:1");
        m.from_host = "evil.example".into();
        let err = fw.route_inbound(m, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FirewallError::Denied(_)));
        assert_eq!(fw.stats().denied, 1);
    }

    #[test]
    fn trusted_remote_sender_delivers() {
        use tacoma_security::Keyring;
        let mut fw = fw();
        register(&mut fw, "alice", "webbot", 1);
        // Trust the sending host's system principal.
        let sender_sys = Principal::local_system("h2");
        fw.trust_mut()
            .trust(Keyring::generate(&sender_sys, 3).public());
        let mut m = msg("alice", "alice/webbot:1");
        m.from_host = "h2".into();
        let d = fw.route_inbound(m, SimTime::ZERO).unwrap();
        assert!(matches!(d, Decision::DeliverLocal { .. }));
    }

    #[test]
    fn signed_transfer_installs_on_named_vm() {
        use tacoma_security::Keyring;
        let mut fw = fw();
        let alice = Principal::new("alice").unwrap();
        let keys = Keyring::generate(&alice, 9);
        fw.trust_mut().trust(keys.public());

        let code = b"compiled agent bytes".to_vec();
        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "webbot");
        bc.set_single(folders::PRINCIPAL, "alice");
        bc.append(folders::CODE, code.clone());
        bc.set_single(folders::SIGNATURE, keys.sign(&code).digest().to_hex());

        let m = Message::transfer(
            "h2",
            alice,
            "tacoma://h1/vm_script".parse().unwrap(),
            bc,
            false,
        );
        let d = fw.route_inbound(m, SimTime::ZERO).unwrap();
        let Decision::InstallAgent {
            vm,
            address,
            spawned,
            ..
        } = d
        else {
            panic!("expected install, got {d:?}")
        };
        assert_eq!(vm, "vm_script");
        assert_eq!(address.name(), "webbot");
        assert_eq!(address.principal(), "alice");
        assert!(!spawned);
        assert_eq!(fw.stats().agents_installed, 1);
    }

    #[test]
    fn tampered_transfer_is_denied() {
        use tacoma_security::Keyring;
        let mut fw = fw();
        let alice = Principal::new("alice").unwrap();
        let keys = Keyring::generate(&alice, 9);
        fw.trust_mut().trust(keys.public());

        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "webbot");
        bc.set_single(folders::PRINCIPAL, "alice");
        bc.append(folders::CODE, b"tampered code".to_vec());
        bc.set_single(
            folders::SIGNATURE,
            keys.sign(b"original code").digest().to_hex(),
        );

        let m = Message::transfer(
            "h2",
            alice,
            "tacoma://h1/vm_script".parse().unwrap(),
            bc,
            false,
        );
        assert!(matches!(
            fw.route_inbound(m, SimTime::ZERO),
            Err(FirewallError::Denied(_))
        ));
    }

    #[test]
    fn unsigned_transfer_lands_only_under_trusting_policy() {
        let alice = Principal::new("alice").unwrap();
        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "webbot");
        let make = |bc: Briefcase| {
            Message::transfer(
                "h2",
                alice.clone(),
                "tacoma://h1/vm_script".parse().unwrap(),
                bc,
                true,
            )
        };

        // Default policy: denied.
        let mut strict = fw();
        assert!(strict
            .route_inbound(make(bc.clone()), SimTime::ZERO)
            .is_err());

        // Trusting policy (§2's single administrative domain): installed.
        let mut open = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        open.add_vm("vm_script");
        let d = open.route_inbound(make(bc), SimTime::ZERO).unwrap();
        assert!(matches!(d, Decision::InstallAgent { spawned: true, .. }));
    }

    #[test]
    fn transfer_to_unknown_vm_is_rejected() {
        let mut open = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        open.add_vm("vm_script");
        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "x");
        let m = Message::transfer(
            "h2",
            Principal::new("p").unwrap(),
            "tacoma://h1/vm_java".parse().unwrap(),
            bc,
            false,
        );
        assert!(matches!(
            open.route_inbound(m, SimTime::ZERO),
            Err(FirewallError::NoSuchVm { vm }) if vm == "vm_java"
        ));
    }

    #[test]
    fn admin_list_requires_admin_right() {
        let mut fw = fw();
        register(&mut fw, "alice", "webbot", 1);
        let mut m = msg("alice", "firewall");
        m.briefcase.set_single(folders::COMMAND, "list");
        assert!(matches!(
            fw.route_outbound(m, SimTime::ZERO),
            Err(FirewallError::Denied(_))
        ));
    }

    #[test]
    fn admin_list_and_kill_flow() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let addr = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        fw.register_agent(&addr, "vm_script", SimTime::ZERO);

        let mut list = msg("admin@h1", "firewall");
        list.briefcase.set_single(folders::COMMAND, "list");
        let Decision::Admin {
            reply,
            control: None,
        } = fw.route_outbound(list, SimTime::ZERO).unwrap()
        else {
            panic!()
        };
        assert_eq!(reply.folder("AGENTS").unwrap().len(), 1);

        let mut kill = msg("admin@h1", "firewall");
        kill.briefcase.set_single(folders::COMMAND, "kill");
        kill.briefcase.set_single(folders::ARGS, "alice/webbot:1");
        let Decision::Admin {
            control: Some(action),
            ..
        } = fw.route_outbound(kill, SimTime::ZERO).unwrap()
        else {
            panic!()
        };
        assert_eq!(action.kind, ControlKind::Kill);
        assert_eq!(action.agent, addr);
        assert!(fw.registry().is_empty());
    }

    #[test]
    fn admin_stop_makes_agent_queue_mail_then_resume_flushes() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let addr = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        fw.register_agent(&addr, "vm_script", SimTime::ZERO);

        let mut stop = msg("admin@h1", "firewall");
        stop.briefcase.set_single(folders::COMMAND, "stop");
        stop.briefcase.set_single(folders::ARGS, "alice/webbot:1");
        fw.route_outbound(stop, SimTime::ZERO).unwrap();

        let d = fw
            .route_outbound(msg("alice", "alice/webbot:1"), SimTime::ZERO)
            .unwrap();
        assert_eq!(d, Decision::Queued);

        let mut resume = msg("admin@h1", "firewall");
        resume.briefcase.set_single(folders::COMMAND, "resume");
        resume.briefcase.set_single(folders::ARGS, "alice/webbot:1");
        fw.route_outbound(resume, SimTime::ZERO).unwrap();

        let d = fw
            .route_outbound(msg("alice", "alice/webbot:1"), SimTime::ZERO)
            .unwrap();
        assert!(matches!(d, Decision::DeliverLocal { .. }));
    }

    #[test]
    fn admin_unknown_command_and_target_errors() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let mut bad = msg("admin@h1", "firewall");
        bad.briefcase.set_single(folders::COMMAND, "explode");
        assert!(matches!(
            fw.route_outbound(bad, SimTime::ZERO),
            Err(FirewallError::UnknownCommand { .. })
        ));

        let mut kill = msg("admin@h1", "firewall");
        kill.briefcase.set_single(folders::COMMAND, "kill");
        kill.briefcase.set_single(folders::ARGS, "alice/ghost");
        assert!(matches!(
            fw.route_outbound(kill, SimTime::ZERO),
            Err(FirewallError::UnknownAgent { .. })
        ));
    }

    #[test]
    fn instances_are_unique_and_monotone() {
        let mut fw = fw();
        let a = fw.allocate_instance();
        let b = fw.allocate_instance();
        assert_ne!(a, b);
    }

    /// A transport that can be flipped between failing and delivering,
    /// recording what it shipped.
    #[derive(Debug, Default)]
    struct FlakyTransport {
        up: std::sync::atomic::AtomicBool,
        sent: parking_lot::Mutex<Vec<(String, u16, usize)>>,
    }

    impl FlakyTransport {
        fn up() -> Self {
            let t = FlakyTransport::default();
            t.up.store(true, std::sync::atomic::Ordering::SeqCst);
            t
        }

        fn down() -> Self {
            FlakyTransport::default()
        }

        fn restore(&self) {
            self.up.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl tacoma_transport::Transport for FlakyTransport {
        fn send(
            &self,
            _from: &str,
            to_host: &str,
            to_port: u16,
            payload: &[u8],
        ) -> Result<(), tacoma_transport::TransportError> {
            if self.up.load(std::sync::atomic::Ordering::SeqCst) {
                self.sent
                    .lock()
                    .push((to_host.to_owned(), to_port, payload.len()));
                Ok(())
            } else {
                Err(tacoma_transport::TransportError::Unreachable {
                    host: to_host.to_owned(),
                    detail: "link down".into(),
                })
            }
        }

        fn stats(&self) -> tacoma_transport::TransportStats {
            tacoma_transport::TransportStats::default()
        }

        fn kind(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn dispatch_ships_remote_deliver_over_transport() {
        let mut fw = fw();
        let t = FlakyTransport::up();
        let d = fw
            .dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        assert!(matches!(d, Decision::Forwarded { ref host, .. } if host == "h2"));
        let sent = t.sent.lock();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, "h2");
        assert_eq!(sent[0].1, 27017);
        let stats = fw.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.bytes_sent, sent[0].2 as u64);
    }

    #[test]
    fn undeliverable_deliver_is_parked_not_lost() {
        let mut fw = fw();
        let t = FlakyTransport::down();
        let d = fw
            .dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        assert_eq!(d, Decision::Queued);
        assert_eq!(fw.pending_len(), 1);
        let stats = fw.stats();
        assert_eq!(stats.retry_timeouts, 1);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.frames_sent, 0);
    }

    #[test]
    fn undeliverable_transfer_surfaces_to_the_agent() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "webbot");
        let m = Message::transfer(
            "h1",
            Principal::new("alice").unwrap(),
            "tacoma://h2/vm_script".parse().unwrap(),
            bc,
            false,
        );
        let t = FlakyTransport::down();
        let err = fw.dispatch_outbound(m, SimTime::ZERO, &t).unwrap_err();
        assert!(matches!(err, FirewallError::Transport(_)));
        assert_eq!(fw.pending_len(), 0, "transfers are not parked");
        assert_eq!(fw.stats().retry_timeouts, 1);
    }

    #[test]
    fn parked_remote_mail_redelivers_when_link_returns() {
        let mut fw = fw();
        let t = FlakyTransport::down();
        fw.dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        assert_eq!(fw.pending_len(), 1);

        // Link still down: the sweep re-parks, preserving the message.
        let (delivered, reparked) = fw.redeliver_remote_pending(SimTime::ZERO, &t);
        assert_eq!((delivered, reparked), (0, 1));
        assert_eq!(fw.pending_len(), 1);

        // Link back: the sweep delivers.
        t.restore();
        let (delivered, reparked) = fw.redeliver_remote_pending(SimTime::ZERO, &t);
        assert_eq!((delivered, reparked), (1, 0));
        assert_eq!(fw.pending_len(), 0);
        assert_eq!(t.sent.lock().len(), 1);
        assert_eq!(fw.stats().frames_sent, 1);
    }

    #[test]
    fn parked_remote_mail_expires_by_its_deadline() {
        let mut fw = fw();
        fw.set_queue_timeout(Duration::from_millis(50));
        let t = FlakyTransport::down();
        fw.dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        // Past the deadline the sweep leaves it for expire() to count.
        let late = SimTime::ZERO + Duration::from_secs(1);
        let (delivered, reparked) = fw.redeliver_remote_pending(late, &t);
        assert_eq!((delivered, reparked), (0, 0));
        assert_eq!(fw.expire_pending(late), 1);
        assert_eq!(fw.stats().expired, 1);
    }

    #[test]
    fn wire_roundtrip_through_inbound_counts_bytes() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let addr = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        fw.register_agent(&addr, "vm_script", SimTime::ZERO);
        let mut m = msg("alice", "alice/webbot:1");
        m.from_host = "h2".into();
        let wire = m.encode();
        let d = fw.route_inbound_wire(&wire, SimTime::ZERO).unwrap();
        assert!(matches!(d, Decision::DeliverLocal { .. }));
        let stats = fw.stats();
        assert_eq!(stats.frames_received, 1);
        assert_eq!(stats.bytes_received, wire.len() as u64);
    }

    #[test]
    fn admin_stats_reports_counter_line() {
        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        let mut m = msg("admin@h1", "firewall");
        m.briefcase.set_single(folders::COMMAND, "stats");
        let Decision::Admin { reply, .. } = fw.route_outbound(m, SimTime::ZERO).unwrap() else {
            panic!()
        };
        let line = reply.single_str("STATS").unwrap();
        assert!(line.contains("tx-frames=0"), "{line}");
        assert!(line.contains("retry-timeouts=0"), "{line}");
    }

    #[test]
    fn journal_records_park_ship_and_hop_lifecycle() {
        use tacoma_journal::JournalConfig;
        let dir = std::env::temp_dir().join(format!("taxfw-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
        let journal = Arc::new(journal);

        let mut fw = fw();
        fw.set_journal(Arc::clone(&journal));

        // A park caused by an unreachable peer is journaled write-ahead…
        let t = FlakyTransport::down();
        fw.dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        assert_eq!(journal.stats().parked, 1);

        // …and marked delivered when the redelivery sweep ships it.
        t.restore();
        let (delivered, _) = fw.redeliver_remote_pending(SimTime::ZERO, &t);
        assert_eq!(delivered, 1);
        assert_eq!(journal.stats().parked, 0);

        // A keyed transfer is begun write-ahead and committed on ack.
        let transfer = |hop: &str| {
            let mut bc = Briefcase::new();
            bc.set_single(folders::AGENT_NAME, "webbot");
            Message::transfer(
                "h1",
                Principal::new("alice").unwrap(),
                "tacoma://h2/vm_script".parse().unwrap(),
                bc,
                false,
            )
            .with_hop(hop, None)
        };
        fw.dispatch_outbound(transfer("k1"), SimTime::ZERO, &t)
            .unwrap();
        let js = journal.stats();
        assert_eq!((js.open_hops, js.committed_hops), (0, 1));

        // An undeliverable transfer's hop is aborted — terminal, so a
        // replay will never re-run a hop the agent already saw fail.
        let down = FlakyTransport::down();
        assert!(fw
            .dispatch_outbound(transfer("k2"), SimTime::ZERO, &down)
            .is_err());
        let js = journal.stats();
        assert_eq!((js.open_hops, js.committed_hops), (0, 2));

        // Local parks (absent receiver) and expiry are journaled too.
        fw.set_queue_timeout(Duration::from_millis(10));
        fw.route_outbound(msg("alice", "alice/nobody"), SimTime::ZERO)
            .unwrap();
        assert_eq!(journal.stats().parked, 1);
        fw.expire_pending(SimTime::ZERO + Duration::from_secs(1));
        assert_eq!(journal.stats().parked, 0);

        // The stats line mirrors the journal gauges.
        let stats = fw.stats();
        assert!(stats.journal_records > 0);
        assert!(stats.journal_fsyncs > 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A nonblocking transport stub: enqueues everything, then completes
    /// each token with a scripted result when pumped. Blocking sends
    /// succeed immediately and are counted.
    #[derive(Debug, Default)]
    struct NowaitTransport {
        fail: std::sync::atomic::AtomicBool,
        queued: parking_lot::Mutex<Vec<u64>>,
        blocking_sends: parking_lot::Mutex<usize>,
    }

    impl tacoma_transport::Transport for NowaitTransport {
        fn send(
            &self,
            _from: &str,
            _to_host: &str,
            _to_port: u16,
            _payload: &[u8],
        ) -> Result<(), tacoma_transport::TransportError> {
            *self.blocking_sends.lock() += 1;
            Ok(())
        }

        fn stats(&self) -> tacoma_transport::TransportStats {
            tacoma_transport::TransportStats::default()
        }

        fn kind(&self) -> &'static str {
            "nowait-stub"
        }

        fn supports_nowait(&self) -> bool {
            true
        }

        fn send_nowait(
            &self,
            _from: &str,
            _to_host: &str,
            _to_port: u16,
            _payload: bytes::Bytes,
            token: u64,
        ) -> Result<(), tacoma_transport::TransportError> {
            self.queued.lock().push(token);
            Ok(())
        }

        fn drain_completions(&self) -> Vec<tacoma_transport::Completion> {
            let fail = self.fail.load(std::sync::atomic::Ordering::SeqCst);
            self.queued
                .lock()
                .drain(..)
                .map(|token| tacoma_transport::Completion {
                    token,
                    result: if fail {
                        Err(tacoma_transport::TransportError::RetriesExhausted {
                            host: "h2".into(),
                            attempts: 1,
                            last: "scripted failure".into(),
                        })
                    } else {
                        Ok(())
                    },
                })
                .collect()
        }
    }

    #[test]
    fn nowait_ship_settles_on_pump() {
        let mut fw = fw();
        let t = NowaitTransport::default();
        let d = fw
            .dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        assert!(matches!(d, Decision::Forwarded { ref host, .. } if host == "h2"));
        assert_eq!(fw.transport_inflight(), 1);
        // Books are settled only when the completion comes back.
        assert_eq!(fw.stats().frames_sent, 0);
        assert_eq!(fw.pump_transport(SimTime::ZERO, &t), 1);
        assert_eq!(fw.transport_inflight(), 0);
        let stats = fw.stats();
        assert_eq!(stats.frames_sent, 1);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn failed_nowait_completion_parks_for_redelivery() {
        let mut fw = fw();
        let t = NowaitTransport::default();
        fw.dispatch_outbound(msg("alice", "tacoma://h2/ag_fs"), SimTime::ZERO, &t)
            .unwrap();
        t.fail.store(true, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(fw.pump_transport(SimTime::ZERO, &t), 1);
        let stats = fw.stats();
        assert_eq!(stats.frames_sent, 0);
        assert_eq!(stats.retry_timeouts, 1);
        assert_eq!(stats.queued, 1);
        assert_eq!(fw.pending_len(), 1, "failed ship parked, not lost");

        // The redelivery sweep picks it up over a (blocking) transport.
        let up = FlakyTransport::up();
        let (delivered, reparked) = fw.redeliver_remote_pending(SimTime::ZERO, &up);
        assert_eq!((delivered, reparked), (1, 0));
        assert_eq!(fw.pending_len(), 0);
    }

    #[test]
    fn transfers_take_the_blocking_path_even_on_nowait_transports() {
        use tacoma_journal::JournalConfig;
        let dir = std::env::temp_dir().join(format!("taxfw-nowait-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (journal, _) = Journal::open(&dir, JournalConfig::default()).unwrap();
        let journal = Arc::new(journal);

        let mut fw = Firewall::new("h1", 27017, Policy::trusting(), TrustStore::new());
        fw.add_vm("vm_script");
        fw.set_journal(Arc::clone(&journal));

        let mut bc = Briefcase::new();
        bc.set_single(folders::AGENT_NAME, "webbot");
        let transfer = Message::transfer(
            "h1",
            Principal::new("alice").unwrap(),
            "tacoma://h2/vm_script".parse().unwrap(),
            bc,
            false,
        )
        .with_hop("aa11", None);

        // A `go` must learn its fate synchronously — the hop is begun,
        // sent blocking, and committed before dispatch returns, so the
        // journal's commit ordering matches execution order.
        let t = NowaitTransport::default();
        let d = fw.dispatch_outbound(transfer, SimTime::ZERO, &t).unwrap();
        assert!(matches!(d, Decision::Forwarded { .. }));
        assert_eq!(fw.transport_inflight(), 0, "transfers never ride nowait");
        assert_eq!(*t.blocking_sends.lock(), 1);
        let js = journal.stats();
        assert_eq!((js.open_hops, js.committed_hops), (0, 1));
        assert_eq!(fw.stats().frames_sent, 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expire_pending_counts() {
        let mut fw = fw();
        fw.set_queue_timeout(Duration::from_millis(10));
        fw.route_outbound(msg("alice", "alice/nobody"), SimTime::ZERO)
            .unwrap();
        assert_eq!(fw.expire_pending(SimTime::ZERO + Duration::from_secs(1)), 1);
        assert_eq!(fw.stats().expired, 1);
    }
}
