//! The agent registry: which agents run on which local VM.
//!
//! "Virtual machines need to be able to register and unregister agents
//! running inside them with the firewall, in order for the firewall to be
//! able to locate them when communication is addressed to these agents"
//! (§3.2).

use serde::{Deserialize, Serialize};
use tacoma_simnet::SimTime;
use tacoma_uri::{AgentAddress, AgentUri};

/// Whether a registered agent is currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentStatus {
    /// Running normally.
    Running,
    /// Stopped by an admin operation; can be resumed.
    Stopped,
}

/// One registered agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// The agent's full concrete address.
    pub address: AgentAddress,
    /// Name of the VM executing it.
    pub vm: String,
    /// Virtual time of registration (for the admin "run time" query).
    pub registered_at: SimTime,
    /// Current status.
    pub status: AgentStatus,
}

/// The registry of local agents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    agents: Vec<Registration>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers an agent on a VM. Re-registering the same address
    /// replaces the old entry (an agent that moved away and came back).
    pub fn register(&mut self, address: AgentAddress, vm: impl Into<String>, now: SimTime) {
        self.unregister(&address);
        self.agents.push(Registration {
            address,
            vm: vm.into(),
            registered_at: now,
            status: AgentStatus::Running,
        });
    }

    /// Unregisters an agent; returns whether it was present.
    pub fn unregister(&mut self, address: &AgentAddress) -> bool {
        let before = self.agents.len();
        self.agents.retain(|r| &r.address != address);
        self.agents.len() != before
    }

    /// All registrations whose address matches the target pattern, under
    /// the §3.2 matching rules.
    pub fn matches<'s>(
        &'s self,
        target: &AgentUri,
        local_system: &str,
        sender: &str,
    ) -> impl Iterator<Item = &'s Registration> + 's {
        let target = target.clone();
        let local_system = local_system.to_owned();
        let sender = sender.to_owned();
        self.agents.iter().filter(move |r| {
            r.address
                .matches(&target, &local_system, &sender)
                .is_match()
        })
    }

    /// Looks up exactly one matching agent; `None` on zero matches,
    /// `Err(count)` on ambiguity.
    pub fn unique_match(
        &self,
        target: &AgentUri,
        local_system: &str,
        sender: &str,
    ) -> Result<Option<&Registration>, usize> {
        let mut it = self.matches(target, local_system, sender);
        let Some(first) = it.next() else {
            return Ok(None);
        };
        let extra = it.count();
        if extra == 0 {
            Ok(Some(first))
        } else {
            Err(extra + 1)
        }
    }

    /// Direct lookup by concrete address.
    pub fn get(&self, address: &AgentAddress) -> Option<&Registration> {
        self.agents.iter().find(|r| &r.address == address)
    }

    /// Mutable lookup by concrete address.
    pub fn get_mut(&mut self, address: &AgentAddress) -> Option<&mut Registration> {
        self.agents.iter_mut().find(|r| &r.address == address)
    }

    /// All registrations, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Registration> {
        self.agents.iter()
    }

    /// Number of registered agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Whether no agents are registered.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_uri::Instance;

    fn addr(principal: &str, name: &str, inst: u64) -> AgentAddress {
        AgentAddress::new(principal, name, Instance::from_u64(inst))
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(addr("system@h1", "ag_fs", 1), "vm_native", SimTime::ZERO);
        r.register(
            addr("alice", "webbot", 2),
            "vm_script",
            SimTime::from_nanos(5),
        );
        r.register(
            addr("alice", "webbot", 3),
            "vm_script",
            SimTime::from_nanos(9),
        );
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(&addr("alice", "webbot", 2)).unwrap().vm, "vm_script");
        assert!(r.get(&addr("alice", "webbot", 99)).is_none());
    }

    #[test]
    fn name_only_matches_all_instances() {
        let r = registry();
        let target: AgentUri = "alice/webbot".parse().unwrap();
        assert_eq!(r.matches(&target, "system@h1", "alice").count(), 2);
    }

    #[test]
    fn unique_match_reports_ambiguity() {
        let r = registry();
        let target: AgentUri = "alice/webbot".parse().unwrap();
        assert_eq!(r.unique_match(&target, "system@h1", "alice"), Err(2));
        let exact: AgentUri = "alice/webbot:2".parse().unwrap();
        let found = r
            .unique_match(&exact, "system@h1", "alice")
            .unwrap()
            .unwrap();
        assert_eq!(found.address, addr("alice", "webbot", 2));
        let none: AgentUri = "alice/ghost".parse().unwrap();
        assert_eq!(r.unique_match(&none, "system@h1", "alice").unwrap(), None);
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = registry();
        r.register(
            addr("alice", "webbot", 2),
            "vm_bin",
            SimTime::from_nanos(100),
        );
        assert_eq!(r.len(), 3);
        let reg = r.get(&addr("alice", "webbot", 2)).unwrap();
        assert_eq!(reg.vm, "vm_bin");
        assert_eq!(reg.registered_at, SimTime::from_nanos(100));
    }

    #[test]
    fn unregister_is_precise() {
        let mut r = registry();
        assert!(r.unregister(&addr("alice", "webbot", 2)));
        assert!(!r.unregister(&addr("alice", "webbot", 2)));
        assert_eq!(r.len(), 2);
        assert!(r.get(&addr("alice", "webbot", 3)).is_some());
    }

    #[test]
    fn principal_scoping_hides_foreign_agents() {
        let r = registry();
        // bob addressing bare "webbot" (no principal): alice's agents are
        // neither bob's nor the local system's.
        let target: AgentUri = "webbot".parse().unwrap();
        assert_eq!(r.matches(&target, "system@h1", "bob").count(), 0);
        // but the system service resolves for anyone:
        let fs: AgentUri = "ag_fs".parse().unwrap();
        assert_eq!(r.matches(&fs, "system@h1", "bob").count(), 1);
    }

    #[test]
    fn status_toggles() {
        let mut r = registry();
        r.get_mut(&addr("alice", "webbot", 2)).unwrap().status = AgentStatus::Stopped;
        assert_eq!(
            r.get(&addr("alice", "webbot", 2)).unwrap().status,
            AgentStatus::Stopped
        );
    }
}
