use std::fmt;

use tacoma_journal::JournalError;
use tacoma_security::SecurityError;
use tacoma_transport::TransportError;
use tacoma_uri::AgentUri;

use crate::AdmissionError;

/// Errors from firewall mediation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FirewallError {
    /// The sender lacks the right the operation needs.
    Denied(SecurityError),
    /// The target URI matched no registered agent and queueing was not
    /// permitted (e.g. an agent transfer for an unknown VM).
    NoSuchVm {
        /// The VM name requested in the target URI.
        vm: String,
    },
    /// The target URI is ambiguous where a unique agent is required.
    Ambiguous {
        /// The ambiguous target.
        target: AgentUri,
        /// How many registered agents matched.
        matches: usize,
    },
    /// An agent transfer arrived without a usable agent name.
    MissingAgentName,
    /// A message failed to decode from its wire form.
    BadWire {
        /// Human-readable decode failure.
        detail: String,
    },
    /// An admin operation named an agent that is not registered.
    UnknownAgent {
        /// The target that matched nothing.
        target: AgentUri,
    },
    /// An admin command verb was not recognized.
    UnknownCommand {
        /// The verb received.
        command: String,
    },
    /// An arriving agent's code was refused by the admission policy
    /// (unverifiable bytecode, or capabilities beyond the principal's
    /// rights).
    CodeRejected(AdmissionError),
    /// The transport could not deliver an outbound message even after its
    /// retry budget.
    Transport(TransportError),
    /// A write-ahead journal record could not be made durable; the
    /// guarded operation (a migration send) was not performed. Carries
    /// the rendered cause (`JournalError` wraps a non-cloneable
    /// `io::Error`).
    Journal {
        /// Human-readable journal failure.
        detail: String,
    },
}

impl fmt::Display for FirewallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirewallError::Denied(e) => write!(f, "denied: {e}"),
            FirewallError::NoSuchVm { vm } => write!(f, "no virtual machine named {vm:?}"),
            FirewallError::Ambiguous { target, matches } => {
                write!(
                    f,
                    "target {target} matches {matches} agents, need exactly one"
                )
            }
            FirewallError::MissingAgentName => {
                write!(f, "agent transfer carries no agent name")
            }
            FirewallError::BadWire { detail } => write!(f, "malformed message: {detail}"),
            FirewallError::UnknownAgent { target } => write!(f, "no agent matches {target}"),
            FirewallError::UnknownCommand { command } => {
                write!(f, "unknown firewall command {command:?}")
            }
            FirewallError::CodeRejected(e) => write!(f, "agent code refused: {e}"),
            FirewallError::Transport(e) => write!(f, "transport failed: {e}"),
            FirewallError::Journal { detail } => write!(f, "journal failed: {detail}"),
        }
    }
}

impl std::error::Error for FirewallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FirewallError::Denied(e) => Some(e),
            FirewallError::CodeRejected(e) => Some(e),
            FirewallError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for FirewallError {
    fn from(e: JournalError) -> Self {
        FirewallError::Journal {
            detail: e.to_string(),
        }
    }
}

impl From<SecurityError> for FirewallError {
    fn from(e: SecurityError) -> Self {
        FirewallError::Denied(e)
    }
}

impl From<TransportError> for FirewallError {
    fn from(e: TransportError) -> Self {
        FirewallError::Transport(e)
    }
}
