//! The pending-message queue.
//!
//! "Messages passing through the firewall are queued with a timeout value
//! if the receiving agent is not ready to receive, or has not yet arrived
//! at the site" (§3.2).

use std::time::Duration;

use tacoma_simnet::SimTime;
use tacoma_uri::AgentAddress;

use crate::Message;

/// Default time a message may wait for its receiver.
pub const DEFAULT_QUEUE_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug, Clone)]
struct PendingEntry {
    message: Message,
    deadline: SimTime,
}

/// Messages waiting for their receiver to arrive or become ready.
#[derive(Debug, Clone, Default)]
pub struct PendingQueue {
    entries: Vec<PendingEntry>,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue::default()
    }

    /// Queues a message until `now + timeout`.
    pub fn enqueue(&mut self, message: Message, now: SimTime, timeout: Duration) {
        self.entries.push(PendingEntry {
            message,
            deadline: now + timeout,
        });
    }

    /// Removes and returns every queued message whose target matches the
    /// newly available agent (same matching rules the live path uses).
    /// Expired entries encountered on the way are dropped and counted.
    pub fn take_matching(
        &mut self,
        agent: &AgentAddress,
        local_system: &str,
        now: SimTime,
    ) -> (Vec<Message>, usize) {
        let mut matched = Vec::new();
        let mut expired = 0;
        self.entries.retain(|entry| {
            if entry.deadline < now {
                expired += 1;
                return false;
            }
            let sender = entry.message.from_principal.as_str();
            if agent
                .matches(&entry.message.to, local_system, sender)
                .is_match()
            {
                matched.push(entry.message.clone());
                false
            } else {
                true
            }
        });
        (matched, expired)
    }

    /// Queues a message until an absolute `deadline` (used when re-parking
    /// a message that must keep its original timeout across retries).
    pub fn enqueue_until(&mut self, message: Message, deadline: SimTime) {
        self.entries.push(PendingEntry { message, deadline });
    }

    /// Removes and returns every queued message bound for a host other
    /// than `local_host` that has not yet expired, with its deadline.
    /// These are messages the transport could not deliver; a daemon
    /// sweeps them out periodically to retry (re-parking failures via
    /// [`PendingQueue::enqueue_until`] so the original timeout survives),
    /// and entries past their deadline stay behind for
    /// [`PendingQueue::expire`] to count.
    pub fn take_remote(&mut self, local_host: &str, now: SimTime) -> Vec<(Message, SimTime)> {
        let mut taken = Vec::new();
        self.entries.retain(|entry| {
            let remote = entry.message.to.host().is_some_and(|h| h != local_host);
            if remote && entry.deadline >= now {
                taken.push((entry.message.clone(), entry.deadline));
                false
            } else {
                true
            }
        });
        taken
    }

    /// Drops every entry whose deadline has passed; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.deadline >= now);
        before - self.entries.len()
    }

    /// Number of messages currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_briefcase::Briefcase;
    use tacoma_security::Principal;
    use tacoma_uri::Instance;

    fn msg(to: &str, from: &str) -> Message {
        Message::deliver(
            "h1",
            Principal::new(from).unwrap(),
            None,
            to.parse().unwrap(),
            Briefcase::new(),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn arriving_agent_collects_its_mail() {
        let mut q = PendingQueue::new();
        q.enqueue(msg("alice/webbot", "alice"), t(0), DEFAULT_QUEUE_TIMEOUT);
        q.enqueue(msg("bob/other", "bob"), t(0), DEFAULT_QUEUE_TIMEOUT);

        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(7));
        let (mail, expired) = q.take_matching(&agent, "system@h1", t(10));
        assert_eq!(mail.len(), 1);
        assert_eq!(expired, 0);
        assert_eq!(q.len(), 1, "unrelated mail stays queued");
    }

    #[test]
    fn expired_mail_is_dropped_on_expire() {
        let mut q = PendingQueue::new();
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(100),
        );
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(900),
        );
        assert_eq!(q.expire(t(500)), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn expired_mail_not_delivered_to_late_arrival() {
        let mut q = PendingQueue::new();
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(100),
        );
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, expired) = q.take_matching(&agent, "system@h1", t(5000));
        assert!(mail.is_empty());
        assert_eq!(expired, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn name_only_target_matches_any_instance_on_arrival() {
        let mut q = PendingQueue::new();
        q.enqueue(msg("alice/webbot", "alice"), t(0), DEFAULT_QUEUE_TIMEOUT);
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(12345));
        let (mail, _) = q.take_matching(&agent, "system@h1", t(1));
        assert_eq!(mail.len(), 1);
    }

    #[test]
    fn multiple_matching_messages_all_flush_in_order() {
        let mut q = PendingQueue::new();
        for i in 0..3 {
            let mut m = msg("alice/webbot", "alice");
            m.briefcase.set_single("SEQ", i as i64);
            q.enqueue(m, t(i), DEFAULT_QUEUE_TIMEOUT);
        }
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, _) = q.take_matching(&agent, "system@h1", t(10));
        let seqs: Vec<i64> = mail
            .iter()
            .map(|m| m.briefcase.single_i64("SEQ").unwrap())
            .collect();
        assert_eq!(seqs, [0, 1, 2]);
    }
}
