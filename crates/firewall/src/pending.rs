//! The pending-message queue.
//!
//! "Messages passing through the firewall are queued with a timeout value
//! if the receiving agent is not ready to receive, or has not yet arrived
//! at the site" (§3.2).
//!
//! Deadlines are absolute [`SimTime`] instants and therefore only valid
//! within one boot of the scheduler clock (which restarts at zero every
//! boot). Durable parking must never persist them: the journal stores the
//! *relative* timeout, and replay re-parks through
//! [`PendingQueue::enqueue_keyed`] so the deadline is recomputed against
//! the current clock instead of drifting stale (or, worse, landing in the
//! apparent past and expiring everything on arrival).

use std::time::Duration;

use tacoma_simnet::SimTime;
use tacoma_uri::AgentAddress;

use crate::Message;

/// Default time a message may wait for its receiver.
pub const DEFAULT_QUEUE_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug, Clone)]
struct PendingEntry {
    message: Message,
    deadline: SimTime,
    journal_key: Option<u64>,
}

/// A message removed from the queue, carrying the bookkeeping the
/// firewall needs to journal its departure: the absolute deadline (so
/// redelivery failures can re-park without extending the timeout) and the
/// journal key it was parked under, if the firewall is journaling.
#[derive(Debug, Clone)]
pub struct TakenMail {
    /// The parked message.
    pub message: Message,
    /// The absolute deadline the entry was parked until.
    pub deadline: SimTime,
    /// The `MailParked` journal key recorded at park time, if any.
    pub journal_key: Option<u64>,
}

/// The result of sweeping expired entries out of the queue.
#[derive(Debug, Clone, Default)]
pub struct ExpiredMail {
    /// How many entries expired.
    pub count: usize,
    /// Journal keys of the expired entries that were journaled at park
    /// time; each needs a `MailDelivered` record so replay does not
    /// resurrect mail whose timeout already fired.
    pub journal_keys: Vec<u64>,
}

impl ExpiredMail {
    fn absorb(&mut self, entry: &PendingEntry) {
        self.count += 1;
        if let Some(key) = entry.journal_key {
            self.journal_keys.push(key);
        }
    }
}

/// Messages waiting for their receiver to arrive or become ready.
#[derive(Debug, Clone, Default)]
pub struct PendingQueue {
    entries: Vec<PendingEntry>,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue::default()
    }

    /// Queues a message until `now + timeout`.
    pub fn enqueue(&mut self, message: Message, now: SimTime, timeout: Duration) {
        self.enqueue_keyed(message, now, timeout, None);
    }

    /// Queues a message until `now + timeout`, remembering the journal key
    /// it was parked under. This is also the replay re-park path: the
    /// journal stores the relative timeout, so a re-park after restart
    /// recomputes the deadline against the *current* clock rather than
    /// trusting an absolute instant from a previous boot.
    pub fn enqueue_keyed(
        &mut self,
        message: Message,
        now: SimTime,
        timeout: Duration,
        journal_key: Option<u64>,
    ) {
        self.entries.push(PendingEntry {
            message,
            deadline: now + timeout,
            journal_key,
        });
    }

    /// Removes and returns every queued message whose target matches the
    /// newly available agent (same matching rules the live path uses).
    /// Expired entries encountered on the way are dropped and reported.
    pub fn take_matching(
        &mut self,
        agent: &AgentAddress,
        local_system: &str,
        now: SimTime,
    ) -> (Vec<TakenMail>, ExpiredMail) {
        let mut matched = Vec::new();
        let mut expired = ExpiredMail::default();
        self.entries.retain(|entry| {
            if entry.deadline < now {
                expired.absorb(entry);
                return false;
            }
            let sender = entry.message.from_principal.as_str();
            if agent
                .matches(&entry.message.to, local_system, sender)
                .is_match()
            {
                matched.push(TakenMail {
                    message: entry.message.clone(),
                    deadline: entry.deadline,
                    journal_key: entry.journal_key,
                });
                false
            } else {
                true
            }
        });
        (matched, expired)
    }

    /// Queues a message until an absolute `deadline` (used when re-parking
    /// a message that must keep its original timeout across retries
    /// *within one boot* — across boots, deadlines are recomputed via
    /// [`PendingQueue::enqueue_keyed`]).
    pub fn enqueue_until(&mut self, message: Message, deadline: SimTime) {
        self.enqueue_until_keyed(message, deadline, None);
    }

    /// As [`PendingQueue::enqueue_until`], preserving the journal key so a
    /// redelivery retry does not orphan the original `MailParked` record.
    pub fn enqueue_until_keyed(
        &mut self,
        message: Message,
        deadline: SimTime,
        journal_key: Option<u64>,
    ) {
        self.entries.push(PendingEntry {
            message,
            deadline,
            journal_key,
        });
    }

    /// Removes and returns every queued message bound for a host other
    /// than `local_host` that has not yet expired, with its deadline.
    /// These are messages the transport could not deliver; a daemon
    /// sweeps them out periodically to retry (re-parking failures via
    /// [`PendingQueue::enqueue_until_keyed`] so the original timeout and
    /// journal key survive), and entries past their deadline stay behind
    /// for [`PendingQueue::expire`] to count.
    pub fn take_remote(&mut self, local_host: &str, now: SimTime) -> Vec<TakenMail> {
        let mut taken = Vec::new();
        self.entries.retain(|entry| {
            let remote = entry.message.to.host().is_some_and(|h| h != local_host);
            if remote && entry.deadline >= now {
                taken.push(TakenMail {
                    message: entry.message.clone(),
                    deadline: entry.deadline,
                    journal_key: entry.journal_key,
                });
                false
            } else {
                true
            }
        });
        taken
    }

    /// Drops every entry whose deadline has passed.
    pub fn expire(&mut self, now: SimTime) -> ExpiredMail {
        let mut expired = ExpiredMail::default();
        self.entries.retain(|entry| {
            if entry.deadline < now {
                expired.absorb(entry);
                false
            } else {
                true
            }
        });
        expired
    }

    /// Number of messages currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_briefcase::Briefcase;
    use tacoma_security::Principal;
    use tacoma_uri::Instance;

    fn msg(to: &str, from: &str) -> Message {
        Message::deliver(
            "h1",
            Principal::new(from).unwrap(),
            None,
            to.parse().unwrap(),
            Briefcase::new(),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn arriving_agent_collects_its_mail() {
        let mut q = PendingQueue::new();
        q.enqueue(msg("alice/webbot", "alice"), t(0), DEFAULT_QUEUE_TIMEOUT);
        q.enqueue(msg("bob/other", "bob"), t(0), DEFAULT_QUEUE_TIMEOUT);

        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(7));
        let (mail, expired) = q.take_matching(&agent, "system@h1", t(10));
        assert_eq!(mail.len(), 1);
        assert_eq!(expired.count, 0);
        assert_eq!(q.len(), 1, "unrelated mail stays queued");
    }

    #[test]
    fn expired_mail_is_dropped_on_expire() {
        let mut q = PendingQueue::new();
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(100),
        );
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(900),
        );
        assert_eq!(q.expire(t(500)).count, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn expired_mail_not_delivered_to_late_arrival() {
        let mut q = PendingQueue::new();
        q.enqueue(
            msg("alice/webbot", "alice"),
            t(0),
            Duration::from_millis(100),
        );
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, expired) = q.take_matching(&agent, "system@h1", t(5000));
        assert!(mail.is_empty());
        assert_eq!(expired.count, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn name_only_target_matches_any_instance_on_arrival() {
        let mut q = PendingQueue::new();
        q.enqueue(msg("alice/webbot", "alice"), t(0), DEFAULT_QUEUE_TIMEOUT);
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(12345));
        let (mail, _) = q.take_matching(&agent, "system@h1", t(1));
        assert_eq!(mail.len(), 1);
    }

    #[test]
    fn multiple_matching_messages_all_flush_in_order() {
        let mut q = PendingQueue::new();
        for i in 0..3 {
            let mut m = msg("alice/webbot", "alice");
            m.briefcase.set_single("SEQ", i as i64);
            q.enqueue(m, t(i), DEFAULT_QUEUE_TIMEOUT);
        }
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, _) = q.take_matching(&agent, "system@h1", t(10));
        let seqs: Vec<i64> = mail
            .iter()
            .map(|m| m.message.briefcase.single_i64("SEQ").unwrap())
            .collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn journal_keys_ride_through_take_and_expire() {
        let mut q = PendingQueue::new();
        q.enqueue_keyed(
            msg("alice/webbot", "alice"),
            t(0),
            DEFAULT_QUEUE_TIMEOUT,
            Some(7),
        );
        q.enqueue_keyed(
            msg("bob/other", "bob"),
            t(0),
            Duration::from_millis(100),
            Some(8),
        );
        q.enqueue(
            msg("carol/other", "carol"),
            t(0),
            Duration::from_millis(100),
        );

        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, _) = q.take_matching(&agent, "system@h1", t(10));
        assert_eq!(mail.len(), 1);
        assert_eq!(mail[0].journal_key, Some(7));

        // Expiry reports journaled keys only (the unkeyed entry still counts).
        let expired = q.expire(t(500));
        assert_eq!(expired.count, 2);
        assert_eq!(expired.journal_keys, [8]);
    }

    #[test]
    fn replayed_park_recomputes_deadline_from_relative_timeout() {
        // First boot: parked at t=900s with a 30s timeout — absolute
        // deadline 930s on that boot's clock.
        let mut before = PendingQueue::new();
        before.enqueue_keyed(
            msg("alice/webbot", "alice"),
            t(900_000),
            DEFAULT_QUEUE_TIMEOUT,
            Some(1),
        );

        // Second boot: the scheduler clock restarts at zero. Replay must
        // re-park with the *relative* timeout (what the journal stores),
        // not the stale absolute instant — had the absolute deadline been
        // reused, `930s < now` could never hold and the entry would wait
        // here, while a crash later than 930s into the first boot would
        // have made the mail expire instantly.
        let mut after = PendingQueue::new();
        after.enqueue_keyed(
            msg("alice/webbot", "alice"),
            t(0),
            DEFAULT_QUEUE_TIMEOUT,
            Some(1),
        );
        assert_eq!(after.expire(t(10)).count, 0, "fresh deadline, not stale");
        let agent = AgentAddress::new("alice", "webbot", Instance::from_u64(1));
        let (mail, _) = after.take_matching(&agent, "system@h1", t(10));
        assert_eq!(mail.len(), 1);
        assert_eq!(mail[0].journal_key, Some(1));
        assert_eq!(mail[0].deadline, t(0) + DEFAULT_QUEUE_TIMEOUT);
    }
}
