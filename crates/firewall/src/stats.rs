use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters for firewall mediation, used by tests and the architecture
/// benchmarks (every briefcase that crosses a VM boundary shows up here —
/// the Figure-1 mediation property).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallStats {
    /// Messages delivered to a local agent.
    pub delivered_local: u64,
    /// Messages forwarded to a remote firewall.
    pub forwarded_remote: u64,
    /// Messages queued for an absent receiver.
    pub queued: u64,
    /// Queued messages that timed out.
    pub expired: u64,
    /// Messages rejected by access control or authentication.
    pub denied: u64,
    /// Agents installed from arriving transfers (`go`/`spawn`).
    pub agents_installed: u64,
    /// Admin operations served.
    pub admin_ops: u64,
    /// Arriving agent code that passed bytecode verification and the
    /// capability-vs-rights admission check.
    pub code_verified: u64,
    /// Arriving agent code refused at admission (unverifiable bytecode or
    /// capabilities exceeding the principal's rights). Each such event
    /// also counts as `denied`.
    pub code_rejected: u64,
}

impl FirewallStats {
    /// Total mediation events.
    pub fn total(&self) -> u64 {
        self.delivered_local
            + self.forwarded_remote
            + self.queued
            + self.denied
            + self.agents_installed
            + self.admin_ops
    }
}

impl fmt::Display for FirewallStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local={} remote={} queued={} expired={} denied={} installed={} admin={} verified={} code-rejected={}",
            self.delivered_local,
            self.forwarded_remote,
            self.queued,
            self.expired,
            self.denied,
            self.agents_installed,
            self.admin_ops,
            self.code_verified,
            self.code_rejected
        )
    }
}
