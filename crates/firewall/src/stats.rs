use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters for firewall mediation, used by tests and the architecture
/// benchmarks (every briefcase that crosses a VM boundary shows up here —
/// the Figure-1 mediation property).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallStats {
    /// Messages delivered to a local agent.
    pub delivered_local: u64,
    /// Messages forwarded to a remote firewall.
    pub forwarded_remote: u64,
    /// Messages queued for an absent receiver.
    pub queued: u64,
    /// Queued messages that timed out.
    pub expired: u64,
    /// Messages rejected by access control or authentication.
    pub denied: u64,
    /// Agents installed from arriving transfers (`go`/`spawn`).
    pub agents_installed: u64,
    /// Admin operations served.
    pub admin_ops: u64,
}

impl FirewallStats {
    /// Total mediation events.
    pub fn total(&self) -> u64 {
        self.delivered_local
            + self.forwarded_remote
            + self.queued
            + self.denied
            + self.agents_installed
            + self.admin_ops
    }
}

impl fmt::Display for FirewallStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local={} remote={} queued={} expired={} denied={} installed={} admin={}",
            self.delivered_local,
            self.forwarded_remote,
            self.queued,
            self.expired,
            self.denied,
            self.agents_installed,
            self.admin_ops
        )
    }
}
