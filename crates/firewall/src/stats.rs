use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters for firewall mediation, used by tests and the architecture
/// benchmarks (every briefcase that crosses a VM boundary shows up here —
/// the Figure-1 mediation property).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallStats {
    /// Messages delivered to a local agent.
    pub delivered_local: u64,
    /// Messages forwarded to a remote firewall.
    pub forwarded_remote: u64,
    /// Messages queued for an absent receiver.
    pub queued: u64,
    /// Queued messages that timed out.
    pub expired: u64,
    /// Messages rejected by access control or authentication.
    pub denied: u64,
    /// Agents installed from arriving transfers (`go`/`spawn`).
    pub agents_installed: u64,
    /// Admin operations served.
    pub admin_ops: u64,
    /// Arriving agent code that passed bytecode verification and the
    /// capability-vs-rights admission check.
    pub code_verified: u64,
    /// Arriving agent code refused at admission (unverifiable bytecode or
    /// capabilities exceeding the principal's rights). Each such event
    /// also counts as `denied`.
    pub code_rejected: u64,
    /// Admissions answered from the shared verified-script cache.
    pub analysis_cache_hits: u64,
    /// Admissions that ran the cold analysis pipeline.
    pub analysis_cache_misses: u64,
    /// Entries the shared cache evicted to stay within capacity (gauge,
    /// absorbed from the cache when stats are read).
    pub analysis_cache_evictions: u64,
    /// Wire frames shipped to remote firewalls (transport acknowledged).
    pub frames_sent: u64,
    /// Payload bytes in those frames.
    pub bytes_sent: u64,
    /// Wire frames received from remote firewalls.
    pub frames_received: u64,
    /// Payload bytes in received frames.
    pub bytes_received: u64,
    /// Transport reconnect attempts (gauge, absorbed from the transport).
    pub reconnects: u64,
    /// Failed HELLO handshakes (gauge, absorbed from the transport).
    pub handshake_failures: u64,
    /// Outbound messages whose transport retry budget ran out; Deliver
    /// messages are parked in the pending queue, agent transfers are
    /// reported to the sending agent.
    pub retry_timeouts: u64,
    /// Cumulative acks the pipelined transport received (gauge, absorbed).
    pub acks_received: u64,
    /// Frames the pipelined transport retransmitted after an ack timeout
    /// (gauge, absorbed).
    pub retransmits: u64,
    /// Frames currently queued in the transport's bounded per-peer
    /// outbound queues (gauge, absorbed).
    pub queue_depth: u64,
    /// The deepest any outbound queue has been (gauge, absorbed).
    pub queue_high_water: u64,
    /// Sends refused because a peer's outbound queue was full (gauge,
    /// absorbed).
    pub queue_drops: u64,
    /// Records appended to the durable journal (gauge, absorbed from the
    /// journal when stats are read).
    pub journal_records: u64,
    /// Framed bytes appended to the journal (gauge, absorbed).
    pub journal_bytes: u64,
    /// Journal `fsync` calls (gauge, absorbed).
    pub journal_fsyncs: u64,
    /// Journal records scanned during boot-time replay.
    pub journal_replayed: u64,
    /// Parked messages restored into the pending queue at boot.
    pub journal_reparked: u64,
    /// Open hops resumed at boot (inbound re-installs plus outbound
    /// re-ships).
    pub journal_resumed: u64,
    /// Duplicate hop arrivals suppressed by the journal's dedup set
    /// (sender retries and replayed re-ships of already-executed hops).
    pub hops_deduped: u64,
    /// `vm_bin` launches answered from the shared compiled-program cache
    /// (gauge, absorbed from the cache when stats are read).
    pub program_cache_hits: u64,
    /// `vm_bin` launches that paid the cold decode + lowering (gauge,
    /// absorbed).
    pub program_cache_misses: u64,
    /// Programs the shared cache evicted to stay within capacity (gauge,
    /// absorbed).
    pub program_cache_evictions: u64,
    /// VM launches served a warm pooled scratch (gauge, absorbed from
    /// the shared pool when stats are read).
    pub vm_pool_hits: u64,
    /// VM launches that allocated a cold scratch (gauge, absorbed).
    pub vm_pool_misses: u64,
    /// Scratches dropped because the pool was full (gauge, absorbed).
    pub vm_pool_evictions: u64,
}

impl FirewallStats {
    /// Total mediation events.
    pub fn total(&self) -> u64 {
        self.delivered_local
            + self.forwarded_remote
            + self.queued
            + self.denied
            + self.agents_installed
            + self.admin_ops
    }
}

impl FirewallStats {
    /// Overwrites the transport gauge fields from a transport snapshot.
    /// Connection-level events (reconnects, handshake failures) are
    /// counted inside the transport; the firewall mirrors them so one
    /// stats line tells the whole story.
    pub fn absorb_transport(&mut self, t: &tacoma_transport::TransportStats) {
        self.reconnects = t.reconnects;
        self.handshake_failures = t.handshake_failures;
        self.acks_received = t.acks_received;
        self.retransmits = t.retransmits;
        self.queue_depth = t.queue_depth;
        self.queue_high_water = t.queue_high_water;
        self.queue_drops = t.queue_drops;
    }

    /// Overwrites the journal gauge fields from a journal snapshot, for
    /// the same one-line-tells-the-whole-story reason.
    pub fn absorb_journal(&mut self, j: &tacoma_journal::JournalStats) {
        self.journal_records = j.records;
        self.journal_bytes = j.bytes;
        self.journal_fsyncs = j.fsyncs;
    }

    /// Overwrites the warm-launch gauge fields from the shared
    /// compiled-program cache and VM pool snapshots.
    pub fn absorb_vm(&mut self, cache: &tacoma_vm::PoolStats, pool: &tacoma_vm::PoolStats) {
        self.program_cache_hits = cache.hits;
        self.program_cache_misses = cache.misses;
        self.program_cache_evictions = cache.evictions;
        self.vm_pool_hits = pool.hits;
        self.vm_pool_misses = pool.misses;
        self.vm_pool_evictions = pool.evictions;
    }
}

impl fmt::Display for FirewallStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local={} remote={} queued={} expired={} denied={} installed={} admin={} verified={} code-rejected={} \
             cache-hits={} cache-misses={} cache-evictions={} \
             tx-frames={} tx-bytes={} rx-frames={} rx-bytes={} reconnects={} handshake-fail={} retry-timeouts={} \
             acks={} retransmits={} q-depth={} q-high={} q-drops={} \
             jr-records={} jr-bytes={} jr-fsyncs={} jr-replayed={} jr-reparked={} jr-resumed={} hop-dedup={} \
             prog-hits={} prog-misses={} prog-evictions={} pool-hits={} pool-misses={} pool-evictions={}",
            self.delivered_local,
            self.forwarded_remote,
            self.queued,
            self.expired,
            self.denied,
            self.agents_installed,
            self.admin_ops,
            self.code_verified,
            self.code_rejected,
            self.analysis_cache_hits,
            self.analysis_cache_misses,
            self.analysis_cache_evictions,
            self.frames_sent,
            self.bytes_sent,
            self.frames_received,
            self.bytes_received,
            self.reconnects,
            self.handshake_failures,
            self.retry_timeouts,
            self.acks_received,
            self.retransmits,
            self.queue_depth,
            self.queue_high_water,
            self.queue_drops,
            self.journal_records,
            self.journal_bytes,
            self.journal_fsyncs,
            self.journal_replayed,
            self.journal_reparked,
            self.journal_resumed,
            self.hops_deduped,
            self.program_cache_hits,
            self.program_cache_misses,
            self.program_cache_evictions,
            self.vm_pool_hits,
            self.vm_pool_misses,
            self.vm_pool_evictions
        )
    }
}
