//! Code admission: static analysis at the firewall boundary.
//!
//! §3.2 makes the firewall the reference monitor for everything that
//! crosses a host boundary. Signature checking (first-level
//! authentication) says who *sent* an agent; it says nothing about what
//! the agent's code *does*. This module closes that gap for TaxScript
//! bytecode: when a transfer arrives carrying `CODE-TYPE =
//! taxscript-bytecode`, the firewall decodes and **verifies** the
//! bytecode (it is refused outright if it could fault a VM) and then
//! compares its **capability manifest** against the rights the sending
//! principal actually holds here. An agent that could `go()` onward is
//! only admitted if its principal holds `SEND_REMOTE`; one that can
//! `meet`/`bc_send` needs `SEND_LOCAL`.
//!
//! Briefcases without an explicit bytecode `CODE-TYPE` are outside this
//! policy's jurisdiction by default — source agents are compiled (and
//! thereby checked) by `vm_script` at install time, and binary artifacts
//! go through `vm_bin`'s signature gate. Setting
//! [`AdmissionPolicy::analyze_source`] extends the same scrutiny to
//! source agents at the cost of compiling them twice.

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::Rights;
use tacoma_taxscript::analysis::{self, Capabilities};
use tacoma_taxscript::{compile_source, Builtin, Program};
use tacoma_vm::code_types;

/// How (and whether) arriving agent code is analyzed before admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Master switch. Disabled, every briefcase is admitted unanalyzed
    /// (pre-analysis behaviour).
    pub enabled: bool,
    /// Also compile and analyze `taxscript-source` agents. Off by
    /// default: the source pipeline re-compiles at install time anyway.
    pub analyze_source: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            enabled: true,
            analyze_source: false,
        }
    }
}

/// Why the admission check refused a briefcase.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The code failed to decode or verify — it cannot run safely.
    Unverifiable {
        /// Human-readable verifier/decoder failure.
        detail: String,
    },
    /// The code's capabilities exceed the rights the principal holds.
    CapabilityExceedsRights {
        /// The offending capability, human-readable (e.g. `go/spawn`).
        capability: &'static str,
        /// The right that would be needed.
        needed: Rights,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Unverifiable { detail } => {
                write!(f, "code failed verification: {detail}")
            }
            AdmissionError::CapabilityExceedsRights { capability, needed } => {
                write!(f, "code uses {capability} but principal lacks {needed:?}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The outcome of a successful admission check.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// The code was analyzed and is within the principal's rights; the
    /// manifest is returned for logging/auditing.
    Verified(Box<Capabilities>),
    /// The briefcase is outside this policy's jurisdiction (no TaxScript
    /// bytecode, or the policy is disabled).
    Skipped,
}

impl AdmissionPolicy {
    /// A policy that admits everything unanalyzed.
    pub fn disabled() -> Self {
        AdmissionPolicy {
            enabled: false,
            analyze_source: false,
        }
    }

    /// Checks an arriving transfer's code against `rights`.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] when the code is unverifiable or demands more
    /// than the principal may do.
    pub fn check(
        &self,
        briefcase: &Briefcase,
        rights: Rights,
    ) -> Result<AdmissionVerdict, AdmissionError> {
        if !self.enabled {
            return Ok(AdmissionVerdict::Skipped);
        }
        let Ok(code_type) = briefcase.single_str(folders::CODE_TYPE) else {
            return Ok(AdmissionVerdict::Skipped);
        };
        let program = match code_type {
            code_types::TAXSCRIPT_BYTECODE => {
                let code = briefcase.element(folders::CODE, 0).map_err(|e| {
                    AdmissionError::Unverifiable {
                        detail: e.to_string(),
                    }
                })?;
                Program::decode(code.data()).map_err(|e| AdmissionError::Unverifiable {
                    detail: e.to_string(),
                })?
            }
            code_types::TAXSCRIPT_SOURCE if self.analyze_source => {
                let code = briefcase.element(folders::CODE, 0).map_err(|e| {
                    AdmissionError::Unverifiable {
                        detail: e.to_string(),
                    }
                })?;
                let source =
                    std::str::from_utf8(code.data()).map_err(|_| AdmissionError::Unverifiable {
                        detail: "source is not UTF-8".into(),
                    })?;
                compile_source(source).map_err(|e| AdmissionError::Unverifiable {
                    detail: e.to_string(),
                })?
            }
            _ => return Ok(AdmissionVerdict::Skipped),
        };

        analysis::verify(&program).map_err(|e| AdmissionError::Unverifiable {
            detail: e.to_string(),
        })?;
        let caps = analysis::capabilities(&program);
        require_rights(&caps, rights)?;
        Ok(AdmissionVerdict::Verified(Box::new(caps)))
    }
}

/// The rights a capability manifest demands beyond bare EXECUTE.
fn require_rights(caps: &Capabilities, rights: Rights) -> Result<(), AdmissionError> {
    if caps.is_mobile() && !rights.contains(Rights::SEND_REMOTE) {
        return Err(AdmissionError::CapabilityExceedsRights {
            capability: "go/spawn (onward travel)",
            needed: Rights::SEND_REMOTE,
        });
    }
    if caps.communicates() && !rights.contains(Rights::SEND_LOCAL) {
        let capability = if caps.uses(Builtin::Meet) {
            "meet (local communication)"
        } else {
            "bc_send/bc_recv (local communication)"
        };
        return Err(AdmissionError::CapabilityExceedsRights {
            capability,
            needed: Rights::SEND_LOCAL,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytecode_briefcase(src: &str) -> Briefcase {
        let program = compile_source(src).unwrap();
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        bc
    }

    #[test]
    fn stationary_agent_admitted_with_execute_only() {
        let bc = bytecode_briefcase("fn main() { display(1); exit(0); }");
        let verdict = AdmissionPolicy::default()
            .check(&bc, Rights::EXECUTE)
            .unwrap();
        assert!(matches!(verdict, AdmissionVerdict::Verified(_)));
    }

    #[test]
    fn mobile_agent_needs_send_remote() {
        let bc = bytecode_briefcase(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        let policy = AdmissionPolicy::default();
        assert!(matches!(
            policy.check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { needed, .. })
                if needed == Rights::SEND_REMOTE
        ));
        let ok = policy
            .check(&bc, Rights::EXECUTE.with(Rights::SEND_REMOTE))
            .unwrap();
        let AdmissionVerdict::Verified(caps) = ok else {
            panic!("{ok:?}")
        };
        assert!(caps.is_mobile());
    }

    #[test]
    fn communicating_agent_needs_send_local() {
        let bc = bytecode_briefcase(r#"fn main() { meet("tacoma://h1/peer"); exit(0); }"#);
        assert!(matches!(
            AdmissionPolicy::default().check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { needed, .. })
                if needed == Rights::SEND_LOCAL
        ));
    }

    #[test]
    fn corrupt_bytecode_is_unverifiable() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, vec![0xFFu8; 16]);
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        assert!(matches!(
            AdmissionPolicy::default().check(&bc, Rights::ALL),
            Err(AdmissionError::Unverifiable { .. })
        ));
    }

    #[test]
    fn briefcases_without_bytecode_are_skipped() {
        let mut opaque = Briefcase::new();
        opaque.append(folders::CODE, b"compiled agent bytes".to_vec());
        let policy = AdmissionPolicy::default();
        assert_eq!(
            policy.check(&opaque, Rights::NONE).unwrap(),
            AdmissionVerdict::Skipped
        );

        let mut source = Briefcase::new();
        source.append(folders::CODE, "fn main() { exit(0); }");
        source.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        assert_eq!(
            policy.check(&source, Rights::NONE).unwrap(),
            AdmissionVerdict::Skipped
        );
    }

    #[test]
    fn disabled_policy_skips_everything() {
        let bc = bytecode_briefcase(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        assert_eq!(
            AdmissionPolicy::disabled()
                .check(&bc, Rights::NONE)
                .unwrap(),
            AdmissionVerdict::Skipped
        );
    }

    #[test]
    fn analyze_source_extends_to_source_agents() {
        let mut bc = Briefcase::new();
        bc.append(
            folders::CODE,
            r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#,
        );
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        let policy = AdmissionPolicy {
            analyze_source: true,
            ..AdmissionPolicy::default()
        };
        assert!(matches!(
            policy.check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { .. })
        ));
    }
}
