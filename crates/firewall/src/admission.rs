//! Code admission: static analysis at the firewall boundary.
//!
//! §3.2 makes the firewall the reference monitor for everything that
//! crosses a host boundary. Signature checking (first-level
//! authentication) says who *sent* an agent; it says nothing about what
//! the agent's code *does*. This module closes that gap for TaxScript
//! bytecode: when a transfer arrives carrying `CODE-TYPE =
//! taxscript-bytecode`, the firewall runs the full analysis pipeline
//! (decode, verify, capabilities, folder flow) and then
//!
//! 1. compares the **capability manifest** against the rights the
//!    sending principal actually holds here — an agent that could `go()`
//!    onward is only admitted if its principal holds `SEND_REMOTE`; one
//!    that can `meet`/`bc_recv` needs `SEND_LOCAL` — and
//! 2. joins the **flow summary** with the briefcase's declared `HOSTS`
//!    itinerary and refuses error-severity flow findings (TAX005: a
//!    written folder would ship to a host the itinerary never covers).
//!
//! Analysis is memoized by content hash in the process-wide
//! [`AnalysisCache`] shared with `vm_script`, so a known agent re-arriving
//! at every hop of a tour is admitted in O(hash) — see the
//! `cache_hit` flag on [`AdmissionVerdict::Verified`] and the
//! hit/miss/eviction counters in `FirewallStats`.
//!
//! Briefcases without an explicit bytecode `CODE-TYPE` are outside this
//! policy's jurisdiction by default — source agents are compiled (and
//! thereby checked) by `vm_script` at install time, and binary artifacts
//! go through `vm_bin`'s signature gate. Setting
//! [`AdmissionPolicy::analyze_source`] extends the same scrutiny to
//! source agents; with the cache on, the second compile is a hash lookup.

use std::sync::Arc;

use tacoma_briefcase::{folders, Briefcase};
use tacoma_security::Rights;
use tacoma_taxscript::analysis::{
    self, AnalysisCache, AnalysisFailure, AnalysisReport, Capabilities, Diagnostic, Severity,
    VerifiedScript,
};
use tacoma_taxscript::{compile_source, Builtin, Program};
use tacoma_vm::code_types;

/// How (and whether) arriving agent code is analyzed before admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Master switch. Disabled, every briefcase is admitted unanalyzed
    /// (pre-analysis behaviour).
    pub enabled: bool,
    /// Also compile and analyze `taxscript-source` agents. Off by
    /// default: the source pipeline re-compiles at install time anyway.
    pub analyze_source: bool,
    /// Memoize analysis in the shared content-hash cache. On by default;
    /// turn off to force the cold path (benchmarks, forensics).
    pub use_cache: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            enabled: true,
            analyze_source: false,
            use_cache: true,
        }
    }
}

/// Why the admission check refused a briefcase.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The code failed to decode or verify — it cannot run safely.
    Unverifiable {
        /// Human-readable verifier/decoder failure.
        detail: String,
    },
    /// The code's capabilities exceed the rights the principal holds.
    CapabilityExceedsRights {
        /// The offending capability, human-readable (e.g. `go/spawn`).
        capability: &'static str,
        /// The right that would be needed.
        needed: Rights,
    },
    /// The folder flow joined with the declared itinerary has
    /// error-severity findings (e.g. TAX005: collected data would ship
    /// to a host outside the itinerary).
    FlowViolation {
        /// The error-severity findings, sorted like `analyze`'s.
        diagnostics: Vec<Diagnostic>,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Unverifiable { detail } => {
                write!(f, "code failed verification: {detail}")
            }
            AdmissionError::CapabilityExceedsRights { capability, needed } => {
                write!(f, "code uses {capability} but principal lacks {needed:?}")
            }
            AdmissionError::FlowViolation { diagnostics } => {
                write!(f, "itinerary flow violation:")?;
                for d in diagnostics {
                    write!(f, " [{d}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The outcome of a successful admission check.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// The code was analyzed and is within the principal's rights.
    Verified {
        /// The verified program and its full analysis report, shared
        /// with the cache (a hit costs one pointer clone).
        script: Arc<VerifiedScript>,
        /// Whether the result came from the shared content-hash cache
        /// rather than a cold analysis.
        cache_hit: bool,
    },
    /// The briefcase is outside this policy's jurisdiction (no TaxScript
    /// bytecode, or the policy is disabled).
    Skipped,
}

impl AdmissionVerdict {
    /// The full analysis report of a verified agent, if analyzed.
    pub fn report(&self) -> Option<&AnalysisReport> {
        match self {
            AdmissionVerdict::Verified { script, .. } => Some(&script.report),
            AdmissionVerdict::Skipped => None,
        }
    }

    /// The capability manifest of a verified agent, if analyzed.
    pub fn capabilities(&self) -> Option<&Capabilities> {
        self.report().map(|r| &r.capabilities)
    }
}

impl AdmissionPolicy {
    /// A policy that admits everything unanalyzed.
    pub fn disabled() -> Self {
        AdmissionPolicy {
            enabled: false,
            ..AdmissionPolicy::default()
        }
    }

    /// Checks an arriving transfer's code against `rights` and the
    /// briefcase's declared `HOSTS` itinerary.
    ///
    /// # Errors
    ///
    /// [`AdmissionError`] when the code is unverifiable, demands more
    /// than the principal may do, or leaks folders outside the
    /// itinerary.
    pub fn check(
        &self,
        briefcase: &Briefcase,
        rights: Rights,
    ) -> Result<AdmissionVerdict, AdmissionError> {
        if !self.enabled {
            return Ok(AdmissionVerdict::Skipped);
        }
        let Ok(code_type) = briefcase.single_str(folders::CODE_TYPE) else {
            return Ok(AdmissionVerdict::Skipped);
        };
        let (script, cache_hit) = match code_type {
            code_types::TAXSCRIPT_BYTECODE => {
                let code = briefcase.element(folders::CODE, 0).map_err(|e| {
                    AdmissionError::Unverifiable {
                        detail: e.to_string(),
                    }
                })?;
                self.analyze_bytes(code.data())?
            }
            code_types::TAXSCRIPT_SOURCE if self.analyze_source => {
                let code = briefcase.element(folders::CODE, 0).map_err(|e| {
                    AdmissionError::Unverifiable {
                        detail: e.to_string(),
                    }
                })?;
                let source =
                    std::str::from_utf8(code.data()).map_err(|_| AdmissionError::Unverifiable {
                        detail: "source is not UTF-8".into(),
                    })?;
                self.analyze_text(source)?
            }
            _ => return Ok(AdmissionVerdict::Skipped),
        };

        require_rights(&script.report.capabilities, rights)?;
        require_clean_flow(&script.report, briefcase)?;
        Ok(AdmissionVerdict::Verified { script, cache_hit })
    }

    /// Bytecode through the cache (or the cold pipeline when disabled).
    fn analyze_bytes(&self, wire: &[u8]) -> Result<(Arc<VerifiedScript>, bool), AdmissionError> {
        if self.use_cache {
            let (result, hit) = AnalysisCache::shared().analyze_bytes(wire);
            return Ok((result.map_err(|e| unverifiable(&e))?, hit));
        }
        let program = Program::decode(wire).map_err(|e| AdmissionError::Unverifiable {
            detail: e.to_string(),
        })?;
        self.cold_pipeline(program)
    }

    /// Source text through the cache (or the cold pipeline).
    fn analyze_text(&self, source: &str) -> Result<(Arc<VerifiedScript>, bool), AdmissionError> {
        if self.use_cache {
            let (result, hit) = AnalysisCache::shared().analyze_source(source);
            return Ok((result.map_err(|e| unverifiable(&e))?, hit));
        }
        let program = compile_source(source).map_err(|e| AdmissionError::Unverifiable {
            detail: e.to_string(),
        })?;
        self.cold_pipeline(program)
    }

    /// The uncached pipeline: full analysis every time.
    fn cold_pipeline(
        &self,
        program: Program,
    ) -> Result<(Arc<VerifiedScript>, bool), AdmissionError> {
        let report = analysis::analyze(&program).map_err(|e| AdmissionError::Unverifiable {
            detail: e.to_string(),
        })?;
        Ok((Arc::new(VerifiedScript { program, report }), false))
    }
}

fn unverifiable(e: &AnalysisFailure) -> AdmissionError {
    AdmissionError::Unverifiable {
        detail: e.to_string(),
    }
}

/// The rights a capability manifest demands beyond bare EXECUTE.
fn require_rights(caps: &Capabilities, rights: Rights) -> Result<(), AdmissionError> {
    if caps.is_mobile() && !rights.contains(Rights::SEND_REMOTE) {
        return Err(AdmissionError::CapabilityExceedsRights {
            capability: "go/spawn (onward travel)",
            needed: Rights::SEND_REMOTE,
        });
    }
    if caps.communicates() && !rights.contains(Rights::SEND_LOCAL) {
        let capability = if caps.uses(Builtin::Meet) {
            "meet (local communication)"
        } else {
            "bc_send/bc_recv (local communication)"
        };
        return Err(AdmissionError::CapabilityExceedsRights {
            capability,
            needed: Rights::SEND_LOCAL,
        });
    }
    Ok(())
}

/// Joins the agent's flow summary with the briefcase's declared `HOSTS`
/// itinerary and refuses error-severity findings (TAX005). Warnings pass
/// — admission is a gate, not a linter; `taxsh audit` surfaces the rest.
fn require_clean_flow(
    report: &AnalysisReport,
    briefcase: &Briefcase,
) -> Result<(), AdmissionError> {
    let itinerary = declared_itinerary(briefcase);
    if itinerary.is_empty() {
        return Ok(());
    }
    let errors: Vec<Diagnostic> = analysis::flow_lints(&[&report.flow], &itinerary)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(AdmissionError::FlowViolation {
            diagnostics: errors,
        })
    }
}

/// The itinerary the briefcase declares: the string entries of its
/// `HOSTS` folder, in visit order.
fn declared_itinerary(briefcase: &Briefcase) -> Vec<String> {
    let Some(folder) = briefcase.folder(folders::HOSTS) else {
        return Vec::new();
    };
    folder
        .iter()
        .filter_map(|e| e.as_str().ok().map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytecode_briefcase(src: &str) -> Briefcase {
        let program = compile_source(src).unwrap();
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, program.encode());
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        bc
    }

    #[test]
    fn stationary_agent_admitted_with_execute_only() {
        let bc = bytecode_briefcase("fn main() { display(1); exit(0); }");
        let verdict = AdmissionPolicy::default()
            .check(&bc, Rights::EXECUTE)
            .unwrap();
        assert!(matches!(verdict, AdmissionVerdict::Verified { .. }));
    }

    #[test]
    fn mobile_agent_needs_send_remote() {
        let bc = bytecode_briefcase(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        let policy = AdmissionPolicy::default();
        assert!(matches!(
            policy.check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { needed, .. })
                if needed == Rights::SEND_REMOTE
        ));
        let ok = policy
            .check(&bc, Rights::EXECUTE.with(Rights::SEND_REMOTE))
            .unwrap();
        assert!(ok.capabilities().unwrap().is_mobile(), "{ok:?}");
    }

    #[test]
    fn repeat_admission_is_a_cache_hit() {
        let bc = bytecode_briefcase("fn main() { display(7); exit(0); }");
        let policy = AdmissionPolicy::default();
        policy.check(&bc, Rights::EXECUTE).unwrap();
        let verdict = policy.check(&bc, Rights::EXECUTE).unwrap();
        assert!(
            matches!(
                verdict,
                AdmissionVerdict::Verified {
                    cache_hit: true,
                    ..
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn cold_path_matches_cached_report() {
        let bc = bytecode_briefcase("fn main() { display(8); exit(0); }");
        let cached = AdmissionPolicy::default();
        let cold = AdmissionPolicy {
            use_cache: false,
            ..AdmissionPolicy::default()
        };
        cached.check(&bc, Rights::EXECUTE).unwrap();
        let warm = cached.check(&bc, Rights::EXECUTE).unwrap();
        let eager = cold.check(&bc, Rights::EXECUTE).unwrap();
        let (
            AdmissionVerdict::Verified {
                script: a,
                cache_hit: true,
            },
            AdmissionVerdict::Verified {
                script: b,
                cache_hit: false,
            },
        ) = (warm, eager)
        else {
            panic!("expected warm hit and cold miss");
        };
        assert_eq!(*a, *b);
    }

    #[test]
    fn tainted_escape_is_refused_at_admission() {
        // The agent collects data and ships to a host the declared
        // itinerary never covers: TAX005 at error severity.
        let mut bc = bytecode_briefcase(
            r#"
            fn main() {
                bc_append("SECRETS", host_name());
                if (go("tacoma://exfil/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        bc.append(folders::HOSTS, "tacoma://home/vm_script");
        let policy = AdmissionPolicy::default();
        let refused = policy.check(&bc, Rights::ALL);
        assert!(
            matches!(
                &refused,
                Err(AdmissionError::FlowViolation { diagnostics })
                    if diagnostics.iter().all(|d| d.code.as_str() == "TAX005")
            ),
            "{refused:?}"
        );

        // The same agent with the target on the itinerary is admitted.
        let mut covered = bytecode_briefcase(
            r#"
            fn main() {
                bc_append("SECRETS", host_name());
                if (go("tacoma://exfil/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        covered.append(folders::HOSTS, "tacoma://exfil/vm_script");
        assert!(policy.check(&covered, Rights::ALL).is_ok());
    }

    #[test]
    fn no_declared_itinerary_skips_flow_gate() {
        let bc = bytecode_briefcase(
            r#"
            fn main() {
                bc_append("RESULTS", host_name());
                if (go("tacoma://anywhere/vm_script")) { exit(1); }
                exit(0);
            }
            "#,
        );
        assert!(AdmissionPolicy::default().check(&bc, Rights::ALL).is_ok());
    }

    #[test]
    fn communicating_agent_needs_send_local() {
        let bc = bytecode_briefcase(r#"fn main() { meet("tacoma://h1/peer"); exit(0); }"#);
        assert!(matches!(
            AdmissionPolicy::default().check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { needed, .. })
                if needed == Rights::SEND_LOCAL
        ));
    }

    #[test]
    fn corrupt_bytecode_is_unverifiable() {
        let mut bc = Briefcase::new();
        bc.append(folders::CODE, vec![0xFFu8; 16]);
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_BYTECODE);
        assert!(matches!(
            AdmissionPolicy::default().check(&bc, Rights::ALL),
            Err(AdmissionError::Unverifiable { .. })
        ));
    }

    #[test]
    fn briefcases_without_bytecode_are_skipped() {
        let mut opaque = Briefcase::new();
        opaque.append(folders::CODE, b"compiled agent bytes".to_vec());
        let policy = AdmissionPolicy::default();
        assert_eq!(
            policy.check(&opaque, Rights::NONE).unwrap(),
            AdmissionVerdict::Skipped
        );

        let mut source = Briefcase::new();
        source.append(folders::CODE, "fn main() { exit(0); }");
        source.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        assert_eq!(
            policy.check(&source, Rights::NONE).unwrap(),
            AdmissionVerdict::Skipped
        );
    }

    #[test]
    fn disabled_policy_skips_everything() {
        let bc = bytecode_briefcase(r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#);
        assert_eq!(
            AdmissionPolicy::disabled()
                .check(&bc, Rights::NONE)
                .unwrap(),
            AdmissionVerdict::Skipped
        );
    }

    #[test]
    fn analyze_source_extends_to_source_agents() {
        let mut bc = Briefcase::new();
        bc.append(
            folders::CODE,
            r#"fn main() { go("tacoma://h2/vm_script"); exit(0); }"#,
        );
        bc.set_single(folders::CODE_TYPE, code_types::TAXSCRIPT_SOURCE);
        let policy = AdmissionPolicy {
            analyze_source: true,
            ..AdmissionPolicy::default()
        };
        assert!(matches!(
            policy.check(&bc, Rights::EXECUTE),
            Err(AdmissionError::CapabilityExceedsRights { .. })
        ));
    }
}
