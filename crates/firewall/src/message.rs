//! The inter-firewall message: everything on the wire is a briefcase.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use tacoma_briefcase::{Briefcase, Element};
use tacoma_security::Principal;
use tacoma_uri::{AgentAddress, AgentUri};

use crate::FirewallError;

/// What a message *is*, from the firewall's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// An ordinary briefcase exchange between agents (`activate`, `meet`,
    /// `await` replies — the kernel layers RPC correlation on top).
    Deliver,
    /// A moving agent (`go`): the briefcase carries the agent itself; on
    /// arrival the firewall authenticates it and installs it on a VM
    /// instead of delivering it to a running agent.
    AgentTransfer {
        /// `true` for `spawn` (fresh instance, origin keeps running),
        /// `false` for `go` (origin instance terminated).
        spawned: bool,
    },
}

/// A mediated message: sender identity, target pattern, and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// What kind of delivery this is.
    pub kind: MessageKind,
    /// The host the message was sent from.
    pub from_host: String,
    /// The principal on whose behalf the sender acts.
    pub from_principal: Principal,
    /// The sending agent, when the sender is an agent (admin tools and the
    /// kernel itself send agent-less messages).
    pub from_agent: Option<AgentAddress>,
    /// The target pattern (Figure 2 URI).
    pub to: AgentUri,
    /// The payload.
    pub briefcase: Briefcase,
    /// The content-derived dedup key of this hop, set on agent transfers
    /// when the sending kernel journals migrations. Receivers use it for
    /// effectively-once installation: a retried transfer with an
    /// already-seen key is acknowledged but not re-executed.
    pub hop: Option<String>,
    /// The hop key of the inbound hop whose task issued this transfer, if
    /// any. Replay treats a parent with a journaled child as committed
    /// (the child's begin proves the parent progressed past its send).
    pub hop_parent: Option<String>,
}

/// Well-known system folders used to frame a [`Message`] on the wire. The
/// payload briefcase is nested whole, so application folders can never
/// collide with framing.
mod wire {
    pub const KIND: &str = "SYS:KIND";
    pub const FROM_HOST: &str = "SYS:FROM-HOST";
    pub const FROM_PRINCIPAL: &str = "SYS:FROM-PRINCIPAL";
    pub const FROM_AGENT: &str = "SYS:FROM-AGENT";
    pub const TO: &str = "SYS:TO";
    pub const PAYLOAD: &str = "SYS:PAYLOAD";
    pub const HOP: &str = "SYS:HOP";
    pub const HOP_PARENT: &str = "SYS:HOP-PARENT";
}

impl Message {
    /// A plain delivery from an agent.
    pub fn deliver(
        from_host: impl Into<String>,
        from_principal: Principal,
        from_agent: Option<AgentAddress>,
        to: AgentUri,
        briefcase: Briefcase,
    ) -> Self {
        Message {
            kind: MessageKind::Deliver,
            from_host: from_host.into(),
            from_principal,
            from_agent,
            to,
            briefcase,
            hop: None,
            hop_parent: None,
        }
    }

    /// An agent transfer (`go` when `spawned` is false, `spawn` otherwise).
    pub fn transfer(
        from_host: impl Into<String>,
        from_principal: Principal,
        to: AgentUri,
        briefcase: Briefcase,
        spawned: bool,
    ) -> Self {
        Message {
            kind: MessageKind::AgentTransfer { spawned },
            from_host: from_host.into(),
            from_principal,
            from_agent: None,
            to,
            briefcase,
            hop: None,
            hop_parent: None,
        }
    }

    /// Attaches a hop dedup key (and optionally its parent hop) to a
    /// transfer. Builder-style so the kernel's `go`/`spawn` paths stay a
    /// single expression.
    #[must_use]
    pub fn with_hop(mut self, hop: impl Into<String>, parent: Option<String>) -> Self {
        self.hop = Some(hop.into());
        self.hop_parent = parent;
        self
    }

    /// Frames the message as a single briefcase and encodes it for the
    /// network. This is the only wire format between firewalls —
    /// briefcases all the way down (§3.3: a VM's sole obligation is to
    /// "issue briefcases for communication").
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes into a caller-provided buffer, appending — senders with a
    /// write loop (connections, the simulated transport) reuse one buffer
    /// across messages instead of allocating per message.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut frame = Briefcase::new();
        let kind = match self.kind {
            MessageKind::Deliver => "deliver".to_owned(),
            MessageKind::AgentTransfer { spawned: false } => "go".to_owned(),
            MessageKind::AgentTransfer { spawned: true } => "spawn".to_owned(),
        };
        frame.set_single(wire::KIND, kind);
        frame.set_single(wire::FROM_HOST, self.from_host.as_str());
        frame.set_single(wire::FROM_PRINCIPAL, self.from_principal.as_str());
        if let Some(agent) = &self.from_agent {
            frame.set_single(wire::FROM_AGENT, agent.to_string());
        }
        frame.set_single(wire::TO, self.to.to_string());
        if let Some(hop) = &self.hop {
            frame.set_single(wire::HOP, hop.as_str());
        }
        if let Some(parent) = &self.hop_parent {
            frame.set_single(wire::HOP_PARENT, parent.as_str());
        }
        // The payload rides as a shared handle to the briefcase's cached
        // encoding: retries and multi-peer fan-out over clones of the same
        // briefcase serialize the payload once, and the frame element is a
        // pointer bump rather than a copy of the payload bytes.
        frame.set_single(wire::PAYLOAD, Element::from(self.briefcase.wire_bytes()));
        frame.encode_into(out);
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// [`FirewallError::BadWire`] on any malformation; hostile input
    /// cannot panic the firewall.
    pub fn decode(bytes: &[u8]) -> Result<Self, FirewallError> {
        let frame = Briefcase::decode(bytes).map_err(bad)?;
        Message::from_frame(&frame, |payload| {
            Briefcase::decode(payload.data()).map_err(bad)
        })
    }

    /// Zero-copy decode: the message frame and its nested payload
    /// briefcase are both sliced out of `bytes`' shared allocation, so
    /// element data (page bodies, agent binaries) is never copied off the
    /// wire buffer.
    ///
    /// # Errors
    ///
    /// Exactly as [`Message::decode`].
    pub fn decode_bytes(bytes: &Bytes) -> Result<Self, FirewallError> {
        let frame = Briefcase::decode_bytes(bytes).map_err(bad)?;
        Message::from_frame(&frame, |payload| {
            Briefcase::decode_bytes(payload.bytes()).map_err(bad)
        })
    }

    /// The shared field-extraction path behind both decoders; only the
    /// nested-payload decode differs (copying vs slicing).
    fn from_frame(
        frame: &Briefcase,
        decode_payload: impl FnOnce(&Element) -> Result<Briefcase, FirewallError>,
    ) -> Result<Self, FirewallError> {
        let kind = match frame.single_str(wire::KIND).map_err(bad)? {
            "deliver" => MessageKind::Deliver,
            "go" => MessageKind::AgentTransfer { spawned: false },
            "spawn" => MessageKind::AgentTransfer { spawned: true },
            other => {
                return Err(FirewallError::BadWire {
                    detail: format!("unknown kind {other:?}"),
                })
            }
        };
        let from_host = frame.single_str(wire::FROM_HOST).map_err(bad)?.to_owned();
        let from_principal =
            Principal::new(frame.single_str(wire::FROM_PRINCIPAL).map_err(bad)?).map_err(bad)?;
        let from_agent = match frame.single_str(wire::FROM_AGENT) {
            Ok(text) => Some(parse_address(text)?),
            Err(_) => None,
        };
        let to: AgentUri = frame
            .single_str(wire::TO)
            .map_err(bad)?
            .parse()
            .map_err(bad)?;
        let hop = frame.single_str(wire::HOP).ok().map(str::to_owned);
        let hop_parent = frame.single_str(wire::HOP_PARENT).ok().map(str::to_owned);
        let payload = frame.element(wire::PAYLOAD, 0).map_err(bad)?;
        let briefcase = decode_payload(payload)?;
        Ok(Message {
            kind,
            from_host,
            from_principal,
            from_agent,
            to,
            briefcase,
            hop,
            hop_parent,
        })
    }

    /// The exact encoded size, for transfer-cost accounting — computed
    /// arithmetically, *without* serializing the payload. Every `meet`
    /// used to pay a full encode of the reply just to price the transfer;
    /// this makes cost accounting O(folders) instead of O(bytes).
    pub fn encoded_len(&self) -> usize {
        // One framing folder holding a single element of `data_len` bytes.
        fn folder(name: &str, data_len: usize) -> usize {
            2 + name.len() + 4 + 4 + data_len
        }
        let kind_len = match self.kind {
            MessageKind::Deliver => "deliver".len(),
            MessageKind::AgentTransfer { spawned: false } => "go".len(),
            MessageKind::AgentTransfer { spawned: true } => "spawn".len(),
        };
        let mut len = 4 + 1 + 4; // magic + version + folder count
        len += folder(wire::KIND, kind_len);
        len += folder(wire::FROM_HOST, self.from_host.len());
        len += folder(wire::FROM_PRINCIPAL, self.from_principal.as_str().len());
        if let Some(agent) = &self.from_agent {
            len += folder(wire::FROM_AGENT, agent.to_string().len());
        }
        len += folder(wire::TO, self.to.to_string().len());
        if let Some(hop) = &self.hop {
            len += folder(wire::HOP, hop.len());
        }
        if let Some(parent) = &self.hop_parent {
            len += folder(wire::HOP_PARENT, parent.len());
        }
        len += folder(wire::PAYLOAD, self.briefcase.encoded_len());
        len
    }
}

fn bad(e: impl std::fmt::Display) -> FirewallError {
    FirewallError::BadWire {
        detail: e.to_string(),
    }
}

/// Parses the `principal/name:instance` rendering of [`AgentAddress`].
fn parse_address(text: &str) -> Result<AgentAddress, FirewallError> {
    let (principal, id) = text
        .rsplit_once('/')
        .ok_or_else(|| FirewallError::BadWire {
            detail: format!("bad agent address {text:?}"),
        })?;
    let (name, instance) = id.split_once(':').ok_or_else(|| FirewallError::BadWire {
        detail: format!("bad agent id {id:?}"),
    })?;
    let instance = instance.parse().map_err(bad)?;
    Ok(AgentAddress::new(principal, name, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_uri::Instance;

    fn sample() -> Message {
        let mut payload = Briefcase::new();
        payload.append("RESULTS", "found 3 dead links");
        Message::deliver(
            "h1.cs.uit.no",
            Principal::new("alice@h1").unwrap(),
            Some(AgentAddress::new(
                "alice@h1",
                "webbot",
                Instance::from_u64(9),
            )),
            "tacoma://h2.cs.uit.no/ag_fs".parse().unwrap(),
            payload,
        )
    }

    #[test]
    fn roundtrip_deliver() {
        let m = sample();
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_transfers() {
        for spawned in [false, true] {
            let m = Message::transfer(
                "h1",
                Principal::new("p").unwrap(),
                "tacoma://h2/vm_script".parse().unwrap(),
                Briefcase::new(),
                spawned,
            );
            let back = Message::decode(&m.encode()).unwrap();
            assert_eq!(back.kind, MessageKind::AgentTransfer { spawned });
            assert_eq!(back.hop, None);
            assert_eq!(back.hop_parent, None);
        }
    }

    #[test]
    fn roundtrip_hop_keys() {
        let rooted = Message::transfer(
            "h1",
            Principal::new("p").unwrap(),
            "tacoma://h2/vm_script".parse().unwrap(),
            Briefcase::new(),
            false,
        )
        .with_hop("aabbccdd00112233", None);
        let back = Message::decode(&rooted.encode()).unwrap();
        assert_eq!(back, rooted);
        assert_eq!(back.hop.as_deref(), Some("aabbccdd00112233"));
        assert_eq!(back.hop_parent, None);

        let chained = Message::transfer(
            "h2",
            Principal::new("p").unwrap(),
            "tacoma://h3/vm_script".parse().unwrap(),
            Briefcase::new(),
            true,
        )
        .with_hop("ffee001122334455", Some("aabbccdd00112233".to_owned()));
        let back = Message::decode(&chained.encode()).unwrap();
        assert_eq!(back, chained);
        assert_eq!(back.hop_parent.as_deref(), Some("aabbccdd00112233"));
    }

    #[test]
    fn roundtrip_without_agent() {
        let m = Message::deliver(
            "h1",
            Principal::new("p").unwrap(),
            None,
            "ag_fs".parse().unwrap(),
            Briefcase::new(),
        );
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back.from_agent, None);
    }

    #[test]
    fn payload_folders_cannot_collide_with_framing() {
        let mut payload = Briefcase::new();
        payload.set_single("SYS:KIND", "spoofed");
        payload.set_single("SYS:TO", "spoofed");
        let m = Message::deliver(
            "h1",
            Principal::new("p").unwrap(),
            None,
            "ag_fs".parse().unwrap(),
            payload.clone(),
        );
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back.kind, MessageKind::Deliver);
        assert_eq!(back.briefcase, payload);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(matches!(
            Message::decode(b"junk"),
            Err(FirewallError::BadWire { .. })
        ));
        assert!(matches!(
            Message::decode(&[]),
            Err(FirewallError::BadWire { .. })
        ));
        // A valid briefcase that is not a message frame:
        let empty = Briefcase::new().encode();
        assert!(matches!(
            Message::decode(&empty),
            Err(FirewallError::BadWire { .. })
        ));
    }

    #[test]
    fn encoded_len_matches_encode() {
        let m = sample();
        assert_eq!(m.encoded_len(), m.encode().len());

        // Agent-less and transfer variants hit the other arithmetic arms.
        let plain = Message::deliver(
            "h1",
            Principal::new("p").unwrap(),
            None,
            "ag_fs".parse().unwrap(),
            Briefcase::new(),
        );
        assert_eq!(plain.encoded_len(), plain.encode().len());
        for spawned in [false, true] {
            let t = Message::transfer(
                "h1",
                Principal::new("p").unwrap(),
                "tacoma://h2/vm_script".parse().unwrap(),
                Briefcase::new(),
                spawned,
            );
            assert_eq!(t.encoded_len(), t.encode().len());

            // Hop keys participate in the arithmetic too.
            let keyed = t.with_hop("0123456789abcdef", Some("fedcba9876543210".to_owned()));
            assert_eq!(keyed.encoded_len(), keyed.encode().len());
        }
    }

    #[test]
    fn encode_serializes_the_payload_once_across_attempts() {
        let m = sample();
        assert!(!m.briefcase.has_cached_wire());
        let first = m.encode();
        // The first encode populated the payload cache; retries (ship
        // backoff, pending-queue redelivery) reuse it.
        assert!(m.briefcase.has_cached_wire());
        assert_eq!(m.encode(), first);

        // A pointer-bump clone (multi-destination fan-out) shares the cache.
        let clone = m.clone();
        assert!(clone.briefcase.has_cached_wire());
        assert_eq!(clone.encode(), first);
    }

    #[test]
    fn decode_bytes_matches_decode_and_shares_the_wire() {
        let m = sample();
        let wire = Bytes::from(m.encode());
        let copied = Message::decode(&wire).unwrap();
        let sliced = Message::decode_bytes(&wire).unwrap();
        assert_eq!(copied, sliced);

        // The nested payload's elements live inside the wire allocation.
        let base = wire.as_ptr() as usize;
        let end = base + wire.len();
        let e = sliced.briefcase.element("RESULTS", 0).unwrap();
        let p = e.bytes().as_ptr() as usize;
        assert!(p >= base && p + e.len() <= end);

        // Rejection parity on garbage.
        assert!(Message::decode_bytes(&Bytes::from_static(b"junk")).is_err());
    }
}
