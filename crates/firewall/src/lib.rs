//! The TAX **firewall**: the per-host reference monitor of §3.2.
//!
//! > "The firewall acts as a reference monitor and mediates all local
//! > communication between agents, and communication to remote firewalls
//! > and agents on remote machines."
//!
//! One firewall runs on every host. Its two most important tasks:
//!
//! 1. **Broker + authority** — it knows which agents run on which local
//!    virtual machine, authenticates arriving agents (signed agent core or
//!    trusted sender), and enforces access rights derived from the
//!    authenticated principal.
//! 2. **Dispatch + routing** — messages for absent agents are *queued with
//!    a timeout*; partial names are *matched* against the registry
//!    (§3.2's name/instance matching); messages for remote hosts are
//!    forwarded to the remote firewall; messages addressed to the firewall
//!    itself perform admin operations (list agents, run time, stop, kill).
//!
//! This crate is the *decision* layer: [`Firewall::route_outbound`] / [`Firewall::route_inbound`] return a
//! [`Decision`] describing what must happen; the kernel (`tacoma-core`)
//! owns the threads, VMs, and transport that carry decisions out. That
//! split keeps every policy rule synchronously testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod error;
mod firewall;
mod message;
mod pending;
mod registry;
mod stats;

pub use admission::{AdmissionError, AdmissionPolicy, AdmissionVerdict};
pub use error::FirewallError;
pub use firewall::{ControlAction, ControlKind, Decision, Firewall, FIREWALL_AGENT_NAME};
pub use message::{Message, MessageKind};
pub use pending::{PendingQueue, DEFAULT_QUEUE_TIMEOUT};
pub use registry::{AgentStatus, Registration, Registry};
pub use stats::FirewallStats;
