use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since the simulation epoch.
///
/// ```
/// use std::time::Duration;
/// use tacoma_simnet::SimTime;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from nanoseconds since the epoch.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed duration since the epoch.
    pub fn since_epoch(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Saturating duration since an earlier time (zero if `earlier` is
    /// actually later).
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(rhs.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.since_epoch();
        if d.as_secs() > 0 {
            write!(f, "{:.3}s", d.as_secs_f64())
        } else if d.as_millis() > 0 {
            write!(f, "{:.3}ms", d.as_secs_f64() * 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock; every
/// [`crate::Network`] advances its clock as transfers complete, which
/// models the serial execution of one agent's work — the execution shape
/// of every experiment in the paper.
#[derive(Debug, Clone, Default)]
pub struct SimClock(Arc<AtomicU64>);

impl SimClock {
    /// A new clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A new, independent clock starting at `t`. Used by the parallel
    /// scheduler to fork a per-task local clock from the global time at
    /// tick start, so concurrent tasks each accumulate their own virtual
    /// makespan instead of serializing on the shared clock.
    pub fn starting_at(t: SimTime) -> Self {
        SimClock(Arc::new(AtomicU64::new(t.0)))
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.0.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> SimTime {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        SimTime(self.0.fetch_add(nanos, Ordering::SeqCst) + nanos)
    }

    /// Moves the clock forward to `t` if it is currently behind it; the
    /// clock never moves backwards.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.0.fetch_max(t.0, Ordering::SeqCst);
        self.now()
    }

    /// Resets the clock to the epoch. Intended for reusing a topology
    /// across experiment repetitions.
    pub fn reset(&self) {
        self.0.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_handles_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        assert_eq!(b.now(), SimTime::ZERO + Duration::from_secs(1));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(10));
        c.advance_to(SimTime::from_nanos(5));
        assert_eq!(c.now().since_epoch(), Duration::from_secs(10));
        c.advance_to(SimTime::ZERO + Duration::from_secs(20));
        assert_eq!(c.now().since_epoch(), Duration::from_secs(20));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early), Duration::from_nanos(20));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!((SimTime::ZERO + Duration::from_nanos(7)).to_string(), "7ns");
        assert_eq!(
            (SimTime::ZERO + Duration::from_millis(7)).to_string(),
            "7.000ms"
        );
        assert_eq!(
            (SimTime::ZERO + Duration::from_secs(7)).to_string(),
            "7.000s"
        );
    }

    #[test]
    fn reset_returns_to_epoch() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(3));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
