use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The characteristics of a network link: one-way latency, bandwidth, and a
/// message-loss probability.
///
/// The transfer cost model is the standard first-order one:
/// `cost(bytes) = latency + bytes * 8 / bandwidth`.
///
/// ```
/// use tacoma_simnet::LinkSpec;
///
/// let lan = LinkSpec::lan_100mbit();
/// // 3 MB over 100 Mbit/s is 240 ms of serialization delay.
/// assert_eq!(lan.transfer_time(3_000_000).as_millis(), 240);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation + protocol latency per message.
    pub latency: Duration,
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1)` that a message is lost in transit.
    pub loss: f64,
}

impl LinkSpec {
    /// A link with the given latency and bandwidth and no loss.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(latency: Duration, bandwidth_bps: u64) -> Self {
        assert!(bandwidth_bps > 0, "a link must have nonzero bandwidth");
        LinkSpec {
            latency,
            bandwidth_bps,
            loss: 0.0,
        }
    }

    /// Returns this link with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// The paper's test environment: a 100 Mbit switched department LAN
    /// (§5), with sub-millisecond latency.
    pub fn lan_100mbit() -> Self {
        LinkSpec::new(Duration::from_micros(150), 100_000_000)
    }

    /// A 10 Mbit shared LAN — the older department network generation.
    pub fn lan_10mbit() -> Self {
        LinkSpec::new(Duration::from_micros(800), 10_000_000)
    }

    /// A wide-area link, parameterized — the paper's conjecture case ("if
    /// the client and server is separated by a wide area network …").
    pub fn wan(bandwidth_bps: u64, latency: Duration) -> Self {
        LinkSpec::new(latency, bandwidth_bps)
    }

    /// A 56 kbit dial-up modem hop — the slowest tier of the paper-era
    /// internet, and the far end of the "slower links widen the remote
    /// advantage" conjecture.
    pub fn modem_56k() -> Self {
        LinkSpec::new(Duration::from_millis(120), 56_000)
    }

    /// The loopback pseudo-link used when source and destination are the
    /// same host: memory-bus bandwidth, negligible latency.
    pub fn loopback() -> Self {
        LinkSpec::new(Duration::from_micros(5), 8_000_000_000)
    }

    /// Time to move `bytes` across this link: latency plus serialization
    /// delay at the link's bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let bits = bytes.saturating_mul(8);
        let secs = bits as f64 / self.bandwidth_bps as f64;
        self.latency + Duration::from_secs_f64(secs)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan_100mbit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let link = LinkSpec::new(Duration::from_millis(10), 8_000_000); // 1 MB/s
        assert_eq!(link.transfer_time(0), Duration::from_millis(10));
        assert_eq!(link.transfer_time(1_000_000), Duration::from_millis(1010));
    }

    #[test]
    fn paper_lan_preset_moves_3mb_in_about_240ms() {
        let t = LinkSpec::lan_100mbit().transfer_time(3_000_000);
        assert!(
            t >= Duration::from_millis(240) && t < Duration::from_millis(242),
            "{t:?}"
        );
    }

    #[test]
    fn loopback_is_orders_of_magnitude_faster() {
        let lan = LinkSpec::lan_100mbit().transfer_time(3_000_000);
        let local = LinkSpec::loopback().transfer_time(3_000_000);
        assert!(lan.as_nanos() > 50 * local.as_nanos());
    }

    #[test]
    fn wan_slower_than_lan() {
        let wan = LinkSpec::wan(2_000_000, Duration::from_millis(50));
        assert!(wan.transfer_time(1_000_000) > LinkSpec::lan_100mbit().transfer_time(1_000_000));
    }

    #[test]
    #[should_panic(expected = "nonzero bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(Duration::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "loss must be")]
    fn bad_loss_rejected() {
        let _ = LinkSpec::lan_100mbit().with_loss(1.5);
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let link = LinkSpec::lan_10mbit();
        let mut prev = Duration::ZERO;
        for bytes in [0u64, 1, 100, 10_000, 1_000_000, 100_000_000] {
            let t = link.transfer_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }
}
