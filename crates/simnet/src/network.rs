use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostId, NetError, SimClock, SimTime, Topology, TrafficStats};

/// The outcome of a successful simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// Virtual time the transfer started.
    pub departed: SimTime,
    /// Virtual time the last byte arrived.
    pub arrived: SimTime,
    /// `arrived - departed`.
    pub cost: Duration,
}

/// A network: a [`Topology`] plus a virtual clock, deterministic loss
/// randomness, and traffic accounting.
///
/// Transfers advance the shared clock — modelling the serial execution of
/// one logical activity, which is the execution shape of every §5
/// experiment (one robot scanning one site).
#[derive(Debug)]
pub struct Network {
    topology: Mutex<Topology>,
    clock: SimClock,
    stats: Mutex<TrafficStats>,
    rng: Mutex<StdRng>,
}

impl Network {
    /// Creates a network over the topology; `seed` fixes loss randomness.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Network {
            topology: Mutex::new(topology),
            clock: SimClock::new(),
            stats: Mutex::new(TrafficStats::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Runs `f` with mutable access to the topology (fault injection,
    /// adding hosts mid-run).
    pub fn with_topology<R>(&self, f: impl FnOnce(&mut Topology) -> R) -> R {
        f(&mut self.topology.lock())
    }

    /// Whether the topology knows this host.
    pub fn contains(&self, host: &HostId) -> bool {
        self.topology.lock().contains(host)
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.lock().clone()
    }

    /// Zeroes the traffic counters (clock is left running).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TrafficStats::new();
    }

    /// The transfer cost `bytes` would incur from `from` to `to` right now,
    /// without performing the transfer.
    ///
    /// # Errors
    ///
    /// Routing errors from [`Topology::route`].
    pub fn probe(&self, from: &HostId, to: &HostId, bytes: u64) -> Result<Duration, NetError> {
        Ok(self.topology.lock().route(from, to)?.transfer_time(bytes))
    }

    /// Moves `bytes` from `from` to `to`: advances the virtual clock by the
    /// link's transfer time and records the traffic.
    ///
    /// # Errors
    ///
    /// Routing errors from [`Topology::route`], or
    /// [`NetError::MessageLost`] if the link's loss probability fires (the
    /// clock still advances by the latency spent discovering the loss).
    pub fn transfer(
        &self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
    ) -> Result<TransferOutcome, NetError> {
        self.transfer_with(from, to, bytes, &self.clock, &mut self.rng.lock())
    }

    /// [`Network::transfer`] against a caller-supplied clock and loss RNG.
    ///
    /// The parallel scheduler charges each task's transfers to a per-task
    /// clock forked at tick start and a per-task seeded RNG, so transfer
    /// costs and loss draws are independent of cross-host interleaving.
    /// Routing and traffic accounting still go through the shared
    /// topology and stats (counter increments commute).
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::transfer`].
    pub fn transfer_with(
        &self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
        clock: &SimClock,
        rng: &mut StdRng,
    ) -> Result<TransferOutcome, NetError> {
        let link = self.topology.lock().route(from, to)?;
        let departed = clock.now();

        if link.loss > 0.0 && rng.random::<f64>() < link.loss {
            clock.advance(link.latency);
            self.stats.lock().record_loss(from, to);
            return Err(NetError::MessageLost {
                from: from.clone(),
                to: to.clone(),
            });
        }

        let cost = link.transfer_time(bytes);
        let arrived = clock.advance(cost);
        self.stats.lock().record_delivery(from, to, bytes, cost);
        Ok(TransferOutcome {
            departed,
            arrived,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkSpec;

    fn h(name: &str) -> HostId {
        HostId::new(name).unwrap()
    }

    fn net() -> Network {
        let mut t = Topology::new(LinkSpec::lan_100mbit());
        t.add_hosts([h("a"), h("b")]);
        Network::new(t, 42)
    }

    #[test]
    fn transfer_advances_clock_and_counts_bytes() {
        let net = net();
        let out = net.transfer(&h("a"), &h("b"), 1_000_000).unwrap();
        assert_eq!(out.departed, SimTime::ZERO);
        assert_eq!(net.clock().now(), out.arrived);
        assert_eq!(net.stats().pair(&h("a"), &h("b")).bytes, 1_000_000);
        // 1 MB over 100 Mbit ≈ 80 ms.
        assert!(out.cost >= Duration::from_millis(80));
    }

    #[test]
    fn probe_does_not_advance_or_count() {
        let net = net();
        let cost = net.probe(&h("a"), &h("b"), 1_000_000).unwrap();
        assert!(cost > Duration::ZERO);
        assert_eq!(net.clock().now(), SimTime::ZERO);
        assert_eq!(net.stats().total_messages(), 0);
    }

    #[test]
    fn sequential_transfers_accumulate_time() {
        let net = net();
        let first = net.transfer(&h("a"), &h("b"), 500_000).unwrap();
        let second = net.transfer(&h("b"), &h("a"), 500_000).unwrap();
        assert_eq!(second.departed, first.arrived);
        assert_eq!(
            second.arrived.saturating_since(SimTime::ZERO),
            first.cost + second.cost
        );
    }

    #[test]
    fn lossy_link_is_deterministic_under_seed() {
        let run = |seed| {
            let mut t = Topology::new(LinkSpec::lan_100mbit().with_loss(0.5));
            t.add_hosts([h("a"), h("b")]);
            let net = Network::new(t, seed);
            (0..32)
                .map(|_| net.transfer(&h("a"), &h("b"), 10).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok) && outcomes.iter().any(|ok| !*ok));
    }

    #[test]
    fn crash_mid_run_blocks_transfer() {
        let net = net();
        net.transfer(&h("a"), &h("b"), 1).unwrap();
        net.with_topology(|t| {
            t.crash_host(&h("b"));
        });
        assert!(matches!(
            net.transfer(&h("a"), &h("b"), 1),
            Err(NetError::HostDown { .. })
        ));
    }

    #[test]
    fn loss_records_loss_stat() {
        let mut t = Topology::new(LinkSpec::lan_100mbit().with_loss(0.999_999));
        t.add_hosts([h("a"), h("b")]);
        let net = Network::new(t, 1);
        assert!(matches!(
            net.transfer(&h("a"), &h("b"), 1),
            Err(NetError::MessageLost { .. })
        ));
        assert_eq!(net.stats().total_lost(), 1);
    }
}
