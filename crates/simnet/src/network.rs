use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HostId, NetError, SimClock, SimTime, Topology, TrafficStats};

/// The outcome of a successful simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// Virtual time the transfer started.
    pub departed: SimTime,
    /// Virtual time the last byte arrived.
    pub arrived: SimTime,
    /// `arrived - departed`.
    pub cost: Duration,
}

/// A network: a [`Topology`] plus a virtual clock, deterministic loss
/// randomness, and traffic accounting.
///
/// Transfers advance the shared clock — modelling the serial execution of
/// one logical activity, which is the execution shape of every §5
/// experiment (one robot scanning one site).
#[derive(Debug)]
pub struct Network {
    topology: Mutex<Topology>,
    clock: SimClock,
    stats: Mutex<TrafficStats>,
    rng: Mutex<StdRng>,
}

impl Network {
    /// Creates a network over the topology; `seed` fixes loss randomness.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Network {
            topology: Mutex::new(topology),
            clock: SimClock::new(),
            stats: Mutex::new(TrafficStats::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Runs `f` with mutable access to the topology (fault injection,
    /// adding hosts mid-run).
    pub fn with_topology<R>(&self, f: impl FnOnce(&mut Topology) -> R) -> R {
        f(&mut self.topology.lock())
    }

    /// Sets the one-way latency of the `a`↔`b` link at runtime.
    ///
    /// Part of the scenario event API: a scenario event track mutates
    /// links between scheduler ticks to model degrading routes.
    pub fn set_latency(&self, a: &HostId, b: &HostId, latency: Duration) {
        self.topology.lock().set_latency(a, b, latency);
    }

    /// Sets the loss probability of the `a`↔`b` link at runtime.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0` (same contract as
    /// [`crate::LinkSpec::with_loss`]).
    pub fn set_loss(&self, a: &HostId, b: &HostId, loss: f64) {
        self.topology.lock().set_loss(a, b, loss);
    }

    /// Severs the `a`↔`b` link (both directions) at runtime.
    pub fn partition(&self, a: &HostId, b: &HostId) {
        self.topology.lock().partition(a, b);
    }

    /// Heals a severed `a`↔`b` link at runtime.
    pub fn heal(&self, a: &HostId, b: &HostId) {
        self.topology.lock().heal(a, b);
    }

    /// Marks a host as crashed at runtime (scheduled churn: host down).
    pub fn crash_host(&self, host: &HostId) {
        self.topology.lock().crash_host(host);
    }

    /// Restores a crashed host at runtime (scheduled churn: host up).
    pub fn restore_host(&self, host: &HostId) {
        self.topology.lock().restore_host(host);
    }

    /// Whether the topology knows this host.
    pub fn contains(&self, host: &HostId) -> bool {
        self.topology.lock().contains(host)
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.lock().clone()
    }

    /// Zeroes the traffic counters (clock is left running).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TrafficStats::new();
    }

    /// The transfer cost `bytes` would incur from `from` to `to` right now,
    /// without performing the transfer.
    ///
    /// # Errors
    ///
    /// Routing errors from [`Topology::route`].
    pub fn probe(&self, from: &HostId, to: &HostId, bytes: u64) -> Result<Duration, NetError> {
        Ok(self.topology.lock().route(from, to)?.transfer_time(bytes))
    }

    /// Moves `bytes` from `from` to `to`: advances the virtual clock by the
    /// link's transfer time and records the traffic.
    ///
    /// # Errors
    ///
    /// Routing errors from [`Topology::route`], or
    /// [`NetError::MessageLost`] if the link's loss probability fires (the
    /// clock still advances by the latency spent discovering the loss).
    pub fn transfer(
        &self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
    ) -> Result<TransferOutcome, NetError> {
        self.transfer_with(from, to, bytes, &self.clock, &mut self.rng.lock())
    }

    /// [`Network::transfer`] against a caller-supplied clock and loss RNG.
    ///
    /// The parallel scheduler charges each task's transfers to a per-task
    /// clock forked at tick start and a per-task seeded RNG, so transfer
    /// costs and loss draws are independent of cross-host interleaving.
    /// Routing and traffic accounting still go through the shared
    /// topology and stats (counter increments commute).
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::transfer`].
    pub fn transfer_with(
        &self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
        clock: &SimClock,
        rng: &mut StdRng,
    ) -> Result<TransferOutcome, NetError> {
        let link = match self.topology.lock().route(from, to) {
            Ok(link) => link,
            Err(err) => {
                // Churn drops (crashed host, severed link) are counted
                // apart from random loss so scenarios can tell them apart.
                if matches!(
                    err,
                    NetError::HostDown { .. } | NetError::Partitioned { .. }
                ) {
                    self.stats.lock().record_unreachable(from, to);
                }
                return Err(err);
            }
        };
        let departed = clock.now();

        if link.loss > 0.0 && rng.random::<f64>() < link.loss {
            clock.advance(link.latency);
            self.stats.lock().record_loss(from, to);
            return Err(NetError::MessageLost {
                from: from.clone(),
                to: to.clone(),
            });
        }

        let cost = link.transfer_time(bytes);
        let arrived = clock.advance(cost);
        self.stats.lock().record_delivery(from, to, bytes, cost);
        Ok(TransferOutcome {
            departed,
            arrived,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkSpec;

    fn h(name: &str) -> HostId {
        HostId::new(name).unwrap()
    }

    fn net() -> Network {
        let mut t = Topology::new(LinkSpec::lan_100mbit());
        t.add_hosts([h("a"), h("b")]);
        Network::new(t, 42)
    }

    #[test]
    fn transfer_advances_clock_and_counts_bytes() {
        let net = net();
        let out = net.transfer(&h("a"), &h("b"), 1_000_000).unwrap();
        assert_eq!(out.departed, SimTime::ZERO);
        assert_eq!(net.clock().now(), out.arrived);
        assert_eq!(net.stats().pair(&h("a"), &h("b")).bytes, 1_000_000);
        // 1 MB over 100 Mbit ≈ 80 ms.
        assert!(out.cost >= Duration::from_millis(80));
    }

    #[test]
    fn probe_does_not_advance_or_count() {
        let net = net();
        let cost = net.probe(&h("a"), &h("b"), 1_000_000).unwrap();
        assert!(cost > Duration::ZERO);
        assert_eq!(net.clock().now(), SimTime::ZERO);
        assert_eq!(net.stats().total_messages(), 0);
    }

    #[test]
    fn sequential_transfers_accumulate_time() {
        let net = net();
        let first = net.transfer(&h("a"), &h("b"), 500_000).unwrap();
        let second = net.transfer(&h("b"), &h("a"), 500_000).unwrap();
        assert_eq!(second.departed, first.arrived);
        assert_eq!(
            second.arrived.saturating_since(SimTime::ZERO),
            first.cost + second.cost
        );
    }

    #[test]
    fn lossy_link_is_deterministic_under_seed() {
        let run = |seed| {
            let mut t = Topology::new(LinkSpec::lan_100mbit().with_loss(0.5));
            t.add_hosts([h("a"), h("b")]);
            let net = Network::new(t, seed);
            (0..32)
                .map(|_| net.transfer(&h("a"), &h("b"), 10).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok) && outcomes.iter().any(|ok| !*ok));
    }

    #[test]
    fn crash_mid_run_blocks_transfer() {
        let net = net();
        net.transfer(&h("a"), &h("b"), 1).unwrap();
        net.with_topology(|t| {
            t.crash_host(&h("b"));
        });
        assert!(matches!(
            net.transfer(&h("a"), &h("b"), 1),
            Err(NetError::HostDown { .. })
        ));
    }

    #[test]
    fn churn_drops_counted_as_unreachable_not_loss() {
        let net = net();
        net.crash_host(&h("b"));
        assert!(net.transfer(&h("a"), &h("b"), 1).is_err());
        net.restore_host(&h("b"));
        net.partition(&h("a"), &h("b"));
        assert!(net.transfer(&h("a"), &h("b"), 1).is_err());
        net.heal(&h("a"), &h("b"));
        assert!(net.transfer(&h("a"), &h("b"), 1).is_ok());
        let stats = net.stats();
        assert_eq!(stats.total_unreachable(), 2);
        assert_eq!(stats.total_lost(), 0);
        // Route refusals must not advance the virtual clock.
        assert_eq!(stats.total_messages(), 1);
    }

    #[test]
    fn runtime_link_mutation_changes_costs() {
        let net = net();
        let before = net.probe(&h("a"), &h("b"), 0).unwrap();
        net.set_latency(&h("a"), &h("b"), Duration::from_millis(80));
        let after = net.probe(&h("a"), &h("b"), 0).unwrap();
        assert!(after > before);
        assert_eq!(after, Duration::from_millis(80));

        net.set_loss(&h("a"), &h("b"), 0.999_999);
        assert!(matches!(
            net.transfer(&h("a"), &h("b"), 1),
            Err(NetError::MessageLost { .. })
        ));
        assert_eq!(net.stats().total_lost(), 1);
    }

    #[test]
    fn loss_records_loss_stat() {
        let mut t = Topology::new(LinkSpec::lan_100mbit().with_loss(0.999_999));
        t.add_hosts([h("a"), h("b")]);
        let net = Network::new(t, 1);
        assert!(matches!(
            net.transfer(&h("a"), &h("b"), 1),
            Err(NetError::MessageLost { .. })
        ));
        assert_eq!(net.stats().total_lost(), 1);
    }
}
