use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::HostId;

/// Traffic counters for one (directed) host pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStats {
    /// Messages successfully delivered.
    pub messages: u64,
    /// Payload bytes successfully delivered.
    pub bytes: u64,
    /// Messages lost to link loss.
    pub lost: u64,
    /// Messages refused because the destination was down or partitioned.
    ///
    /// Kept separate from `lost` so scenario runs can tell churn drops
    /// (deterministic topology state) from random link loss.
    pub unreachable: u64,
}

/// Aggregated traffic accounting across the whole network. This is the
/// "bandwidth preserved for other uses" evidence in the paper's argument:
/// experiments compare total bytes moved by the mobile and stationary
/// designs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    pairs: BTreeMap<(HostId, HostId), PairStats>,
    busy: Duration,
}

impl TrafficStats {
    /// A zeroed accounting.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    pub(crate) fn record_delivery(
        &mut self,
        from: &HostId,
        to: &HostId,
        bytes: u64,
        cost: Duration,
    ) {
        let entry = self.pairs.entry((from.clone(), to.clone())).or_default();
        entry.messages += 1;
        entry.bytes += bytes;
        self.busy += cost;
    }

    pub(crate) fn record_loss(&mut self, from: &HostId, to: &HostId) {
        self.pairs
            .entry((from.clone(), to.clone()))
            .or_default()
            .lost += 1;
    }

    pub(crate) fn record_unreachable(&mut self, from: &HostId, to: &HostId) {
        self.pairs
            .entry((from.clone(), to.clone()))
            .or_default()
            .unreachable += 1;
    }

    /// Counters for one directed pair, zeroed if the pair never talked.
    pub fn pair(&self, from: &HostId, to: &HostId) -> PairStats {
        self.pairs
            .get(&(from.clone(), to.clone()))
            .copied()
            .unwrap_or_default()
    }

    /// Total bytes delivered network-wide, excluding loopback traffic.
    ///
    /// Loopback is excluded because the paper's bandwidth argument concerns
    /// the *network*; data an agent reads at its own host costs no
    /// bandwidth.
    pub fn network_bytes(&self) -> u64 {
        self.pairs
            .iter()
            .filter(|((from, to), _)| from != to)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Total bytes delivered including loopback.
    pub fn total_bytes(&self) -> u64 {
        self.pairs.values().map(|s| s.bytes).sum()
    }

    /// Total messages delivered.
    pub fn total_messages(&self) -> u64 {
        self.pairs.values().map(|s| s.messages).sum()
    }

    /// Total messages lost.
    pub fn total_lost(&self) -> u64 {
        self.pairs.values().map(|s| s.lost).sum()
    }

    /// Total messages refused because the destination was down or the pair
    /// was partitioned — churn drops, as opposed to [`total_lost`] random
    /// loss drops.
    ///
    /// [`total_lost`]: TrafficStats::total_lost
    pub fn total_unreachable(&self) -> u64 {
        self.pairs.values().map(|s| s.unreachable).sum()
    }

    /// Accumulated virtual transfer time across all deliveries.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Iterates over all directed pairs with their counters.
    pub fn iter(&self) -> impl Iterator<Item = (&(HostId, HostId), &PairStats)> {
        self.pairs.iter()
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "traffic: {} msgs, {} bytes on network ({} lost, {} unreachable)",
            self.total_messages(),
            self.network_bytes(),
            self.total_lost(),
            self.total_unreachable()
        )?;
        for ((from, to), s) in &self.pairs {
            writeln!(
                f,
                "  {from} -> {to}: {} msgs, {} bytes, {} lost, {} unreachable",
                s.messages, s.bytes, s.lost, s.unreachable
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(name: &str) -> HostId {
        HostId::new(name).unwrap()
    }

    #[test]
    fn deliveries_accumulate_per_pair() {
        let mut s = TrafficStats::new();
        s.record_delivery(&h("a"), &h("b"), 100, Duration::from_millis(1));
        s.record_delivery(&h("a"), &h("b"), 50, Duration::from_millis(1));
        s.record_delivery(&h("b"), &h("a"), 10, Duration::from_millis(1));
        assert_eq!(s.pair(&h("a"), &h("b")).bytes, 150);
        assert_eq!(s.pair(&h("a"), &h("b")).messages, 2);
        assert_eq!(s.pair(&h("b"), &h("a")).bytes, 10);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.busy_time(), Duration::from_millis(3));
    }

    #[test]
    fn loopback_excluded_from_network_bytes() {
        let mut s = TrafficStats::new();
        s.record_delivery(&h("a"), &h("a"), 1000, Duration::ZERO);
        s.record_delivery(&h("a"), &h("b"), 7, Duration::ZERO);
        assert_eq!(s.network_bytes(), 7);
        assert_eq!(s.total_bytes(), 1007);
    }

    #[test]
    fn losses_counted_separately() {
        let mut s = TrafficStats::new();
        s.record_loss(&h("a"), &h("b"));
        s.record_loss(&h("a"), &h("b"));
        assert_eq!(s.total_lost(), 2);
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn unreachable_counted_apart_from_loss() {
        let mut s = TrafficStats::new();
        s.record_loss(&h("a"), &h("b"));
        s.record_unreachable(&h("a"), &h("b"));
        s.record_unreachable(&h("a"), &h("c"));
        assert_eq!(s.total_lost(), 1);
        assert_eq!(s.total_unreachable(), 2);
        assert_eq!(s.pair(&h("a"), &h("b")).unreachable, 1);
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn unknown_pair_reads_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.pair(&h("x"), &h("y")), PairStats::default());
    }
}
