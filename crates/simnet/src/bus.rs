use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::{HostId, NetError, Network, SimTime};

/// A message in flight between hosts, stamped with virtual-time metadata.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Opaque payload (typically an encoded briefcase). A shared buffer,
    /// so the receive path can decode briefcase elements as zero-copy
    /// slices of this allocation.
    pub payload: Bytes,
    /// Virtual time the message left `from`.
    pub departed: SimTime,
    /// Virtual time the last byte reached `to`.
    pub arrived: SimTime,
    /// Transfer cost charged on the link.
    pub cost: Duration,
}

/// A real delivery fabric over the simulated network: each registered host
/// gets a crossbeam channel; sends are charged to the [`Network`]'s virtual
/// clock and traffic counters, then delivered immediately in wall time.
///
/// This is the layer the per-host firewalls plug into — they exchange
/// encoded briefcases without knowing they share a process.
#[derive(Debug, Clone)]
pub struct MessageBus {
    network: Arc<Network>,
    endpoints: Arc<Mutex<HashMap<HostId, Sender<Envelope>>>>,
}

impl MessageBus {
    /// A bus over the given network.
    pub fn new(network: Arc<Network>) -> Self {
        MessageBus {
            network,
            endpoints: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying network (for fault injection and stats).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Registers `host` as a deliverable endpoint, returning the receiving
    /// side of its mailbox. Re-registering replaces the previous mailbox.
    pub fn register(&self, host: HostId) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.endpoints.lock().insert(host, tx);
        rx
    }

    /// Removes a host's endpoint; subsequent sends to it fail with
    /// [`NetError::NoEndpoint`].
    pub fn unregister(&self, host: &HostId) {
        self.endpoints.lock().remove(host);
    }

    /// Sends `payload` from `from` to `to`, charging the transfer to the
    /// virtual network first.
    ///
    /// # Errors
    ///
    /// Any routing or loss error from [`Network::transfer`], or
    /// [`NetError::NoEndpoint`] / [`NetError::EndpointClosed`] if the
    /// destination has no live mailbox.
    pub fn send(
        &self,
        from: &HostId,
        to: &HostId,
        payload: impl Into<Bytes>,
    ) -> Result<(), NetError> {
        // Look up the endpoint before charging the network so a missing
        // destination doesn't consume virtual time.
        let tx = self
            .endpoints
            .lock()
            .get(to)
            .cloned()
            .ok_or_else(|| NetError::NoEndpoint { host: to.clone() })?;

        let payload = payload.into();
        let outcome = self.network.transfer(from, to, payload.len() as u64)?;
        let envelope = Envelope {
            from: from.clone(),
            to: to.clone(),
            payload,
            departed: outcome.departed,
            arrived: outcome.arrived,
            cost: outcome.cost,
        };
        tx.send(envelope)
            .map_err(|_| NetError::EndpointClosed { host: to.clone() })
    }

    /// Whether `host` currently has a registered mailbox.
    pub fn has_endpoint(&self, host: &HostId) -> bool {
        self.endpoints.lock().contains_key(host)
    }

    /// Delivers a pre-charged envelope to its destination's mailbox
    /// without touching the network's clock or counters.
    ///
    /// This is the flush half of the parallel scheduler's deferred-send
    /// protocol: transfers are charged to per-task clocks during the tick
    /// (via [`Network::transfer_with`]), and the resulting envelopes are
    /// handed over in deterministic order at the tick barrier.
    ///
    /// # Errors
    ///
    /// [`NetError::NoEndpoint`] / [`NetError::EndpointClosed`] if the
    /// destination mailbox is gone.
    pub fn deliver(&self, envelope: Envelope) -> Result<(), NetError> {
        let to = envelope.to.clone();
        let tx = self
            .endpoints
            .lock()
            .get(&to)
            .cloned()
            .ok_or_else(|| NetError::NoEndpoint { host: to.clone() })?;
        tx.send(envelope)
            .map_err(|_| NetError::EndpointClosed { host: to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, Topology};

    fn h(name: &str) -> HostId {
        HostId::new(name).unwrap()
    }

    fn bus() -> MessageBus {
        let mut t = Topology::new(LinkSpec::lan_100mbit());
        t.add_hosts([h("a"), h("b")]);
        MessageBus::new(Arc::new(Network::new(t, 3)))
    }

    #[test]
    fn send_delivers_with_virtual_stamps() {
        let bus = bus();
        let rx = bus.register(h("b"));
        bus.register(h("a"));
        bus.send(&h("a"), &h("b"), vec![1, 2, 3]).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(env.payload, vec![1, 2, 3]);
        assert_eq!(env.from, h("a"));
        assert!(env.arrived > env.departed);
    }

    #[test]
    fn missing_endpoint_fails_without_charging() {
        let bus = bus();
        let err = bus.send(&h("a"), &h("b"), vec![0; 100]).unwrap_err();
        assert!(matches!(err, NetError::NoEndpoint { .. }));
        assert_eq!(bus.network().stats().total_messages(), 0);
        assert_eq!(bus.network().clock().now(), SimTime::ZERO);
    }

    #[test]
    fn unregister_disconnects() {
        let bus = bus();
        let _rx = bus.register(h("b"));
        bus.unregister(&h("b"));
        assert!(matches!(
            bus.send(&h("a"), &h("b"), vec![]),
            Err(NetError::NoEndpoint { .. })
        ));
    }

    #[test]
    fn dropped_receiver_reports_closed() {
        let bus = bus();
        let rx = bus.register(h("b"));
        drop(rx);
        assert!(matches!(
            bus.send(&h("a"), &h("b"), vec![]),
            Err(NetError::EndpointClosed { .. })
        ));
    }

    #[test]
    fn traffic_is_counted_per_payload_byte() {
        let bus = bus();
        let _rx = bus.register(h("b"));
        bus.send(&h("a"), &h("b"), vec![0; 1234]).unwrap();
        assert_eq!(bus.network().stats().pair(&h("a"), &h("b")).bytes, 1234);
    }

    #[test]
    fn clone_shares_endpoints() {
        let bus = bus();
        let rx = bus.register(h("b"));
        let bus2 = bus.clone();
        bus2.send(&h("a"), &h("b"), vec![9]).unwrap();
        assert_eq!(rx.try_recv().unwrap().payload, vec![9]);
    }
}
