//! Virtual-time network simulation for the TAX reproduction.
//!
//! The paper's experiment (§5) compares a Webbot scan executed *at* the web
//! server against the same scan pulling pages across a 100 Mbit LAN, and
//! conjectures how the comparison shifts on a WAN. Reproducing that needs a
//! network whose *costs* are realistic and controllable, not a real socket
//! stack. This crate provides:
//!
//! * [`SimTime`] / [`SimClock`] — a virtual clock in nanoseconds; transfers
//!   advance virtual time, so experiments are deterministic and complete in
//!   microseconds of wall time regardless of the simulated volume.
//! * [`LinkSpec`] — latency + bandwidth + loss, with presets for the
//!   paper's environments ([`LinkSpec::lan_100mbit`], [`LinkSpec::wan`], …).
//! * [`Topology`] — named hosts, per-pair links, host crashes, partitions.
//! * [`Network`] — cost accounting: every transfer advances the clock and
//!   is tallied in [`TrafficStats`] (bytes and messages per host pair).
//! * [`MessageBus`] — a real (crossbeam-channel) delivery fabric stamped
//!   with virtual-time metadata, used by the firewall layer.
//!
//! # Example
//!
//! ```
//! use tacoma_simnet::{HostId, LinkSpec, Network, Topology};
//!
//! let mut topo = Topology::new(LinkSpec::lan_100mbit());
//! topo.add_host(HostId::new("client").unwrap());
//! topo.add_host(HostId::new("server").unwrap());
//!
//! let net = Network::new(topo, 7);
//! let out = net
//!     .transfer(&HostId::new("client").unwrap(), &HostId::new("server").unwrap(), 3_000_000)
//!     .unwrap();
//! // 3 MB over 100 Mbit/s ≈ 240 ms + latency.
//! assert!(out.cost.as_millis() >= 240);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod error;
mod link;
mod network;
mod stats;
mod time;
mod topology;

pub use bus::{Envelope, MessageBus};
pub use error::NetError;
pub use link::LinkSpec;
pub use network::{Network, TransferOutcome};
pub use stats::{PairStats, TrafficStats};
pub use time::{SimClock, SimTime};
pub use topology::{HostId, Topology};
