use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::{LinkSpec, NetError};

/// A simulated host's identity — a lowercase hostname such as the paper's
/// `cl2.cs.uit.no`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(String);

impl HostId {
    /// Validates and creates a host id.
    ///
    /// # Errors
    ///
    /// [`NetError::BadHostName`] unless the name is non-empty lowercase
    /// `[a-z0-9.-]`.
    pub fn new(name: impl Into<String>) -> Result<Self, NetError> {
        let name = name.into();
        let valid = !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'-');
        if valid {
            Ok(HostId(name))
        } else {
            Err(NetError::BadHostName { name })
        }
    }

    /// The host name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for HostId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for HostId {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HostId::new(s)
    }
}

/// An unordered host pair, the key for link specs and partitions.
fn pair(a: &HostId, b: &HostId) -> (HostId, HostId) {
    if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    }
}

/// The network's shape: which hosts exist, what links connect them, and
/// which hosts or links are currently failed.
///
/// Links are symmetric. Pairs without an explicit link use the topology's
/// default; a host talking to itself uses [`LinkSpec::loopback`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    default_link: LinkSpec,
    hosts: BTreeSet<HostId>,
    links: BTreeMap<(HostId, HostId), LinkSpec>,
    down_hosts: BTreeSet<HostId>,
    partitions: BTreeSet<(HostId, HostId)>,
}

impl Topology {
    /// An empty topology whose unlisted host pairs use `default_link`.
    pub fn new(default_link: LinkSpec) -> Self {
        Topology {
            default_link,
            hosts: BTreeSet::new(),
            links: BTreeMap::new(),
            down_hosts: BTreeSet::new(),
            partitions: BTreeSet::new(),
        }
    }

    /// Adds a host (idempotent).
    pub fn add_host(&mut self, host: HostId) -> &mut Self {
        self.hosts.insert(host);
        self
    }

    /// Adds several hosts at once.
    pub fn add_hosts<I: IntoIterator<Item = HostId>>(&mut self, hosts: I) -> &mut Self {
        self.hosts.extend(hosts);
        self
    }

    /// Whether the host is known to the topology.
    pub fn contains(&self, host: &HostId) -> bool {
        self.hosts.contains(host)
    }

    /// All hosts in name order.
    pub fn hosts(&self) -> impl Iterator<Item = &HostId> {
        self.hosts.iter()
    }

    /// Installs a specific link between two hosts (symmetric).
    pub fn set_link(&mut self, a: &HostId, b: &HostId, link: LinkSpec) -> &mut Self {
        self.links.insert(pair(a, b), link);
        self
    }

    /// The link spec the pair would use, ignoring crash/partition state:
    /// the explicit link if set, else the default (loopback for `a == b`).
    pub fn effective_link(&self, a: &HostId, b: &HostId) -> LinkSpec {
        if a == b {
            return LinkSpec::loopback();
        }
        self.links
            .get(&pair(a, b))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Updates the one-way latency of the `a`↔`b` link in place, keeping
    /// its bandwidth and loss. Pairs on the default link get an explicit
    /// link first.
    pub fn set_latency(&mut self, a: &HostId, b: &HostId, latency: Duration) -> &mut Self {
        let mut link = self.effective_link(a, b);
        link.latency = latency;
        self.set_link(a, b, link)
    }

    /// Updates the loss probability of the `a`↔`b` link in place, keeping
    /// its latency and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0` ([`LinkSpec::with_loss`]).
    pub fn set_loss(&mut self, a: &HostId, b: &HostId, loss: f64) -> &mut Self {
        let link = self.effective_link(a, b).with_loss(loss);
        self.set_link(a, b, link)
    }

    /// Marks a host as crashed: all communication to or from it fails.
    pub fn crash_host(&mut self, host: &HostId) -> &mut Self {
        self.down_hosts.insert(host.clone());
        self
    }

    /// Restores a crashed host.
    pub fn restore_host(&mut self, host: &HostId) -> &mut Self {
        self.down_hosts.remove(host);
        self
    }

    /// Whether the host is currently crashed.
    pub fn is_down(&self, host: &HostId) -> bool {
        self.down_hosts.contains(host)
    }

    /// Severs the link between two hosts (both directions).
    pub fn partition(&mut self, a: &HostId, b: &HostId) -> &mut Self {
        self.partitions.insert(pair(a, b));
        self
    }

    /// Heals a severed link.
    pub fn heal(&mut self, a: &HostId, b: &HostId) -> &mut Self {
        self.partitions.remove(&pair(a, b));
        self
    }

    /// The link a message from `a` to `b` would traverse right now.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownHost`] if either endpoint is not in the topology.
    /// * [`NetError::HostDown`] if either endpoint has crashed.
    /// * [`NetError::Partitioned`] if the pair is partitioned.
    pub fn route(&self, a: &HostId, b: &HostId) -> Result<LinkSpec, NetError> {
        for h in [a, b] {
            if !self.hosts.contains(h) {
                return Err(NetError::UnknownHost { host: h.clone() });
            }
            if self.down_hosts.contains(h) {
                return Err(NetError::HostDown { host: h.clone() });
            }
        }
        if a == b {
            return Ok(LinkSpec::loopback());
        }
        if self.partitions.contains(&pair(a, b)) {
            return Err(NetError::Partitioned {
                a: a.clone(),
                b: b.clone(),
            });
        }
        Ok(self
            .links
            .get(&pair(a, b))
            .copied()
            .unwrap_or(self.default_link))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(name: &str) -> HostId {
        HostId::new(name).unwrap()
    }

    fn topo() -> Topology {
        let mut t = Topology::new(LinkSpec::lan_100mbit());
        t.add_hosts([h("a"), h("b"), h("c")]);
        t
    }

    #[test]
    fn host_names_validated() {
        assert!(HostId::new("cl2.cs.uit.no").is_ok());
        assert!(HostId::new("").is_err());
        assert!(HostId::new("UPPER").is_err());
        assert!(HostId::new("sp ace").is_err());
    }

    #[test]
    fn default_link_applies_to_unlisted_pairs() {
        let t = topo();
        assert_eq!(t.route(&h("a"), &h("b")).unwrap(), LinkSpec::lan_100mbit());
    }

    #[test]
    fn explicit_link_is_symmetric() {
        let mut t = topo();
        let wan = LinkSpec::wan(1_000_000, Duration::from_millis(80));
        t.set_link(&h("a"), &h("c"), wan);
        assert_eq!(t.route(&h("a"), &h("c")).unwrap(), wan);
        assert_eq!(t.route(&h("c"), &h("a")).unwrap(), wan);
        assert_eq!(t.route(&h("a"), &h("b")).unwrap(), LinkSpec::lan_100mbit());
    }

    #[test]
    fn self_route_is_loopback() {
        let t = topo();
        assert_eq!(t.route(&h("a"), &h("a")).unwrap(), LinkSpec::loopback());
    }

    #[test]
    fn unknown_host_detected() {
        let t = topo();
        assert!(matches!(
            t.route(&h("a"), &h("zz")),
            Err(NetError::UnknownHost { .. })
        ));
    }

    #[test]
    fn crashed_host_blocks_both_directions() {
        let mut t = topo();
        t.crash_host(&h("b"));
        assert!(matches!(
            t.route(&h("a"), &h("b")),
            Err(NetError::HostDown { .. })
        ));
        assert!(matches!(
            t.route(&h("b"), &h("a")),
            Err(NetError::HostDown { .. })
        ));
        t.restore_host(&h("b"));
        assert!(t.route(&h("a"), &h("b")).is_ok());
    }

    #[test]
    fn set_latency_preserves_bandwidth_and_loss() {
        let mut t = topo();
        t.set_link(&h("a"), &h("b"), LinkSpec::lan_10mbit().with_loss(0.1));
        t.set_latency(&h("a"), &h("b"), Duration::from_millis(200));
        let link = t.route(&h("a"), &h("b")).unwrap();
        assert_eq!(link.latency, Duration::from_millis(200));
        assert_eq!(link.bandwidth_bps, LinkSpec::lan_10mbit().bandwidth_bps);
        assert!((link.loss - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_loss_on_default_link_materializes_it() {
        let mut t = topo();
        t.set_loss(&h("a"), &h("b"), 0.25);
        let link = t.route(&h("a"), &h("b")).unwrap();
        assert!((link.loss - 0.25).abs() < 1e-12);
        assert_eq!(link.bandwidth_bps, LinkSpec::lan_100mbit().bandwidth_bps);
        // Unrelated pairs still on the pristine default.
        assert_eq!(t.route(&h("a"), &h("c")).unwrap(), LinkSpec::lan_100mbit());
    }

    #[test]
    fn partition_and_heal() {
        let mut t = topo();
        t.partition(&h("a"), &h("c"));
        assert!(matches!(
            t.route(&h("c"), &h("a")),
            Err(NetError::Partitioned { .. })
        ));
        // Unrelated pairs unaffected.
        assert!(t.route(&h("a"), &h("b")).is_ok());
        t.heal(&h("a"), &h("c"));
        assert!(t.route(&h("a"), &h("c")).is_ok());
    }
}
