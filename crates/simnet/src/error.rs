use std::fmt;

use crate::HostId;

/// Errors from the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A host name failed validation.
    BadHostName {
        /// The rejected name.
        name: String,
    },
    /// The host is not part of the topology.
    UnknownHost {
        /// The unknown host.
        host: HostId,
    },
    /// The host has crashed (fault injection).
    HostDown {
        /// The crashed host.
        host: HostId,
    },
    /// The pair of hosts is partitioned (fault injection).
    Partitioned {
        /// One endpoint.
        a: HostId,
        /// The other endpoint.
        b: HostId,
    },
    /// The message was lost in transit (probabilistic loss on the link).
    MessageLost {
        /// Source host.
        from: HostId,
        /// Destination host.
        to: HostId,
    },
    /// The destination host has no registered endpoint on the message bus.
    NoEndpoint {
        /// The endpoint-less host.
        host: HostId,
    },
    /// The destination endpoint's channel is closed (receiver dropped).
    EndpointClosed {
        /// The dead host.
        host: HostId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadHostName { name } => write!(f, "invalid host name {name:?}"),
            NetError::UnknownHost { host } => write!(f, "unknown host {host}"),
            NetError::HostDown { host } => write!(f, "host {host} is down"),
            NetError::Partitioned { a, b } => write!(f, "network partition between {a} and {b}"),
            NetError::MessageLost { from, to } => {
                write!(f, "message from {from} to {to} lost in transit")
            }
            NetError::NoEndpoint { host } => write!(f, "no endpoint registered for host {host}"),
            NetError::EndpointClosed { host } => write!(f, "endpoint for host {host} is closed"),
        }
    }
}

impl std::error::Error for NetError {}
