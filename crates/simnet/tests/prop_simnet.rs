//! Property tests for the network cost model and topology.

use std::time::Duration;

use proptest::prelude::*;
use tacoma_simnet::{HostId, LinkSpec, Network, Topology};

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (1u64..1_000_000, 1u64..10_000_000_000).prop_map(|(latency_us, bandwidth)| {
        LinkSpec::new(Duration::from_micros(latency_us), bandwidth)
    })
}

proptest! {
    /// Transfer time is monotone in bytes and never below the latency.
    #[test]
    fn cost_monotone_in_bytes(link in arb_link(), a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        prop_assert!(link.transfer_time(lo) >= link.latency);
    }

    /// More bandwidth never makes a transfer slower (same latency).
    #[test]
    fn cost_antitone_in_bandwidth(
        latency_us in 1u64..100_000,
        bw_lo in 1u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
        bytes in 0u64..100_000_000,
    ) {
        let latency = Duration::from_micros(latency_us);
        let slow = LinkSpec::new(latency, bw_lo);
        let fast = LinkSpec::new(latency, bw_lo.saturating_add(extra));
        prop_assert!(fast.transfer_time(bytes) <= slow.transfer_time(bytes));
    }

    /// The virtual clock advances by exactly the sum of transfer costs,
    /// and byte accounting is exact, for any sequence of transfers.
    #[test]
    fn clock_and_stats_are_exact(sizes in prop::collection::vec(0u64..1_000_000, 1..20)) {
        let mut topo = Topology::new(LinkSpec::lan_100mbit());
        let a = HostId::new("a").unwrap();
        let b = HostId::new("b").unwrap();
        topo.add_hosts([a.clone(), b.clone()]);
        let net = Network::new(topo, 0);

        let mut expected = Duration::ZERO;
        let mut expected_bytes = 0u64;
        for &size in &sizes {
            let out = net.transfer(&a, &b, size).unwrap();
            expected += out.cost;
            expected_bytes += size;
        }
        prop_assert_eq!(net.clock().now().since_epoch(), expected);
        prop_assert_eq!(net.stats().pair(&a, &b).bytes, expected_bytes);
        prop_assert_eq!(net.stats().pair(&a, &b).messages, sizes.len() as u64);
    }

    /// Partitions are symmetric and exact: only the severed pair fails.
    #[test]
    fn partitions_are_symmetric_and_scoped(cut in 0usize..3) {
        let names = ["a", "b", "c"];
        let hosts: Vec<HostId> = names.iter().map(|n| HostId::new(*n).unwrap()).collect();
        let mut topo = Topology::new(LinkSpec::lan_100mbit());
        topo.add_hosts(hosts.clone());
        let (x, y) = (hosts[cut].clone(), hosts[(cut + 1) % 3].clone());
        topo.partition(&x, &y);

        for i in 0..3 {
            for j in 0..3 {
                if i == j { continue; }
                let severed = (hosts[i] == x && hosts[j] == y) || (hosts[i] == y && hosts[j] == x);
                prop_assert_eq!(topo.route(&hosts[i], &hosts[j]).is_err(), severed);
            }
        }
    }
}
